"""Train → export → quantize → deploy: the full edge-deployment story.

Trains the paper's winning architecture on synthetic drainage patches,
exports it to the onnxlite format (the paper's memory objective), loads
the file with the standalone deployment runtime (no shared code with the
training stack), verifies prediction agreement, and finally applies int8
post-training quantization to show the remaining deployment headroom.

Run:  python examples/train_export_deploy.py
"""

import numpy as np

from repro.data import DrainageCrossingDataset, train_test_split_indices
from repro.deploy import load_runtime
from repro.nas.crossval import TrainSettings, train_one_model
from repro.nn import SearchableResNet18
from repro.onnxlite import export_model, model_size_mb
from repro.quant import fake_quantize_model, quantized_size_mb
from repro.tensor import Tensor, no_grad


def main() -> None:
    # 1. Train the Table-4 winner at small scale.
    dataset = DrainageCrossingDataset(channels=5, size=32, samples_per_class=10,
                                      regions=["nebraska", "california"], seed=3)
    train_idx, test_idx = train_test_split_indices(len(dataset), 0.25, seed=0)
    model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                               pool_choice=0, initial_output_feature=32, seed=0)
    print(f"training on {train_idx.size} patches...")
    train_one_model(model, dataset, train_idx, batch_size=8,
                    settings=TrainSettings(epochs=5, lr=0.02), rng_seed=0)

    x_test, y_test = dataset.batch(test_idx)
    model.eval()
    with no_grad():
        reference = model(Tensor(x_test)).data
    ref_acc = 100.0 * float((reference.argmax(axis=1) == y_test).mean())
    print(f"training-stack test accuracy: {ref_acc:.1f}%")

    # 2. Export (the paper's memory objective is this file's size).
    blob = export_model(model, input_hw=(32, 32), path="winner.onxl")
    print(f"exported winner.onxl: {len(blob) / 1e6:.2f} MB "
          f"(model_size_mb reports {model_size_mb(model, (32, 32)):.2f})")

    # 3. Deploy with the standalone runtime and verify agreement.
    runtime = load_runtime("winner.onxl")
    print(f"loaded {runtime!r}")
    deployed = runtime.run(x_test)
    max_delta = float(np.abs(deployed - reference).max())
    agree = float((deployed.argmax(axis=1) == reference.argmax(axis=1)).mean())
    print(f"deployment check: max logit delta {max_delta:.2e}, "
          f"prediction agreement {100 * agree:.1f}%")

    # 4. Quantized export: an int8 .onxl file the runtime can also load.
    from repro.quant import export_quantized_model

    int8_blob = export_quantized_model(model, input_hw=(32, 32), path="winner_int8.onxl")
    int8_runtime = load_runtime("winner_int8.onxl")
    int8_pred = int8_runtime.predict(x_test)
    int8_acc = 100.0 * float((int8_pred == y_test).mean())
    print(f"int8 export: winner_int8.onxl {len(int8_blob) / 1e6:.2f} MB "
          f"({len(blob) / len(int8_blob):.1f}x smaller), "
          f"deployed int8 accuracy {int8_acc:.1f}% (fp32: {ref_acc:.1f}%)")

    # 5. In-place fake-quant view of the same storage budget.
    fake_quantize_model(model, dtype="int8")
    print(f"fake-quant storage estimate: {quantized_size_mb(model):.2f} MB "
          f"(fp32 {model_size_mb(model, (32, 32)):.2f} MB)")


if __name__ == "__main__":
    main()
