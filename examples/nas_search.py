"""Budget-limited NAS with regularized evolution and Pareto analysis.

The paper's exhaustive grid costs 1,728 trials; this example finds the
same architecture family with a 150-trial evolutionary search, then runs
the 3-objective Pareto analysis and picks the knee-point (balanced
trade-off) solution.

Run:  python examples/nas_search.py
"""

from repro.nas import Experiment, RegularizedEvolution, SurrogateEvaluator
from repro.nas.searchspace import DEFAULT_SPACE
from repro.pareto import ParetoAnalysis
from repro.utils.tables import render_table

BUDGET = 150


def main() -> None:
    strategy = RegularizedEvolution(DEFAULT_SPACE, population_size=24, tournament_size=8, seed=0)
    experiment = Experiment(
        evaluator=SurrogateEvaluator(seed=0),
        strategy=strategy,
        input_hw=(100, 100),
        progress=lambda done, total, rec: (
            print(f"  trial {done}/{total}: acc={rec.accuracy:.2f} lat={rec.latency_ms:.2f}ms")
            if done % 25 == 0 else None
        ),
    )
    print(f"running regularized evolution for {BUDGET} trials "
          f"(grid would need {DEFAULT_SPACE.total_configurations()})...")
    result = experiment.run(budget=BUDGET)
    print(f"completed: {result.succeeded} ok, {result.failed} failed, "
          f"{result.duration_s:.1f}s")

    records = result.store.analysis_records()
    analysis = ParetoAnalysis()
    front = sorted(analysis.front_records(records), key=lambda r: -r["accuracy"])

    columns = ("channels", "batch", "accuracy", "latency_ms", "memory_mb",
               "kernel_size", "stride", "padding", "pool_choice", "initial_output_feature")
    print()
    print(render_table([{k: r[k] for k in columns} for r in front],
                       title=f"Non-dominated solutions ({len(front)} of {len(records)})"))

    knee = analysis.knee_record(records)
    print("knee-point (balanced) solution:")
    print(f"  accuracy={knee['accuracy']:.2f}%  latency={knee['latency_ms']:.2f}ms  "
          f"memory={knee['memory_mb']:.2f}MB")
    print(f"  config: k{knee['kernel_size']} s{knee['stride']} p{knee['padding']} "
          f"pool={knee['pool_choice']} f{knee['initial_output_feature']} "
          f"ch{knee['channels']} b{knee['batch']}")

    print(f"\nfront hypervolume (normalized): {analysis.hypervolume(records):.4f}")

    best_config, best_score = strategy.best()
    print(f"evolution's best config: {best_config.architecture_key()} at {best_score:.2f}%")


if __name__ == "__main__":
    main()
