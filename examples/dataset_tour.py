"""Tour of the synthetic drainage-crossing dataset (Section 2.1 substitute).

Generates scenes from each of the paper's four study regions, reports the
terrain/spectral statistics that make the classification task real
(culvert signatures, riparian NDVI, in-channel NDWI), and verifies the
Table-1 sample accounting.

Run:  python examples/dataset_tour.py
"""

import numpy as np

from repro.data import REGIONS, ndvi, ndwi, total_sample_count
from repro.data.orthophoto import render_orthophoto
from repro.data.terrain import generate_scene
from repro.utils.tables import render_table


def main() -> None:
    print(f"total dataset size (Table 1): {total_sample_count()} patches\n")

    rows = []
    for key, region in REGIONS.items():
        rng = np.random.default_rng(hash(key) % 2**32)
        positive = generate_scene(100, rng, region.terrain, crossing=True)
        negative = generate_scene(100, rng, region.terrain, crossing=False)
        ortho = render_orthophoto(positive, rng)
        red, green, _blue, nir = ortho
        veg_index = ndvi(nir, red)
        water_index = ndwi(green, nir)
        rows.append(
            {
                "region": region.name,
                "true/false": f"{region.true_samples}/{region.false_samples}",
                "relief_m": round(float(positive.dem.max() - positive.dem.min()), 2),
                "channel_px": int(positive.channel_mask.sum()),
                "road_px": int(positive.road_mask.sum()),
                "water_px": int(positive.water_mask.sum()),
                "mean_ndvi": round(float(veg_index.mean()), 3),
                "max_ndwi": round(float(water_index.max()), 3),
                "neg_has_both": bool(negative.channel_mask.any() and negative.road_mask.any()),
            }
        )
    print(render_table(rows, title="Per-region scene statistics (100x100 patches)"))

    # The culvert signature: crossings lift the DEM where the road fills
    # over the channel.
    region = REGIONS["california"]
    rng = np.random.default_rng(7)
    scene = generate_scene(100, rng, region.terrain, crossing=True)
    overlap = scene.channel_mask & scene.road_mask
    channel_only = scene.channel_mask & ~scene.road_mask
    if overlap.any() and channel_only.any():
        lift = float(scene.dem[overlap].mean() - scene.dem[channel_only].mean())
        print(f"culvert signature (California scene): embankment fill lifts the "
              f"channel bed by {lift:.2f} m at the crossing")

    # Channel stacks available to the models.
    from repro.data.dataset import CHANNEL_NAMES_5, CHANNEL_NAMES_7

    print(f"5-channel stack: {', '.join(CHANNEL_NAMES_5)}")
    print(f"7-channel stack: {', '.join(CHANNEL_NAMES_7)}")


if __name__ == "__main__":
    main()
