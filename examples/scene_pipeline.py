"""The paper's data-build workflow at region scale (Section 2.1).

Synthesizes a watershed-scale raster with drainage and road networks,
*segments* the drainage crossings out of it (mask intersection — the
reproduction of the paper's object-segmentation step), cuts positive
patches at the crossings and negatives by random spatial sampling, and
trains a classifier on the result.

Run:  python examples/scene_pipeline.py
"""

import numpy as np

from repro.data import generate_region_scene, sample_patches
from repro.data.regions import REGIONS
from repro.nn import SGD, CrossEntropyLoss, SearchableResNet18
from repro.tensor import Tensor, no_grad
from repro.utils.tables import render_table


def main() -> None:
    rng = np.random.default_rng(0)
    region = REGIONS["california"]
    print(f"synthesizing a 400x400 {region.name} scene "
          f"(3 channels, 3 roads, {region.dem_resolution_m} m class terrain)...")
    scene = generate_region_scene(400, rng, region.terrain, n_channels=3, n_roads=3)
    print(f"segmentation found {len(scene.crossings)} drainage crossings at {scene.crossings}")

    x, y, centers = sample_patches(scene, patch=64, rng=rng, channels=5,
                                   n_positive=len(scene.crossings) * 2,
                                   n_negative=len(scene.crossings) * 2)
    print(f"extracted {len(y)} patches ({int((y == 1).sum())} positive / "
          f"{int((y == 0).sum())} negative) of shape {x.shape[1:]}\n")

    # Train/test split and a short training run.
    order = rng.permutation(len(y))
    split = int(0.75 * len(y))
    train_idx, test_idx = order[:split], order[split:]
    model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                               pool_choice=0, initial_output_feature=32, seed=0)
    optimizer = SGD(model.parameters(), lr=0.02, momentum=0.9, weight_decay=1e-4)
    loss_fn = CrossEntropyLoss()
    model.train()
    for epoch in range(5):
        perm = rng.permutation(train_idx)
        losses = []
        for start in range(0, perm.size, 8):
            batch = perm[start : start + 8]
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x[batch])), y[batch])
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        print(f"epoch {epoch + 1}: mean loss {np.mean(losses):.4f}")

    model.eval()
    with no_grad():
        predictions = model(Tensor(x[test_idx])).data.argmax(axis=1)
    accuracy = 100.0 * float((predictions == y[test_idx]).mean())
    print(f"\nheld-out accuracy on scene patches: {accuracy:.1f}% "
          f"({test_idx.size} patches)")

    rows = [
        {"center": str(c), "label": int(lbl)}
        for c, lbl in list(zip(centers, y))[:8]
    ]
    print(render_table(rows, title="First extracted patches (center, label)"))


if __name__ == "__main__":
    main()
