"""Extensions beyond the paper: direct front search, 4th objective, SHA.

Three demonstrations on top of the reproduced pipeline:

1. **NSGA-II-style search** — find the Pareto front with 250 trials
   instead of the paper's exhaustive 1,728;
2. **Four objectives** — add estimated inference *energy* (library
   extension, see ``repro/latency/energy.py``) to
   accuracy/latency/memory and re-extract the front;
3. **Successive halving** — multi-fidelity screening that finds a
   near-best architecture with half the epoch budget.

Run:  python examples/multiobjective_extensions.py
"""

import numpy as np

from repro.graph import trace_model
from repro.latency import estimate_energy_mj
from repro.nas import (
    Experiment,
    FidelitySurrogate,
    NSGAEvolution,
    SurrogateEvaluator,
    successive_halving,
)
from repro.nas.searchspace import DEFAULT_SPACE
from repro.nn import build_model
from repro.pareto import ObjectiveSense, ParetoAnalysis
from repro.utils.tables import render_table


def nsga_demo() -> list[dict]:
    print("=== 1. searching for the front directly (NSGA, 250 trials) ===")
    strategy = NSGAEvolution(DEFAULT_SPACE, population_size=32, seed=0)
    experiment = Experiment(SurrogateEvaluator(seed=0), strategy, input_hw=(100, 100))
    result = experiment.run(budget=250)
    records = result.store.analysis_records()
    front = sorted(ParetoAnalysis().front_records(records), key=lambda r: -r["accuracy"])
    print(render_table(
        [{k: r[k] for k in ("accuracy", "latency_ms", "memory_mb", "kernel_size",
                            "pool_choice", "initial_output_feature")} for r in front[:6]],
        title=f"Front from 250 trials ({len(front)} members)",
    ))
    return records


def four_objective_demo(records: list[dict]) -> None:
    print("=== 2. adding energy as a fourth objective ===")
    # Energy depends only on the architecture; annotate the records.
    cache: dict[tuple, float] = {}
    from repro.nas.config import ModelConfig

    for record in records:
        config = ModelConfig.from_dict(record)
        key = config.architecture_key()
        if key not in cache:
            graph = trace_model(build_model(config), input_hw=(100, 100))
            cache[key] = estimate_energy_mj(graph, "cortexA76cpu")
        record["energy_mj"] = cache[key]

    analysis = ParetoAnalysis(objectives=(
        ("accuracy", ObjectiveSense.MAX),
        ("latency_ms", ObjectiveSense.MIN),
        ("memory_mb", ObjectiveSense.MIN),
        ("energy_mj", ObjectiveSense.MIN),
    ))
    front4 = analysis.front_records(records)
    front3 = ParetoAnalysis().front_records(records)
    print(f"3-objective front: {len(front3)} members; "
          f"4-objective (with energy): {len(front4)} members")
    best = max(front4, key=lambda r: r["accuracy"])
    print(f"best 4-objective solution: acc={best['accuracy']:.2f}% "
          f"lat={best['latency_ms']:.2f}ms mem={best['memory_mb']:.2f}MB "
          f"energy={best['energy_mj']:.2f}mJ\n")


def successive_halving_demo() -> None:
    print("=== 3. multi-fidelity screening (successive halving) ===")
    rng = np.random.default_rng(1)
    candidates = DEFAULT_SPACE.sample(rng, 32)
    evaluator = FidelitySurrogate(seed=0)
    result = successive_halving(candidates, evaluator, min_budget=1, max_budget=8, eta=2)
    full_budget = 8 * len(candidates)
    rows = [
        {"rung": i, "budget_epochs": 1 * (2**i), "candidates": len(rung),
         "best_acc_at_rung": round(rung[0][1], 2)}
        for i, rung in enumerate(result.rung_history)
    ]
    print(render_table(rows, title="Successive-halving bracket"))
    best_config, best_acc = result.best
    print(f"winner: {best_config.architecture_key()} at {best_acc:.2f}% "
          f"for {result.total_epochs_spent} epochs (full evaluation: {full_budget})")


def main() -> None:
    records = nsga_demo()
    four_objective_demo(records)
    successive_halving_demo()


if __name__ == "__main__":
    main()
