"""Quickstart: build, train, and cost a drainage-crossing classifier.

Builds the paper's best Pareto-optimal architecture (Table 4 row 1:
7 input channels, 3x3/2 stem, no pooling, 32 initial features), trains it
briefly on synthetic drainage-crossing patches, then measures all three
paper objectives: accuracy, 4-device predicted latency, and onnxlite
model memory.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SearchableResNet18, model_size_mb, predict_all_devices
from repro.data import BatchSampler, DrainageCrossingDataset, train_test_split_indices
from repro.graph import trace_model
from repro.nn import SGD, CrossEntropyLoss
from repro.tensor import Tensor, no_grad


def main() -> None:
    # 1. The paper's winning architecture (Table 4, row 1).
    model = SearchableResNet18(
        in_channels=7,
        kernel_size=3,
        stride=2,
        padding=1,
        pool_choice=0,
        initial_output_feature=32,
        seed=0,
    )
    print(f"model parameters: {sum(p.size for p in model.parameters()):,}")

    # 2. A small synthetic drainage-crossing dataset (7 channels:
    #    DEM, R, G, B, NIR, NDVI, NDWI).
    dataset = DrainageCrossingDataset(
        channels=7, size=32, samples_per_class=12,
        regions=["nebraska", "california"], seed=0,
    )
    train_idx, test_idx = train_test_split_indices(len(dataset), test_fraction=0.25, seed=0)
    print(f"dataset: {len(dataset)} patches, train={train_idx.size}, test={test_idx.size}")

    # 3. Train for a few epochs.
    sampler = BatchSampler(dataset, batch_size=8, indices=train_idx, shuffle=True, rng=0)
    optimizer = SGD(model.parameters(), lr=0.02, momentum=0.9, weight_decay=1e-4)
    loss_fn = CrossEntropyLoss()
    model.train()
    for epoch in range(6):
        losses = []
        for x, y in sampler:
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        print(f"epoch {epoch + 1}: mean loss {np.mean(losses):.4f}")

    # Recalibrate batch-norm running stats (tiny run, see crossval docs).
    from repro.nas.crossval import recalibrate_batchnorm

    recalibrate_batchnorm(model, dataset, train_idx, batch_size=8)

    # 4. Test accuracy (objective 1).
    model.eval()
    with no_grad():
        x, y = dataset.batch(test_idx)
        accuracy = 100.0 * float((model(Tensor(x)).data.argmax(axis=1) == y).mean())
    print(f"test accuracy: {accuracy:.1f}%")

    # 5. Predicted inference latency on the four devices (objective 2).
    graph = trace_model(model, input_hw=(100, 100))
    summary = predict_all_devices(graph)
    for device, latency in summary.per_device_ms.items():
        print(f"latency[{device}]: {latency:.2f} ms")
    print(f"latency mean: {summary.mean_ms:.2f} ms, std: {summary.std_ms:.2f} ms "
          f"(paper Table 4: 8.19 / 4.59)")

    # 6. Model memory (objective 3).
    print(f"memory: {model_size_mb(model):.2f} MB (paper Table 4: 11.18)")


if __name__ == "__main__":
    main()
