"""Regenerate the paper's full evaluation section in one run.

Launches the exhaustive 1,728-trial sweep (paper Section 4) with the
calibrated surrogate, paper-mode failure injection, the four latency
predictors and onnxlite memory measurement, then prints:

- the trial accounting (1,717 valid outcomes),
- Table 3 (objective ranges),
- Table 4 (non-dominated solutions) plus the per-combination fronts,
- Table 5 (stock ResNet-18 variants),
- Figure 3/4 summary statistics.

Takes ~1-2 minutes on one CPU core.

Run:  python examples/full_paper_sweep.py [output.jsonl]
"""

import sys

from repro.core.paper import TABLE3_RANGES, TABLE4_PARETO, TABLE5_BASELINE
from repro.core.pipeline import evaluate_baselines, run_paper_sweep
from repro.core.report import baseline_table, objective_ranges_table, pareto_table, per_combination_fronts
from repro.core.figures import pareto_scatter_figure, radar_figure
from repro.nas.storage import TrialStore
from repro.utils.tables import render_table


def main() -> None:
    print("running the 1,728-trial grid sweep (surrogate accuracy, "
          "4 latency predictors, onnxlite memory)...")
    result = run_paper_sweep(seed=0)
    print(f"launched {result.launched} trials, {result.valid_outcomes} valid outcomes "
          f"(paper: 1,717)\n")

    if len(sys.argv) > 1:
        store = TrialStore(sys.argv[1])
        store.extend(result.store.records())
        print(f"trials written to {sys.argv[1]}\n")

    rows = objective_ranges_table(result)
    for row, (key, (lo, hi)) in zip(rows, TABLE3_RANGES.items()):
        row["paper_min"], row["paper_max"] = lo, hi
    print(render_table(rows, title="Table 3 — objective value ranges"))

    print(render_table(pareto_table(result),
                       title="Table 4 — non-dominated solutions (ours)"))
    print(render_table(TABLE4_PARETO, title="Table 4 — paper's reported rows"))

    print("Per-input-combination fronts (recovers pooled solutions like paper rows 3/5):")
    for combo, front_rows in per_combination_fronts(result).items():
        best = front_rows[0]
        print(f"  ch{combo[0]} b{combo[1]:2d}: {len(front_rows)} members, best "
              f"acc={best['accuracy']:.2f} lat={best['latency_ms']:.2f} pool={best['pool_choice']}")
    print()

    baselines = baseline_table(evaluate_baselines())
    paper = {(r["channels"], r["batch"]): r for r in TABLE5_BASELINE}
    for row in baselines:
        ref = paper[(row["channels"], row["batch"])]
        row["paper_acc"], row["paper_lat"] = ref["accuracy"], ref["latency_ms"]
    print(render_table(baselines, title="Table 5 — stock ResNet-18 variants"))

    scatter = pareto_scatter_figure(result)
    print(f"Figure 3: {scatter['n_points']} points, {scatter['n_front']} non-dominated")
    from repro.core.plots import ascii_radar_bars, ascii_scatter

    print(ascii_scatter(scatter["points"][:, 1], scatter["points"][:, 0],
                        scatter["front_mask"], x_label="latency (ms)", y_label="accuracy (%)"))
    radar = radar_figure(result)
    print(f"Figure 4: {len(radar)} radar polygons "
          f"({sum(s.pooled for s in radar)} pooled, {sum(not s.pooled for s in radar)} un-pooled)")
    print(ascii_radar_bars(radar[:2]))


if __name__ == "__main__":
    main()
