"""The honest path: NAS with *real* training (no surrogate).

Runs a miniature grid over four architectures, evaluating each with the
paper's actual protocol — build model from config, train with SGD,
score with k-fold cross-validation on synthetic drainage patches —
then combines the measured accuracy with predicted latency and onnxlite
memory into a Pareto front.  This is the exact pipeline the paper runs
on an A100 for 38+ hours, scaled to a couple of minutes of CPU.

Run:  python examples/real_training_nas.py
"""

import time

from repro.nas import Experiment, GridSearch, TrainingEvaluator
from repro.nas.searchspace import SearchSpace
from repro.pareto import ParetoAnalysis
from repro.utils.tables import render_table

# Four contrasting architectures: {pool, no-pool} x {f32, f64}.
SPACE = SearchSpace(
    kernel_size=(3,), stride=(2,), padding=(1,),
    pool_choice=(0, 1), kernel_size_pool=(3,), stride_pool=(2,),
    initial_output_feature=(32, 64),
    channels=(5,), batches=(8,),
)


def main() -> None:
    evaluator = TrainingEvaluator(
        samples_per_class=6,
        patch_size=28,
        epochs=3,
        k=3,
        lr=0.02,
        regions=["nebraska", "california"],
        seed=1,
    )
    experiment = Experiment(
        evaluator=evaluator,
        strategy=GridSearch(SPACE),
        input_hw=(100, 100),
        progress=lambda done, total, rec: print(
            f"  trial {done}/{total}: acc={rec.accuracy:.1f}% "
            f"(folds {[round(a, 1) for a in rec.fold_accuracies]}) "
            f"lat={rec.latency_ms:.2f}ms mem={rec.memory_mb:.2f}MB "
            f"[{rec.duration_s:.1f}s]"
        ),
    )
    budget = SPACE.total_configurations()
    print(f"real-training NAS over {budget} architectures "
          f"(5-fold protocol scaled to k=3, 3 epochs)...")
    started = time.perf_counter()
    result = experiment.run(budget=budget)
    print(f"done in {time.perf_counter() - started:.1f}s\n")

    records = result.store.analysis_records()
    front = ParetoAnalysis().front_records(records)
    columns = ("accuracy", "latency_ms", "memory_mb", "pool_choice", "initial_output_feature")
    print(render_table(
        [{k: r[k] for k in columns} for r in sorted(front, key=lambda r: -r["accuracy"])],
        title=f"Pareto front from real training ({len(front)} of {len(records)})",
    ))


if __name__ == "__main__":
    main()
