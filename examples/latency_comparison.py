"""Compare the four device predictors across architectures (Section 3.3).

For a spectrum of search-space configurations this prints per-device
latency, the cross-device mean/std the paper optimizes, and a per-kernel
cost breakdown for the winner on the most- and least-predictable devices
— illustrating why the Myriad VPU's stand-alone pooling stage dominates
pooled models' latency.

Run:  python examples/latency_comparison.py
"""

from repro.graph import trace_model
from repro.latency import extract_kernels, get_predictor, list_predictors, predict_all_devices
from repro.nas.config import ModelConfig
from repro.nn import build_model
from repro.utils.tables import render_table

CONFIGS = {
    "winner (no pool, f32)": dict(kernel_size=3, stride=2, padding=1, pool_choice=0,
                                  kernel_size_pool=3, stride_pool=2, initial_output_feature=32),
    "winner + pooling": dict(kernel_size=3, stride=2, padding=1, pool_choice=1,
                             kernel_size_pool=3, stride_pool=2, initial_output_feature=32),
    "stock ResNet-18": dict(kernel_size=7, stride=2, padding=3, pool_choice=1,
                            kernel_size_pool=3, stride_pool=2, initial_output_feature=64),
    "worst case (s1, f64)": dict(kernel_size=7, stride=1, padding=3, pool_choice=0,
                                 kernel_size_pool=3, stride_pool=2, initial_output_feature=64),
}


def main() -> None:
    rows = []
    graphs = {}
    for label, arch in CONFIGS.items():
        config = ModelConfig(channels=7, batch=16, **arch)
        graph = trace_model(build_model(config), input_hw=(100, 100))
        graphs[label] = graph
        summary = predict_all_devices(graph)
        row = {"model": label}
        row.update({k: round(v, 2) for k, v in summary.per_device_ms.items()})
        row["mean"] = round(summary.mean_ms, 2)
        row["std"] = round(summary.std_ms, 2)
        rows.append(row)
    print(render_table(rows, title="Predicted latency (ms) across the four nn-Meter-style devices"))

    # Per-kernel breakdown of the pooled winner on two contrasting devices.
    kernels = extract_kernels(graphs["winner + pooling"])
    for device in ("adreno640gpu", "myriadvpu"):
        predictor = get_predictor(device)
        costs = predictor.predict_kernels(kernels)
        top = sorted(zip(kernels, costs), key=lambda kc: -kc[1])[:6]
        print(render_table(
            [{"kernel": k.name, "type": k.kernel_type, "ms": round(c, 3)} for k, c in top],
            title=f"Top kernels on {device} (total {sum(costs):.2f} ms)",
        ))

    print(f"available predictors: {list_predictors()}")


if __name__ == "__main__":
    main()
