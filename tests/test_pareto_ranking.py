"""Non-dominated ranking, weak/epsilon dominance, IGD/spread metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.pareto import (
    epsilon_non_dominated_mask,
    fast_non_dominated_sort,
    igd,
    non_dominated_mask,
    spread,
    weak_non_dominated_mask,
)

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 40), st.integers(1, 3)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestFastNonDominatedSort:
    def test_rank0_equals_front_mask(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(100, 3))
        ranks = fast_non_dominated_sort(values)
        np.testing.assert_array_equal(ranks == 0, non_dominated_mask(values))

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_every_point_gets_a_rank(self, values):
        ranks = fast_non_dominated_sort(values)
        assert (ranks >= 0).all()

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_peeling_property(self, values):
        """Removing rank 0 makes rank 1 the new front, recursively."""
        ranks = fast_non_dominated_sort(values)
        if ranks.max() < 1:
            return
        remaining = values[ranks >= 1]
        sub_ranks = fast_non_dominated_sort(remaining)
        np.testing.assert_array_equal(sub_ranks, ranks[ranks >= 1] - 1)

    def test_chain_gets_distinct_ranks(self):
        values = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        np.testing.assert_array_equal(fast_non_dominated_sort(values), [0, 1, 2])

    def test_empty(self):
        assert fast_non_dominated_sort(np.zeros((0, 2))).size == 0


class TestWeakDominance:
    def test_superset_of_standard_front(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(80, 3))
        standard = non_dominated_mask(values)
        weak = weak_non_dominated_mask(values)
        assert np.all(weak[standard])

    def test_tie_in_one_objective_protects(self):
        # b is worse in obj 0 but ties in obj 1 -> weakly non-dominated.
        values = np.array([[1.0, 5.0], [2.0, 5.0]])
        np.testing.assert_array_equal(weak_non_dominated_mask(values), [True, True])
        np.testing.assert_array_equal(non_dominated_mask(values), [True, False])

    def test_strictly_dominated_removed(self):
        values = np.array([[1.0, 1.0], [2.0, 2.0]])
        np.testing.assert_array_equal(weak_non_dominated_mask(values), [True, False])

    def test_paper_table4_scenario(self):
        """The paper's pooled rows survive only under weak dominance."""
        # (acc->min, lat, mem): rows A and C of Table 4 at tied memory.
        a = [-96.13, 8.19, 11.18]
        c = [-95.79, 18.30, 11.18]
        values = np.array([a, c])
        np.testing.assert_array_equal(non_dominated_mask(values), [True, False])
        np.testing.assert_array_equal(weak_non_dominated_mask(values), [True, True])


class TestEpsilonDominance:
    def test_zero_epsilon_keeps_standard_front_points(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(50, 2))
        eps_mask = epsilon_non_dominated_mask(values, 0.0)
        standard = non_dominated_mask(values)
        # Standard-dominated points stay dominated at eps=0.
        assert not np.any(eps_mask & ~standard)

    def test_larger_epsilon_thins_front(self):
        rng = np.random.default_rng(3)
        values = rng.random((60, 2))
        small = epsilon_non_dominated_mask(values, 0.01).sum()
        large = epsilon_non_dominated_mask(values, 0.3).sum()
        assert large <= small

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            epsilon_non_dominated_mask(np.zeros((2, 2)), -0.1)


class TestIgdSpread:
    def test_igd_zero_when_covering(self):
        front = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert igd(front, front) == 0.0

    def test_igd_grows_with_distance(self):
        reference = np.array([[0.0, 0.0]])
        near = np.array([[0.1, 0.1]])
        far = np.array([[1.0, 1.0]])
        assert igd(near, reference) < igd(far, reference)

    def test_igd_validation(self):
        with pytest.raises(ValueError):
            igd(np.zeros((0, 2)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            igd(np.ones((1, 2)), np.zeros((0, 2)))

    def test_spread_uniform_is_zero(self):
        points = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        assert spread(points) == pytest.approx(0.0)

    def test_spread_clustered_is_positive(self):
        points = np.array([[0.0, 3.0], [0.1, 2.9], [0.2, 2.8], [3.0, 0.0]])
        assert spread(points) > 0.3

    def test_spread_tiny_fronts(self):
        assert spread(np.array([[1.0, 2.0]])) == 0.0
