"""Reproduction verifier, telemetry, batch-latency extension."""

import numpy as np
import pytest

from repro.core.validation import Check, VerificationReport
from repro.graph.trace import trace_model
from repro.latency.devices import DEVICE_PROFILES
from repro.latency.predictors import batch_latency_ms
from repro.nas import Experiment, GridSearch, SurrogateEvaluator
from repro.nas.searchspace import SearchSpace
from repro.nas.telemetry import RunTelemetry
from repro.nn import SearchableResNet18


class TestVerificationReport:
    def test_ok_and_failures(self):
        report = VerificationReport()
        report.add("a", True, "fine")
        report.add("b", False, "broken")
        assert not report.ok
        assert [c.name for c in report.failures()] == ["b"]
        text = report.summary()
        assert "[PASS] a" in text and "[FAIL] b" in text and "1/2" in text

    def test_all_pass(self):
        report = VerificationReport()
        report.add("x", True, "")
        assert report.ok
        assert report.failures() == []

    def test_check_is_frozen(self):
        check = Check("n", True, "d")
        with pytest.raises(AttributeError):
            check.passed = False  # type: ignore[misc]


class TestRunTelemetry:
    def test_collects_from_experiment(self):
        space = SearchSpace(
            kernel_size=(3,), stride=(2,), padding=(1,), pool_choice=(0,),
            kernel_size_pool=(3,), stride_pool=(2,), initial_output_feature=(32,),
            channels=(5,), batches=(8, 16, 32),
        )
        telemetry = RunTelemetry()
        experiment = Experiment(SurrogateEvaluator(), GridSearch(space),
                                input_hw=(48, 48), progress=telemetry)
        experiment.run(budget=3)
        assert len(telemetry.durations) == 3
        assert telemetry.total == 3
        assert telemetry.failures == 0
        assert telemetry.mean_trial_s >= 0.0
        assert "3/3 trials" in telemetry.summary()

    def test_eta_estimation(self):
        telemetry = RunTelemetry()
        telemetry._done = 5
        telemetry.total = 10
        telemetry.started_at -= 5.0  # pretend 5 s elapsed
        eta = telemetry.eta_seconds()
        assert 3.0 < eta < 8.0
        assert "eta" in telemetry.eta_line()

    def test_eta_without_progress_is_inf(self):
        telemetry = RunTelemetry()
        telemetry.total = 10
        assert telemetry.eta_seconds() == float("inf")
        assert "?" in telemetry.eta_line()


class TestBatchLatency:
    def _graph(self):
        model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                                   pool_choice=0, initial_output_feature=32)
        return trace_model(model, (100, 100))

    def test_batch_one_matches_single_image(self):
        graph = self._graph()
        profile = DEVICE_PROFILES["adreno640gpu"]
        from repro.latency.predictors import LatencyPredictor

        single = LatencyPredictor(profile).predict_graph(graph)
        # batch=1 still differs slightly: weights are not re-scaled, which
        # matches the single-image model exactly.
        assert batch_latency_ms(graph, 1, profile) == pytest.approx(single, rel=1e-9)

    def test_sublinear_scaling(self):
        """Batching amortizes dispatch overhead: t(8) < 8 * t(1)."""
        graph = self._graph()
        profile = DEVICE_PROFILES["cortexA76cpu"]
        t1 = batch_latency_ms(graph, 1, profile)
        t8 = batch_latency_ms(graph, 8, profile)
        assert t1 < t8 < 8 * t1

    def test_monotone_in_batch(self):
        graph = self._graph()
        profile = DEVICE_PROFILES["myriadvpu"]
        times = [batch_latency_ms(graph, b, profile) for b in (1, 2, 4, 8)]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_latency_ms(self._graph(), 0, DEVICE_PROFILES["myriadvpu"])
