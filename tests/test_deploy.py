"""Deployment runtime: export round trips must match the training stack."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.deploy import OnnxliteRuntime, load_runtime
from repro.nas.config import ModelConfig
from repro.nn import SearchableResNet18, build_model
from repro.onnxlite.export import export_model
from repro.tensor.tensor import Tensor, no_grad


def _model(**kw):
    defaults = dict(in_channels=5, kernel_size=3, stride=2, padding=1,
                    pool_choice=0, initial_output_feature=32, seed=3)
    defaults.update(kw)
    return SearchableResNet18(**defaults)


def _reference_logits(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


class TestRoundTrip:
    def test_outputs_match_training_stack(self):
        model = _model()
        blob = export_model(model, input_hw=(32, 32))
        runtime = load_runtime(blob)
        x = np.random.default_rng(0).normal(size=(3, 5, 32, 32)).astype(np.float32)
        np.testing.assert_allclose(runtime.run(x), _reference_logits(model, x), rtol=1e-3, atol=1e-4)

    def test_pooled_variant_matches(self):
        model = _model(pool_choice=1, kernel_size_pool=3, stride_pool=2)
        runtime = load_runtime(export_model(model, input_hw=(64, 64)))
        x = np.random.default_rng(1).normal(size=(2, 5, 64, 64)).astype(np.float32)
        np.testing.assert_allclose(runtime.run(x), _reference_logits(model, x), rtol=1e-3, atol=1e-4)

    def test_baseline_7x7_stem_matches(self):
        model = _model(kernel_size=7, padding=3, pool_choice=1,
                       kernel_size_pool=3, stride_pool=2, initial_output_feature=48)
        runtime = load_runtime(export_model(model, input_hw=(64, 64)))
        x = np.random.default_rng(2).normal(size=(2, 5, 64, 64)).astype(np.float32)
        np.testing.assert_allclose(runtime.run(x), _reference_logits(model, x), rtol=1e-3, atol=1e-4)

    def test_file_path_loading(self, tmp_path):
        model = _model()
        path = tmp_path / "model.onxl"
        export_model(model, input_hw=(32, 32), path=path)
        runtime = load_runtime(path)
        x = np.zeros((1, 5, 32, 32), dtype=np.float32)
        assert runtime.run(x).shape == (1, 2)

    def test_predictions_agree(self):
        model = _model(seed=9)
        runtime = load_runtime(export_model(model, input_hw=(32, 32)))
        x = np.random.default_rng(3).normal(size=(8, 5, 32, 32)).astype(np.float32)
        np.testing.assert_array_equal(
            runtime.predict(x), _reference_logits(model, x).argmax(axis=1)
        )

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        channels=st.sampled_from((5, 7)),
        kernel=st.sampled_from((3, 7)),
        stride=st.sampled_from((1, 2)),
        pool=st.sampled_from((0, 1)),
        feature=st.sampled_from((32, 48)),
    )
    def test_fuzz_roundtrip_over_search_space(self, channels, kernel, stride, pool, feature):
        padding = 1 if kernel == 3 else 3
        config = ModelConfig(channels=channels, batch=8, kernel_size=kernel, stride=stride,
                             padding=padding, pool_choice=pool, kernel_size_pool=3,
                             stride_pool=2, initial_output_feature=feature)
        model = build_model(config, seed=0)
        runtime = load_runtime(export_model(model, input_hw=(48, 48)))
        x = np.random.default_rng(0).normal(size=(2, channels, 48, 48)).astype(np.float32)
        np.testing.assert_allclose(runtime.run(x), _reference_logits(model, x), rtol=2e-3, atol=2e-4)


class TestTrainedModelDeployment:
    def test_trained_weights_survive_deployment(self, tiny_dataset_5ch):
        """Train, export, deploy: the deployed model keeps the accuracy."""
        from repro.nas.crossval import TrainSettings, train_one_model

        model = _model(seed=1)
        indices = np.arange(len(tiny_dataset_5ch))
        train_one_model(model, tiny_dataset_5ch, indices, batch_size=8,
                        settings=TrainSettings(epochs=2, lr=0.02), rng_seed=0)
        runtime = load_runtime(export_model(model, input_hw=(24, 24)))
        x, y = tiny_dataset_5ch.batch(indices)
        deployed_acc = (runtime.predict(x) == y).mean()
        reference_acc = (_reference_logits(model, x).argmax(axis=1) == y).mean()
        assert deployed_acc == reference_acc


class TestRuntimeValidation:
    def test_wrong_channel_count_rejected(self):
        runtime = load_runtime(export_model(_model(), input_hw=(32, 32)))
        with pytest.raises(ValueError):
            runtime.run(np.zeros((1, 7, 32, 32), dtype=np.float32))

    def test_unsupported_operator_rejected(self):
        from repro.onnxlite.schema import ModelProto, OperatorProto

        proto = ModelProto("m", (1,), (1,), operators=[
            OperatorProto("x", "Softmax", ["input"], ["x"]),
        ])
        with pytest.raises(ValueError):
            OnnxliteRuntime(proto)

    def test_missing_initializer_rejected(self):
        model = _model()
        blob = export_model(model, input_hw=(32, 32))
        from repro.onnxlite.reader import proto_from_bytes

        proto = proto_from_bytes(blob)
        proto.initializers = [t for t in proto.initializers if t.name != "conv1.weight"]
        runtime = OnnxliteRuntime(proto)
        with pytest.raises(KeyError):
            runtime.run(np.zeros((1, 5, 32, 32), dtype=np.float32))

    def test_repr(self):
        runtime = load_runtime(export_model(_model(), input_hw=(32, 32)))
        assert "OnnxliteRuntime" in repr(runtime)
