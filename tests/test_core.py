"""Core pipeline, paper constants, reports, figure data."""

import numpy as np
import pytest

from repro.core import (
    HwNasPipeline,
    architecture_figure,
    baseline_table,
    objective_ranges_table,
    pareto_scatter_figure,
    pareto_table,
    per_combination_fronts,
    radar_figure,
    searchspace_figure,
)
from repro.core.objectives import OBJECTIVES
from repro.core.paper import (
    CONFIGS_PER_COMBINATION,
    TABLE1_REGIONS,
    TABLE3_RANGES,
    TABLE4_PARETO,
    TABLE5_BASELINE,
    TOTAL_TRIALS,
    VALID_OUTCOMES,
)
from repro.core.pipeline import evaluate_baselines
from repro.nas import FailureInjector, GridSearch, SurrogateEvaluator
from repro.nas.searchspace import SearchSpace


@pytest.fixture(scope="module")
def small_pipeline_result():
    """A reduced sweep (48 trials) exercising the full pipeline quickly."""
    space = SearchSpace(
        kernel_size=(3,), stride=(2,), padding=(1,),
        pool_choice=(0, 1), kernel_size_pool=(3,), stride_pool=(2,),
        initial_output_feature=(32, 64),
        channels=(5, 7), batches=(8, 16),
    )
    pipeline = HwNasPipeline(
        evaluator=SurrogateEvaluator(),
        space=space,
        strategy=GridSearch(space),
        input_hw=(64, 64),
    )
    return pipeline.run()


class TestObjectives:
    def test_spec(self):
        keys = [o.key for o in OBJECTIVES]
        assert keys == ["accuracy", "latency_ms", "memory_mb"]
        assert OBJECTIVES[0].pair[1].value == "max"


class TestPaperConstants:
    def test_table1_totals(self):
        assert sum(r["total"] for r in TABLE1_REGIONS) == 12068
        for row in TABLE1_REGIONS:
            assert row["true"] + row["false"] == row["total"]

    def test_trial_accounting(self):
        assert TOTAL_TRIALS == 6 * CONFIGS_PER_COMBINATION
        assert VALID_OUTCOMES == 1717

    def test_table4_structure_claims(self):
        # Every winner: f=32, k=3, s=2, p=1 (the Figure-4 commonalities).
        for row in TABLE4_PARETO:
            assert row["initial_output_feature"] == 32
            assert row["kernel_size"] == 3
            assert row["stride"] == 2
            assert row["padding"] == 1

    def test_table3_ranges_ordered(self):
        for lo, hi in TABLE3_RANGES.values():
            assert lo < hi


class TestPipeline:
    def test_run_counts(self, small_pipeline_result):
        assert small_pipeline_result.launched == 16
        assert small_pipeline_result.valid_outcomes == 16
        assert len(small_pipeline_result.records) == 16

    def test_front_is_nonempty_and_sorted(self, small_pipeline_result):
        front = small_pipeline_result.front_records()
        assert front
        accs = [r["accuracy"] for r in front]
        assert accs == sorted(accs, reverse=True)

    def test_front_favors_small_models(self, small_pipeline_result):
        front = small_pipeline_result.front_records()
        assert all(r["initial_output_feature"] == 32 for r in front)

    def test_baselines_match_paper_shape(self):
        records = evaluate_baselines()
        rows = baseline_table(records)
        assert len(rows) == 6
        by_combo = {(r["channels"], r["batch"]): r for r in rows}
        paper = {(r["channels"], r["batch"]): r for r in TABLE5_BASELINE}
        for key, row in by_combo.items():
            assert row["latency_ms"] == pytest.approx(paper[key]["latency_ms"], rel=0.1)
            assert row["memory_mb"] == pytest.approx(paper[key]["memory_mb"], rel=0.01)
            assert row["accuracy"] == pytest.approx(paper[key]["accuracy"], abs=1.5)


class TestReports:
    def test_objective_ranges_table(self, small_pipeline_result):
        rows = objective_ranges_table(small_pipeline_result)
        assert len(rows) == 3
        assert all(row["min"] <= row["max"] for row in rows)

    def test_pareto_table_columns(self, small_pipeline_result):
        rows = pareto_table(small_pipeline_result)
        expected = {"channels", "batch", "accuracy", "latency_ms", "lat_std", "memory_mb",
                    "kernel_size", "stride", "padding", "pool_choice", "kernel_size_pool",
                    "stride_pool", "initial_output_feature"}
        assert set(rows[0]) == expected

    def test_per_combination_fronts_cover_all_combos(self, small_pipeline_result):
        fronts = per_combination_fronts(small_pipeline_result)
        assert set(fronts) == {(5, 8), (5, 16), (7, 8), (7, 16)}
        assert all(rows for rows in fronts.values())


class TestFigures:
    def test_architecture_figure(self):
        fig = architecture_figure()
        assert fig["channels_5"] == ["dem", "red", "green", "blue", "nir"]
        assert fig["channels_7"][-2:] == ["ndvi", "ndwi"]
        assert fig["total_params"] == pytest.approx(11.18e6, rel=0.01)
        assert any(layer["op"] == "conv" for layer in fig["layers"])

    def test_searchspace_figure(self):
        fig = searchspace_figure()
        assert fig["architectures_per_combination"] == 288
        assert fig["total_configurations"] == 1728
        assert len(fig["input_combinations"]) == 6

    def test_scatter_figure(self, small_pipeline_result):
        fig = pareto_scatter_figure(small_pipeline_result)
        assert fig["points"].shape == (16, 3)
        assert fig["front_mask"].sum() == fig["n_front"]
        assert fig["points_normalized"].min() >= 0.0
        assert fig["points_normalized"].max() <= 1.0

    def test_radar_figure(self, small_pipeline_result):
        solutions = radar_figure(small_pipeline_result)
        assert solutions
        for sol in solutions:
            assert len(sol.axes) == len(sol.values) == 9
            assert all(0.0 <= v <= 1.0 for v in sol.values)
