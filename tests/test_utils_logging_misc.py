"""Logging setup, permutation helper, and misc utils coverage."""

import logging

import numpy as np
import pytest

from repro.utils.logging import configure, get_logger
from repro.utils.rng import permutation_for


class TestLogging:
    def test_namespacing(self):
        assert get_logger("nas").name == "repro.nas"
        assert get_logger("repro.core").name == "repro.core"

    def test_configure_idempotent(self):
        configure(level=logging.INFO)
        root = logging.getLogger("repro")
        handlers_before = len(root.handlers)
        configure(level=logging.DEBUG)
        assert len(root.handlers) == handlers_before
        assert root.level == logging.DEBUG

    def test_loggers_emit_through_repro_root(self):
        # configure() sets propagate=False on the repro root, so capture
        # with a handler attached there directly.
        configure(level=logging.INFO)
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        root = logging.getLogger("repro")
        handler = Capture()
        root.addHandler(handler)
        try:
            get_logger("test-emit").info("hello from %s", "tests")
        finally:
            root.removeHandler(handler)
        assert "hello from tests" in records


class TestPermutationFor:
    def test_deterministic_per_content(self):
        a = permutation_for(["x", "y", "z"], seed=1)
        b = permutation_for(["x", "y", "z"], seed=1)
        np.testing.assert_array_equal(a, b)

    def test_content_sensitivity(self):
        a = permutation_for(["x", "y", "z", "w", "v", "u"], seed=1)
        b = permutation_for(["x", "y", "z", "w", "v", "q"], seed=1)
        assert not np.array_equal(a, b)

    def test_is_a_permutation(self):
        p = permutation_for(list(range(20)), seed=3)
        np.testing.assert_array_equal(np.sort(p), np.arange(20))


class TestSerializeEdgeCases:
    def test_state_dict_bytes_empty(self):
        from repro.nn.serialize import state_dict_from_bytes, state_dict_to_bytes

        payload = state_dict_to_bytes({})
        assert state_dict_from_bytes(payload) == {}

    def test_state_dict_preserves_dtypes(self):
        from repro.nn.serialize import state_dict_from_bytes, state_dict_to_bytes

        state = {"a": np.arange(4, dtype=np.float32), "b": np.arange(3, dtype=np.int64)}
        back = state_dict_from_bytes(state_dict_to_bytes(state))
        assert back["a"].dtype == np.float32
        assert back["b"].dtype == np.int64

    def test_stable_key_order(self):
        from repro.nn.serialize import state_dict_to_bytes

        a = state_dict_to_bytes({"x": np.zeros(2), "y": np.ones(2)})
        b = state_dict_to_bytes({"y": np.ones(2), "x": np.zeros(2)})
        assert a == b
