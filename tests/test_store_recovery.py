"""Crash-safe store reload, durability knob, and the run-manifest resume gate."""

from __future__ import annotations

import json

import pytest

from repro.faults import corrupt_store_tail
from repro.nas import (
    Experiment,
    GridSearch,
    ResumeMismatchError,
    RunManifest,
    StoreCorruptionError,
    SurrogateEvaluator,
    TrialRecord,
    TrialStore,
)
from repro.nas.config import ModelConfig
from repro.nas.searchspace import SearchSpace

SMALL_SPACE = SearchSpace(
    kernel_size=(3,), stride=(2,), padding=(1,), pool_choice=(0, 1),
    kernel_size_pool=(3,), stride_pool=(2,), initial_output_feature=(32,),
    channels=(5,), batches=(8, 16),
)


def _config(batch=8, pool=1):
    return ModelConfig(
        channels=5, batch=batch, kernel_size=3, stride=2, padding=1,
        pool_choice=pool, kernel_size_pool=3, stride_pool=2,
        initial_output_feature=32,
    )


def _record(trial_id, batch=8, pool=1, accuracy=90.0):
    return TrialRecord(trial_id=trial_id, config=_config(batch, pool), accuracy=accuracy)


def _populated_store(path, n=3):
    store = TrialStore(path)
    for i, (batch, pool) in enumerate([(8, 1), (16, 1), (8, 0)][:n]):
        store.add(_record(i, batch=batch, pool=pool, accuracy=90.0 + i))
    store.close()
    return store


class TestCrashSafeLoad:
    @pytest.mark.parametrize("mode", ["truncate", "garbage", "partial-append"])
    def test_corrupt_tail_is_quarantined(self, tmp_path, mode):
        path = tmp_path / "trials.jsonl"
        _populated_store(path)
        corrupt_store_tail(path, mode=mode, seed=0)

        store = TrialStore(path)
        count = store.load()
        assert count == 2 if mode != "partial-append" else count == 3
        assert len(store.quarantined) == 1
        # The corrupt line landed in the sidecar and left the store clean.
        assert store.quarantine_path.exists()
        clean = TrialStore(path)
        clean.load()
        assert clean.quarantined == []
        assert len(clean) == count

    def test_append_after_quarantine_is_clean(self, tmp_path):
        """The rewrite means a new append cannot extend a partial line."""
        path = tmp_path / "trials.jsonl"
        _populated_store(path)
        corrupt_store_tail(path, mode="truncate", seed=0)

        store = TrialStore(path)
        store.load()
        store.add(_record(99, batch=16, pool=0, accuracy=95.0))
        store.close()

        reloaded = TrialStore(path)
        assert reloaded.load() == 3
        assert reloaded.quarantined == []
        assert reloaded.records()[-1].trial_id == 99

    def test_strict_load_raises_and_modifies_nothing(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        _populated_store(path)
        corrupt_store_tail(path, mode="garbage", seed=1)
        before = path.read_bytes()

        store = TrialStore(path)
        with pytest.raises(StoreCorruptionError, match="undecodable"):
            store.load(strict=True)
        assert path.read_bytes() == before
        assert not store.quarantine_path.exists()

    def test_semantically_invalid_record_is_quarantined(self, tmp_path):
        """A decodable JSON line that is not a TrialRecord is quarantined too."""
        path = tmp_path / "trials.jsonl"
        _populated_store(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"not_a": "trial record"}\n')
        store = TrialStore(path)
        assert store.load() == 3
        assert len(store.quarantined) == 1

    def test_clean_store_loads_without_quarantine(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        _populated_store(path)
        store = TrialStore(path)
        assert store.load() == 3
        assert store.quarantined == []
        assert not store.quarantine_path.exists()

    def test_load_missing_file(self, tmp_path):
        store = TrialStore(tmp_path / "absent.jsonl")
        assert store.load() == 0


class TestDurability:
    def test_invalid_durability_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="durability"):
            TrialStore(tmp_path / "t.jsonl", durability="paranoid")

    def test_flush_durability_visible_before_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        store = TrialStore(path, durability="flush")
        store.add(_record(0))
        # Default flush-per-append: the line is already on the OS side.
        assert path.read_text().count("\n") == 1
        store.close()

    def test_buffered_durability_needs_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        store = TrialStore(path, durability="buffered")
        store.add(_record(0))
        store.flush()
        assert path.read_text().count("\n") == 1
        store.close()

    def test_fsync_durability_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TrialStore(path, durability="fsync") as store:
            store.add(_record(0))
            store.add(_record(1, batch=16))
        reloaded = TrialStore(path)
        assert reloaded.load() == 2


class TestRunManifest:
    def _manifest(self, **overrides):
        base = dict(
            strategy="GridSearch", space_hash=123,
            seeds={"jitter_seed": 0, "evaluator_seed": 7},
            input_hw=(100, 100), latency_jitter=0.006,
            injector="none", evaluator="SurrogateEvaluator",
        )
        base.update(overrides)
        return RunManifest(**base)

    def test_roundtrip_preserves_fingerprint(self):
        manifest = self._manifest()
        again = RunManifest.from_dict(json.loads(json.dumps(manifest.to_dict())))
        assert again.fingerprint() == manifest.fingerprint()

    def test_fingerprint_ignores_created_at(self):
        assert (self._manifest(created_at="2026-01-01").fingerprint()
                == self._manifest(created_at="2026-02-02").fingerprint())

    @pytest.mark.parametrize("field,value", [
        ("strategy", "RandomSearch"),
        ("space_hash", 456),
        ("seeds", {"jitter_seed": 1, "evaluator_seed": 7}),
        ("latency_jitter", 0.01),
        ("injector", "FailureInjector(total=10, failures=1, failed=[3])"),
        ("evaluator", "TrainingEvaluator"),
    ])
    def test_identity_fields_change_fingerprint(self, field, value):
        a, b = self._manifest(), self._manifest(**{field: value})
        assert a.fingerprint() != b.fingerprint()
        assert b.diff(a)  # names the differing field

    def test_store_manifest_roundtrip(self, tmp_path):
        store = TrialStore(tmp_path / "t.jsonl")
        assert store.read_manifest() is None
        store.write_manifest(self._manifest())
        stored = store.read_manifest()
        assert stored is not None
        assert stored.fingerprint() == self._manifest().fingerprint()
        assert stored.created_at != ""  # stamped on write

    def test_verify_or_write_writes_then_verifies(self, tmp_path):
        store = TrialStore(tmp_path / "t.jsonl")
        store.verify_or_write_manifest(self._manifest())
        store.verify_or_write_manifest(self._manifest())  # same identity: ok
        with pytest.raises(ResumeMismatchError, match="jitter"):
            store.verify_or_write_manifest(self._manifest(latency_jitter=0.5))


class TestExperimentResumeGate:
    def _experiment(self, store, **overrides):
        kwargs = dict(
            evaluator=SurrogateEvaluator(seed=0),
            strategy=GridSearch(SMALL_SPACE),
            store=store,
            latency_jitter=0.006,
            jitter_seed=0,
            skip_existing=True,
        )
        kwargs.update(overrides)
        return Experiment(**kwargs)

    def test_resume_same_settings_skips(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = self._experiment(TrialStore(path), skip_existing=False)
        first.run(budget=4)
        first.store.close()

        store = TrialStore(path)
        store.load()
        result = self._experiment(store).run(budget=4)
        assert result.skipped == 4 and result.launched == 0

    def test_resume_with_different_seed_refuses(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = self._experiment(TrialStore(path), skip_existing=False)
        first.run(budget=2)
        first.store.close()

        store = TrialStore(path)
        store.load()
        with pytest.raises(ResumeMismatchError, match="seeds"):
            self._experiment(store, jitter_seed=1).run(budget=2)

    def test_resume_with_different_jitter_refuses(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._experiment(TrialStore(path), skip_existing=False).run(budget=2)
        store = TrialStore(path)
        store.load()
        with pytest.raises(ResumeMismatchError, match="latency_jitter"):
            self._experiment(store, latency_jitter=0.02).run(budget=2)

    def test_fresh_run_writes_manifest(self, tmp_path):
        store = TrialStore(tmp_path / "sweep.jsonl")
        self._experiment(store, skip_existing=False).run(budget=1)
        assert store.read_manifest() is not None
