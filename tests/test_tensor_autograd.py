"""Gradient and semantics tests for the core autograd engine."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, no_grad, is_grad_enabled
from repro.tensor.tensor import stack


def _t(shape, seed=0, requires_grad=True, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale, requires_grad=requires_grad)


class TestBasics:
    def test_dtype_always_float32(self):
        assert Tensor([1, 2, 3]).dtype == np.float32
        assert Tensor(np.arange(3, dtype=np.float64)).dtype == np.float32

    def test_item_scalar_only(self):
        assert Tensor([[2.0]]).item() == 2.0
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_detach_shares_data_cuts_graph(self):
        x = _t((3,))
        d = x.detach()
        assert d.data is x.data
        assert not d.requires_grad

    def test_zeros_ones_factories(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert float(Tensor.ones(4).data.sum()) == 4.0

    def test_len_and_repr(self):
        x = _t((5, 2))
        assert len(x) == 5
        assert "shape=(5, 2)" in repr(x)


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_backward_nonscalar_needs_seed(self):
        x = _t((3,))
        y = x * 2
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(x.grad, 2.0 * np.ones(3))

    def test_seed_shape_checked(self):
        x = _t((3,))
        with pytest.raises(ValueError):
            (x * 1.0).backward(np.ones(2, dtype=np.float32))

    def test_grad_accumulates_across_backward_calls(self):
        x = _t((2,))
        (x * 3.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, 6.0 * np.ones(2))

    def test_zero_grad(self):
        x = _t((2,))
        (x.sum()).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        x = _t((3,))
        y = x * 2.0
        z = (y + y).sum()  # two paths through y
        z.backward()
        np.testing.assert_allclose(x.grad, 4.0 * np.ones(3))

    def test_deep_chain_no_recursion_error(self):
        x = _t((2,))
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(2))

    def test_no_grad_disables_tape(self):
        x = _t((2,))
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()


class TestArithmeticGradients:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda ts: ts[0] + ts[1],
            lambda ts: ts[0] - ts[1],
            lambda ts: ts[0] * ts[1],
            lambda ts: ts[0] / (ts[1] * ts[1] + 2.0),
        ],
        ids=["add", "sub", "mul", "div"],
    )
    def test_binary_ops(self, fn):
        check_gradients(fn, [_t((3, 4), seed=1), _t((3, 4), seed=2)])

    def test_broadcast_add(self):
        check_gradients(lambda ts: ts[0] + ts[1], [_t((3, 4), 1), _t((4,), 2)])

    def test_broadcast_mul_scalar_operand(self):
        check_gradients(lambda ts: ts[0] * ts[1], [_t((2, 3), 1), _t((1,), 2)])

    def test_neg_pow(self):
        check_gradients(lambda ts: -(ts[0] ** 2.0), [_t((4,), 3)])

    def test_rsub_rdiv(self):
        x = Tensor([2.0, 4.0], requires_grad=True)
        y = 1.0 - x
        np.testing.assert_allclose(y.data, [-1.0, -3.0])
        z = 8.0 / x
        np.testing.assert_allclose(z.data, [4.0, 2.0])

    def test_matmul_grad(self):
        check_gradients(lambda ts: ts[0] @ ts[1], [_t((3, 4), 1), _t((4, 2), 2)])

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            _t((3,)) @ _t((3,))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            _t((2,)) ** _t((2,))  # type: ignore[operator]


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        check_gradients(lambda ts: ts[0].sum(axis=1), [_t((3, 4))])
        check_gradients(lambda ts: ts[0].sum(axis=(0, 2), keepdims=True), [_t((2, 3, 4))])

    def test_mean_matches_numpy(self):
        x = _t((4, 5))
        np.testing.assert_allclose(x.mean(axis=0).data, x.data.mean(axis=0), rtol=1e-5)
        check_gradients(lambda ts: ts[0].mean(axis=1), [_t((3, 4))])

    def test_max_grad_flows_to_argmax(self):
        x = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor([[3.0, 3.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])

    def test_reshape_transpose_grads(self):
        check_gradients(lambda ts: ts[0].reshape(6, 2) * 3.0, [_t((3, 4))])
        check_gradients(lambda ts: ts[0].transpose(1, 0) * 2.0, [_t((3, 4))])

    def test_getitem_fancy_index(self):
        x = _t((5, 3))
        idx = np.array([0, 2, 2])
        y = x[idx]
        assert y.shape == (3, 3)
        y.sum().backward()
        assert x.grad[2].sum() == pytest.approx(2 * 3)  # row 2 picked twice

    def test_pad2d(self):
        x = _t((1, 1, 3, 3))
        y = x.pad2d(2)
        assert y.shape == (1, 1, 7, 7)
        check_gradients(lambda ts: ts[0].pad2d(1), [_t((1, 2, 3, 3))])
        with pytest.raises(ValueError):
            x.pad2d(-1)
        assert x.pad2d(0) is x

    def test_stack(self):
        xs = [_t((2, 2), seed=i) for i in range(3)]
        y = stack(xs, axis=0)
        assert y.shape == (3, 2, 2)
        y.sum().backward()
        for x in xs:
            np.testing.assert_allclose(x.grad, np.ones((2, 2)))


class TestPointwise:
    def test_relu_grad(self):
        check_gradients(lambda ts: ts[0].relu(), [_t((4, 4), scale=2.0)])

    def test_exp_log_sqrt_grads(self):
        check_gradients(lambda ts: ts[0].exp(), [_t((3,), scale=0.5)])
        positive = Tensor(np.abs(np.random.default_rng(0).normal(size=4)) + 1.0, requires_grad=True)
        check_gradients(lambda ts: ts[0].log(), [positive])
        check_gradients(lambda ts: ts[0].sqrt(), [positive])
