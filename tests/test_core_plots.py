"""ASCII figure rendering."""

import numpy as np
import pytest

from repro.core.figures import RadarSolution
from repro.core.plots import ascii_radar_bars, ascii_scatter


class TestAsciiScatter:
    def test_contains_points_and_highlights(self):
        rng = np.random.default_rng(0)
        x, y = rng.random(50), rng.random(50)
        highlight = np.zeros(50, dtype=bool)
        highlight[:3] = True
        out = ascii_scatter(x, y, highlight, x_label="latency", y_label="accuracy")
        assert "." in out and "O" in out
        assert "latency" in out and "accuracy" in out

    def test_axis_ranges_printed(self):
        x = np.array([1.0, 9.0])
        y = np.array([2.0, 8.0])
        out = ascii_scatter(x, y)
        assert "1" in out and "9" in out and "8" in out

    def test_single_point(self):
        out = ascii_scatter(np.array([1.0]), np.array([1.0]))
        assert "." in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros(0), np.zeros(0))

    def test_highlights_never_hidden(self):
        # A highlighted point at the same cell as normal points shows as O.
        x = np.array([0.5, 0.5, 0.5])
        y = np.array([0.5, 0.5, 0.5])
        mask = np.array([False, False, True])
        assert "O" in ascii_scatter(x, y, mask)


class TestAsciiRadarBars:
    def _solution(self, pooled=False):
        return RadarSolution(label="ch7-b16", pooled=pooled,
                             axes=["accuracy", "latency_ms"], values=[1.0, 0.25])

    def test_bars_scale_with_values(self):
        out = ascii_radar_bars([self._solution()], width=20)
        assert "#" * 20 in out  # the 1.0 axis is a full bar
        assert "#" * 5 + "-" in out  # the 0.25 axis is a quarter bar

    def test_group_labels(self):
        out = ascii_radar_bars([self._solution(pooled=True)])
        assert "[pool]" in out
        out2 = ascii_radar_bars([self._solution(pooled=False)])
        assert "[no-pool]" in out2

    def test_empty(self):
        assert "no solutions" in ascii_radar_bars([])
