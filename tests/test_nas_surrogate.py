"""Surrogate accuracy model: calibration fidelity and orderings."""

import numpy as np
import pytest

from repro.nas.config import ModelConfig
from repro.nas.surrogate import (
    DEFAULT_COEFFICIENTS,
    PAPER_ACCURACY_ANCHORS,
    SurrogateCoefficients,
    SurrogateEvaluator,
    featurize,
    fit_surrogate,
)


def _cfg(**kw):
    base = dict(channels=5, batch=16, kernel_size=3, stride=2, padding=1,
                pool_choice=0, kernel_size_pool=3, stride_pool=2, initial_output_feature=32)
    base.update(kw)
    return ModelConfig(**base)


class TestFeaturize:
    def test_vector_length_matches_coefficients(self):
        vec = featurize(_cfg())
        assert vec.shape == DEFAULT_COEFFICIENTS.as_vector().shape

    def test_pad_mismatch_feature(self):
        idx = 8  # pad_mismatch position
        assert featurize(_cfg(kernel_size=3, padding=1))[idx] == 0
        assert featurize(_cfg(kernel_size=3, padding=3))[idx] == 2
        assert featurize(_cfg(kernel_size=7, padding=3))[idx] == 0

    def test_coefficient_vector_roundtrip(self):
        vec = DEFAULT_COEFFICIENTS.as_vector()
        back = SurrogateCoefficients.from_vector(vec)
        assert back == DEFAULT_COEFFICIENTS


class TestCalibration:
    def test_anchor_residuals_small(self):
        vec = DEFAULT_COEFFICIENTS.as_vector()
        for config, paper_acc in PAPER_ACCURACY_ANCHORS:
            predicted = float(featurize(config) @ vec)
            assert abs(predicted - paper_acc) < 0.6, (config, predicted, paper_acc)

    def test_fit_reproduces_frozen_defaults(self):
        fitted = fit_surrogate()
        np.testing.assert_allclose(
            fitted.as_vector(), DEFAULT_COEFFICIENTS.as_vector(), atol=0.02
        )

    def test_global_argmax_is_paper_winner(self, winner_config):
        from repro.nas.searchspace import DEFAULT_SPACE

        evaluator = SurrogateEvaluator(noise_sigma=0.0)
        best = max(DEFAULT_SPACE.iter_all(), key=evaluator.expected_accuracy)
        assert best.architecture_key() == winner_config.architecture_key()
        assert best.batch == 16


class TestOrderings:
    """The qualitative orderings Table 5 reports must hold noise-free."""

    def setup_method(self):
        self.ev = SurrogateEvaluator(noise_sigma=0.0)

    def test_seven_channels_beat_five(self):
        assert self.ev.expected_accuracy(_cfg(channels=7)) > self.ev.expected_accuracy(_cfg(channels=5))

    def test_batch16_is_sweet_spot(self):
        b8 = self.ev.expected_accuracy(_cfg(batch=8))
        b16 = self.ev.expected_accuracy(_cfg(batch=16))
        b32 = self.ev.expected_accuracy(_cfg(batch=32))
        assert b16 > b8 > b32

    def test_small_model_competitive_with_wide(self):
        f32 = self.ev.expected_accuracy(_cfg(initial_output_feature=32))
        f64 = self.ev.expected_accuracy(_cfg(initial_output_feature=64))
        assert f32 >= f64

    def test_stride1_without_pool_is_bad(self):
        good = self.ev.expected_accuracy(_cfg(stride=2))
        bad = self.ev.expected_accuracy(_cfg(stride=1))
        assert good - bad > 4.0

    def test_padding_mismatch_hurts(self):
        assert self.ev.expected_accuracy(_cfg(padding=1)) > self.ev.expected_accuracy(_cfg(padding=3))


class TestEvaluator:
    def test_deterministic_per_config_seed(self):
        ev = SurrogateEvaluator(seed=5)
        a = ev.evaluate(_cfg())
        b = ev.evaluate(_cfg())
        assert a.accuracy == b.accuracy
        assert a.fold_accuracies == b.fold_accuracies

    def test_different_configs_get_different_noise(self):
        ev = SurrogateEvaluator(seed=5)
        assert ev.evaluate(_cfg(batch=8)).accuracy != ev.evaluate(_cfg(batch=8, kernel_size_pool=2)).accuracy

    def test_folds_average_to_mean(self):
        result = SurrogateEvaluator().evaluate(_cfg())
        assert np.mean(result.fold_accuracies) == pytest.approx(result.accuracy, abs=0.02)
        assert len(result.fold_accuracies) == 5

    def test_clipping(self):
        coeffs = SurrogateCoefficients(intercept=200.0)
        assert SurrogateEvaluator(coefficients=coeffs, noise_sigma=0.0).expected_accuracy(_cfg()) <= 99.5

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            SurrogateEvaluator(noise_sigma=-1.0)
