"""Coverage for smaller surfaces: summaries, reports, analysis variants."""

import numpy as np
import pytest

from repro.nas.config import ModelConfig
from repro.pareto import ObjectiveSense, ParetoAnalysis


class TestParetoAnalysisVariants:
    def _records(self):
        rng = np.random.default_rng(0)
        return [
            {"accuracy": float(90 + rng.random() * 8),
             "latency_ms": float(8 + rng.random() * 40),
             "memory_mb": float(rng.choice([11.2, 25.2, 44.8]))}
            for _ in range(60)
        ]

    def test_naive_and_kung_agree_on_records(self):
        records = self._records()
        kung = ParetoAnalysis(algorithm="kung").run(records)
        naive = ParetoAnalysis(algorithm="naive").run(records)
        np.testing.assert_array_equal(np.sort(kung.front_indices), np.sort(naive.front_indices))

    def test_single_objective(self):
        analysis = ParetoAnalysis(objectives=(("accuracy", ObjectiveSense.MAX),))
        records = self._records()
        front = analysis.front_records(records)
        assert len(front) == 1
        assert front[0]["accuracy"] == max(r["accuracy"] for r in records)

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError):
            ParetoAnalysis(objectives=())

    def test_front_values_property(self):
        result = ParetoAnalysis().run(self._records())
        assert result.front_values.shape == (result.front_size(), 3)


class TestModelConfigMisc:
    def test_from_dict_ignores_extra_keys(self):
        data = ModelConfig.baseline().to_dict()
        data["accuracy"] = 95.0  # analysis records carry extras
        config = ModelConfig.from_dict(data)
        assert config == ModelConfig.baseline()

    def test_invalid_geometry_detected(self):
        # Stride-2 7x7 stem + aggressive pooling collapses small inputs.
        config = ModelConfig(channels=5, batch=8, kernel_size=7, stride=2, padding=3,
                             pool_choice=1, kernel_size_pool=3, stride_pool=2,
                             initial_output_feature=32)
        assert config.is_valid_for((100, 100))
        # 4x4 input: the stem leaves 2x2, which the 3x3 pool collapses.
        assert not config.is_valid_for((4, 4))

    def test_canonical_idempotent(self):
        config = ModelConfig(channels=5, batch=8, kernel_size=3, stride=2, padding=1,
                             pool_choice=0, kernel_size_pool=3, stride_pool=2,
                             initial_output_feature=32)
        assert config.canonical() == config.canonical().canonical()


class TestTrialRecordObjectiveIntegrity:
    def test_store_analysis_records_have_all_keys(self):
        from repro.nas import Experiment, GridSearch, SurrogateEvaluator
        from repro.nas.searchspace import SearchSpace

        space = SearchSpace(kernel_size=(3,), stride=(2,), padding=(1,), pool_choice=(0,),
                            kernel_size_pool=(3,), stride_pool=(2,),
                            initial_output_feature=(32,), channels=(5,), batches=(8,))
        result = Experiment(SurrogateEvaluator(), GridSearch(space), input_hw=(48, 48)).run(budget=1)
        (record,) = result.store.analysis_records()
        required = {"accuracy", "latency_ms", "memory_mb", "lat_std", "trial_id",
                    "channels", "batch", "kernel_size", "stride", "padding",
                    "pool_choice", "kernel_size_pool", "stride_pool", "initial_output_feature"}
        assert required <= set(record)


class TestLatencySummaryProperties:
    def test_summary_dict_keys(self):
        from repro.latency.predictors import LatencySummary

        summary = LatencySummary(per_device_ms={"a": 10.0, "b": 20.0})
        assert summary.mean_ms == 15.0
        assert summary.std_ms == 5.0
        flat = summary.as_dict()
        assert flat["a"] == 10.0 and flat["latency_ms"] == 15.0


class TestProfilerFlopsAttribution:
    def test_pooled_model_stage_names(self):
        from repro.nn import SearchableResNet18
        from repro.profiling import profile_model

        model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                                   pool_choice=1, kernel_size_pool=2, stride_pool=2,
                                   initial_output_feature=32)
        profiles = profile_model(model, batch=1, input_hw=(32, 32), repeats=1)
        assert [p.name for p in profiles] == ["stem", "layer1", "layer2", "layer3", "layer4", "head"]
        assert all(p.flops >= 0 for p in profiles)
