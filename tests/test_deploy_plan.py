"""Compiled inference plans: equivalence, fusion alignment, memory planning.

The compiled path must agree with BOTH independent implementations —
the interpreted onnxlite runtime and the repro.nn training stack — to
tight tolerance across fuzzed search-space configs (fp32 and quantized),
its kernel grouping must match what the latency predictors price, and
its static release schedule must never free a buffer that is still read
(guarded by NaN-poisoning released arena slots in debug mode).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.deploy import Arena, compile_plan, load_runtime
from repro.deploy.passes import build_plan_nodes, fuse_operators, toposort_nodes
from repro.graph.trace import trace_model
from repro.latency.fusion import FUSION_RULES, fuse_graph, fusion_rule
from repro.nas.config import ModelConfig
from repro.nn import SearchableResNet18, build_model
from repro.onnxlite.export import export_model
from repro.onnxlite.reader import proto_from_bytes
from repro.quant.export import export_quantized_model
from repro.quant.model import fake_quantize_model
from repro.tensor.tensor import Tensor, no_grad

ATOL = 1e-4
RTOL = 1e-3


def _model(**kw):
    defaults = dict(in_channels=5, kernel_size=3, stride=2, padding=1,
                    pool_choice=0, initial_output_feature=32, seed=3)
    defaults.update(kw)
    return SearchableResNet18(**defaults)


def _reference_logits(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def _config(channels, kernel, stride, pool, feature):
    padding = 1 if kernel == 3 else 3
    return ModelConfig(channels=channels, batch=8, kernel_size=kernel, stride=stride,
                       padding=padding, pool_choice=pool, kernel_size_pool=3,
                       stride_pool=2, initial_output_feature=feature)


class TestEquivalence:
    """compiled == interpreted == repro.nn on fuzzed search-space configs."""

    @settings(max_examples=16, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        channels=st.sampled_from((5, 7)),
        kernel=st.sampled_from((3, 7)),
        stride=st.sampled_from((1, 2)),
        pool=st.sampled_from((0, 1)),
        feature=st.sampled_from((32, 48)),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_fuzz_fp32_three_way_agreement(self, channels, kernel, stride, pool, feature, seed):
        config = _config(channels, kernel, stride, pool, feature)
        model = build_model(config, seed=seed)
        runtime = load_runtime(export_model(model, input_hw=(32, 32)))
        plan = runtime.compile(poison=True)  # poison: read-after-free -> NaN -> fail
        x = np.random.default_rng(seed).normal(size=(2, channels, 32, 32)).astype(np.float32)
        interpreted = runtime.run(x)
        compiled = plan.run(x)
        np.testing.assert_allclose(compiled, interpreted, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(compiled, _reference_logits(model, x), rtol=RTOL, atol=ATOL)
        assert np.isfinite(compiled).all()

    @pytest.mark.parametrize("channels,kernel,stride,pool,feature,dtype", [
        (5, 3, 2, 0, 32, "int8"),
        (7, 3, 2, 0, 32, "int8"),
        (5, 7, 2, 1, 32, "int8"),
        (7, 7, 1, 1, 48, "int8"),
        (5, 3, 1, 0, 48, "int16"),
        (7, 3, 2, 1, 32, "int16"),
    ])
    def test_quantized_three_way_agreement(self, channels, kernel, stride, pool, feature, dtype):
        config = _config(channels, kernel, stride, pool, feature)
        model = build_model(config, seed=1)
        blob = export_quantized_model(model, input_hw=(32, 32), dtype=dtype)
        runtime = load_runtime(blob)
        plan = runtime.compile(poison=True)
        x = np.random.default_rng(7).normal(size=(2, channels, 32, 32)).astype(np.float32)
        interpreted = runtime.run(x)
        compiled = plan.run(x)
        np.testing.assert_allclose(compiled, interpreted, rtol=RTOL, atol=ATOL)
        # Reference: the same model with fake-quantized (round-tripped)
        # weights run through the training stack.
        fake_quantize_model(model, dtype=dtype)
        np.testing.assert_allclose(compiled, _reference_logits(model, x), rtol=RTOL, atol=ATOL)

    def test_batch_sizes_and_repeat_runs_are_stable(self):
        model = _model()
        plan = load_runtime(export_model(model, input_hw=(32, 32))).compile(poison=True)
        rng = np.random.default_rng(0)
        first = None
        for batch in (1, 3, 8, 1):
            x = rng.normal(size=(batch, 5, 32, 32)).astype(np.float32)
            out = plan.run(x)
            assert out.shape == (batch, 2)
            again = plan.run(x)
            np.testing.assert_array_equal(out, again)
            if first is None:
                first = (x[:1].copy(), out[:1].copy())
        # Re-running the very first sample after many arena recycles
        # still reproduces the original logits bit-for-bit.
        np.testing.assert_array_equal(plan.run(first[0]), first[1])

    def test_predictions_match_interpreter(self):
        runtime = load_runtime(export_model(_model(seed=9), input_hw=(32, 32)))
        plan = runtime.compile()
        x = np.random.default_rng(3).normal(size=(8, 5, 32, 32)).astype(np.float32)
        np.testing.assert_array_equal(plan.predict(x), runtime.predict(x))

    def test_input_is_never_mutated(self):
        plan = load_runtime(export_model(_model(), input_hw=(32, 32))).compile()
        x = np.random.default_rng(5).normal(size=(2, 5, 32, 32)).astype(np.float32)
        snapshot = x.copy()
        plan.run(x)
        np.testing.assert_array_equal(x, snapshot)


class TestFusionAlignment:
    """Executed kernels == the kernels the latency predictors price."""

    @pytest.mark.parametrize("pool", [0, 1])
    def test_compiled_chains_match_latency_fusion(self, pool):
        model = _model(pool_choice=pool, kernel_size_pool=3, stride_pool=2)
        graph = trace_model(model, input_hw=(64, 64))
        predicted = sorted(
            tuple(fusion_name(n.op) for n in fused.nodes) for fused in fuse_graph(graph)
        )
        plan = load_runtime(export_model(model, input_hw=(64, 64))).compile()
        executed = sorted(plan.kernel_chains())
        assert executed == predicted

    def test_rule_table_is_shared(self):
        # The deploy compiler consumes FUSION_RULES directly; the IR-side
        # helper must expose the identical chains.
        from repro.graph.ir import OpType

        assert fusion_rule(OpType.CONV) == (OpType.BATCH_NORM, OpType.RELU)
        assert fusion_rule("Conv") == (OpType.BATCH_NORM, OpType.RELU)
        assert fusion_rule(OpType.ADD) == (OpType.RELU,)
        assert fusion_rule(OpType.MAX_POOL) == ()
        assert set(FUSION_RULES) == {"Conv", "Add"}

    def test_every_batchnorm_is_folded(self):
        plan = load_runtime(export_model(_model(), input_hw=(32, 32))).compile()
        for chain in plan.kernel_chains():
            assert chain[0] != "BatchNormalization"
            if "BatchNormalization" in chain:
                assert chain[0] == "Conv"

    def test_fan_out_tensor_is_not_fused_away(self):
        # The block-input tensor feeds both conv1 and the residual add;
        # the pass pipeline must keep it materialized.
        proto = proto_from_bytes(export_model(_model(), input_hw=(32, 32)))
        weights = {t.name: t.dequantized() for t in proto.initializers}
        nodes = toposort_nodes(fuse_operators(build_plan_nodes(proto, weights)))
        produced = {n.output for n in nodes}
        adds = [n for n in nodes if n.op_type == "Add"]
        assert adds
        for add in adds:
            for name in add.inputs:
                assert name == "input" or name in produced


class TestMemoryPlanning:
    def test_planner_cuts_peak_live_memory(self):
        plan = load_runtime(export_model(_model(), input_hw=(64, 64))).compile()
        assert plan.planned_peak_bytes(1) < plan.naive_env_bytes(1) / 4

    def test_release_schedule_never_frees_a_live_tensor(self):
        plan = load_runtime(export_model(_model(), input_hw=(32, 32))).compile()
        released_at: dict[str, int] = {}
        for step_idx, step in enumerate(plan.steps):
            for name in step.inputs:
                assert released_at.get(name, step_idx) >= step_idx, (
                    f"step {step_idx} ({step.name}) reads {name!r} released "
                    f"at step {released_at[name]}"
                )
            for name in (*step.release, *step.drop):
                assert name not in released_at
                released_at[name] = step_idx
        # Every intermediate except the final output is eventually freed.
        outputs = {s.output for s in plan.steps} - {plan.final_output}
        assert outputs <= set(released_at)

    def test_arena_drains_after_each_run(self):
        plan = load_runtime(export_model(_model(), input_hw=(32, 32))).compile()
        x = np.zeros((2, 5, 32, 32), dtype=np.float32)
        plan.run(x)
        assert plan.arena.live_count == 0
        assert plan.arena.current_bytes == 0
        stats = plan.memory_stats()
        assert stats["allocations"] > 0
        plan.run(x)
        # Steady state: the pool satisfies every request, no new buffers.
        assert plan.memory_stats()["allocations"] == stats["allocations"]
        assert plan.memory_stats()["reuses"] > stats["reuses"]

    def test_poison_catches_a_premature_release(self):
        """Sabotage the schedule: poison mode must corrupt the output."""
        model = _model()
        runtime = load_runtime(export_model(model, input_hw=(32, 32)))
        good = runtime.compile(poison=True)
        x = np.random.default_rng(0).normal(size=(1, 5, 32, 32)).astype(np.float32)
        baseline = good.run(x)
        assert np.isfinite(baseline).all()

        bad = runtime.compile(poison=True)
        # Simulate a planner bug: return a tensor's buffer to the arena
        # the moment it is produced, while later kernels still read it.
        victim = None
        for i, step in enumerate(bad.steps):
            if any(step.output in s.inputs for s in bad.steps[i + 1 :]):
                victim = (i, step.output)
                break
        assert victim is not None
        i, name = victim
        for step in bad.steps:  # avoid a double-free masking the bug
            if name in step.release:
                step.release.remove(name)
        victim_step = bad.steps[i]
        orig_run = victim_step.run

        def sabotaged(env):
            out = orig_run(env)
            bad.arena.release(out)  # freed-while-live: poison fills it with NaN
            return out

        victim_step.run = sabotaged
        corrupted = bad.run(x)
        assert (not np.isfinite(corrupted).all()) or not np.allclose(
            corrupted, baseline, rtol=1e-3, atol=1e-4
        )

    def test_arena_rejects_foreign_buffers(self):
        arena = Arena()
        with pytest.raises(KeyError):
            arena.release(np.zeros(4, dtype=np.float32))

    def test_arena_reuses_and_poisons(self):
        arena = Arena(poison=True)
        a = arena.acquire((2, 3))
        a[:] = 1.0
        arena.release(a)
        assert np.isnan(a).all()  # poisoned on release
        b = arena.acquire((3, 2))  # same size -> same base buffer
        assert arena.allocations == 1 and arena.reuses == 1


class TestPlanValidation:
    def test_wrong_spatial_size_rejected(self):
        plan = load_runtime(export_model(_model(), input_hw=(32, 32))).compile()
        with pytest.raises(ValueError, match="compiled for input"):
            plan.run(np.zeros((1, 5, 48, 48), dtype=np.float32))
        with pytest.raises(ValueError):
            plan.run(np.zeros((1, 7, 32, 32), dtype=np.float32))

    def test_empty_model_rejected(self):
        from repro.onnxlite.schema import ModelProto

        with pytest.raises(ValueError, match="no operators"):
            compile_plan(ModelProto("m", (1, 8, 8), (1,)))

    def test_describe_and_repr(self):
        plan = load_runtime(export_model(_model(), input_hw=(32, 32))).compile()
        text = plan.describe()
        assert "Conv+BatchNormalization+Relu" in text
        assert "InferencePlan" in repr(plan)
        assert plan.num_kernels < len(plan.shapes)


def fusion_name(op) -> str:
    """IR OpType -> onnxlite operator-type string (test-local helper)."""
    from repro.latency.fusion import _IR_TO_ONNX

    full = dict(_IR_TO_ONNX)
    from repro.graph.ir import OpType

    full.setdefault(OpType.MAX_POOL, "MaxPool")
    full.setdefault(OpType.GLOBAL_AVG_POOL, "GlobalAveragePool")
    full.setdefault(OpType.FLATTEN, "Flatten")
    full.setdefault(OpType.FC, "Gemm")
    return full[op]
