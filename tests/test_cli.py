"""CLI surface tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["space"])
        assert args.command == "space"
        for cmd in ("sweep", "baseline"):
            assert build_parser().parse_args([cmd]).command == cmd

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_space(self, capsys):
        assert main(["space"]) == 0
        out = capsys.readouterr().out
        assert "288" in out and "1728" in out

    def test_latency(self, capsys):
        code = main([
            "latency", "--channels", "7", "--kernel-size", "3", "--padding", "1",
            "--pool-choice", "0", "--initial-output-feature", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cortexA76cpu" in out and "MEAN" in out

    def test_sweep_and_pareto(self, tmp_path, capsys):
        trials = tmp_path / "trials.jsonl"
        assert main(["sweep", "--out", str(trials), "--budget", "24"]) == 0
        assert trials.exists()
        html = tmp_path / "scatter.html"
        assert main(["pareto", str(trials), "--html", str(html)]) == 0
        out = capsys.readouterr().out
        assert "Non-dominated" in out
        assert html.exists() and "const DATA" in html.read_text()

    def test_pareto_missing_file(self, tmp_path):
        assert main(["pareto", str(tmp_path / "none.jsonl")]) == 1

    def test_energy(self, capsys):
        assert main(["energy", "--kernel-size", "3", "--padding", "1",
                     "--pool-choice", "0", "--initial-output-feature", "32"]) == 0
        out = capsys.readouterr().out
        assert "energy_mj" in out and "myriadvpu" in out

    def test_quantize(self, capsys):
        assert main(["quantize", "--kernel-size", "3", "--padding", "1",
                     "--pool-choice", "0", "--initial-output-feature", "32"]) == 0
        out = capsys.readouterr().out
        assert "int8 storage" in out and "x smaller" in out

    def test_profile(self, capsys):
        code = main([
            "profile", "--size", "32", "--profile-batch", "1",
            "--kernel-size", "3", "--padding", "1", "--pool-choice", "0",
            "--initial-output-feature", "32",
        ])
        assert code == 0
        assert "stem" in capsys.readouterr().out

    def test_infer_compiled_and_interpreted(self, capsys):
        base = ["infer", "--size", "24", "--batch", "4", "--runs", "1",
                "--kernel-size", "3", "--padding", "1", "--pool-choice", "0",
                "--initial-output-feature", "32"]
        assert main(base) == 0
        compiled_out = capsys.readouterr().out
        assert "compiled plan" in compiled_out and "images/sec" in compiled_out
        assert main(base + ["--no-compiled"]) == 0
        interp_out = capsys.readouterr().out
        assert "interpreted" in interp_out
        # The equivalence guarantee in action: identical logits print.
        logits = [line for line in compiled_out.splitlines() if "logits" in line]
        assert logits and logits[0] in interp_out

    def test_serve_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "serving.json"
        code = main([
            "serve-bench", "--size", "24", "--duration", "0.4", "--clients", "8",
            "--max-batch", "4", "--max-delay-ms", "2", "--queue-depth", "32",
            "--json", str(out),
            "--kernel-size", "3", "--padding", "1", "--pool-choice", "0",
            "--initial-output-feature", "32",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "images/sec" in text and "speedup" in text
        import json
        payload = json.loads(out.read_text())
        assert payload["serving"]["served"] > 0
        assert payload["policy"]["max_batch_size"] == 4
        assert "speedup_vs_serial" in payload

    def test_quantized_infer_then_serve_bench_share_autotune_cache(self, tmp_path, capsys):
        """The int8 scenario end to end: infer prints the variant/energy
        table, serve-bench reuses the autotune cache (same fingerprint +
        batch) and emits the decision-table artifact."""
        cache = tmp_path / "autotune.json"
        base = ["--size", "24", "--kernel-size", "3", "--padding", "1",
                "--pool-choice", "0", "--initial-output-feature", "32",
                "--quantized", "--autotune-cache", str(cache)]
        assert main(["infer", "--batch", "4", "--runs", "1", *base]) == 0
        out = capsys.readouterr().out
        assert "autotuned" in out and "Kernel variants & estimated energy" in out
        assert "energy/inference" in out
        assert cache.exists()

        serving = tmp_path / "serving.json"
        table = tmp_path / "autotune_table.json"
        code = main([
            "serve-bench", "--duration", "0.4", "--clients", "4",
            "--max-batch", "4", "--max-delay-ms", "2", "--queue-depth", "32",
            "--json", str(serving), "--autotune-json", str(table), *base,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cached decisions" in out  # infer's cache entry replayed
        assert "quantized vs fp32 serial" in out
        import json
        payload = json.loads(serving.read_text())
        assert payload["quantized"]["autotuned_layers"] > 0
        assert payload["quantized"]["autotune_cached"] is True
        assert payload["quantized"]["quantized_vs_fp32"] > 0
        decisions = json.loads(table.read_text())
        assert decisions["variants"] and decisions["batch"] == 4
        for row in decisions["table"].values():
            assert row["chosen"] in row["timings_us"]

    def test_serve_bench_process_mode_json(self, tmp_path, capsys):
        out = tmp_path / "serving_mp.json"
        code = main([
            "serve-bench", "--size", "24", "--duration", "0.4", "--clients", "8",
            "--max-batch", "4", "--max-delay-ms", "2", "--queue-depth", "32",
            "--worker-mode", "process", "--workers", "2",
            "--json", str(out),
            "--kernel-size", "3", "--padding", "1", "--pool-choice", "0",
            "--initial-output-feature", "32",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "mode process" in text and "pids" in text
        import json
        payload = json.loads(out.read_text())
        assert payload["policy"]["worker_mode"] == "process"
        assert payload["serving"]["served"] > 0
        assert payload["counters"]["batches_executed"] > 0
        assert payload["counters"]["worker_deaths"] == 0
        extra = payload["extra_info"]
        assert extra["worker_mode"] == "process"
        assert extra["cpu_count"] >= 1
        # Replicas were clamped to the cores actually available.
        assert 1 <= extra["workers"] <= extra["cpu_count"]
        assert extra["degraded"] is False
        assert extra["shared_weight_bytes"] > 0
        assert extra["worker_private_weight_bytes"] == 0

    def test_serve_bench_policy_seeding(self, capsys):
        code = main([
            "serve-bench", "--size", "24", "--duration", "0.3", "--clients", "4",
            "--target-p99-ms", "200",
            "--kernel-size", "3", "--padding", "1", "--pool-choice", "0",
            "--initial-output-feature", "32",
        ])
        assert code == 0
        assert "policy seeded from latency predictors" in capsys.readouterr().out

    def test_serve_bench_dotted_policy_flags_alias_old_spellings(self):
        from repro.cli import build_parser

        parser = build_parser()
        dotted = parser.parse_args([
            "serve-bench", "--policy.max-batch-size", "4",
            "--policy.max-queue-delay-ms", "2", "--policy.max-queue-depth", "32",
            "--policy.replicas", "2", "--policy.worker-mode", "thread",
            "--policy.workers", "0",
        ])
        legacy = parser.parse_args([
            "serve-bench", "--max-batch", "4", "--max-delay-ms", "2",
            "--queue-depth", "32", "--replicas", "2", "--worker-mode", "thread",
            "--workers", "0",
        ])
        for dest in ("max_batch", "max_delay_ms", "queue_depth", "replicas",
                     "worker_mode", "workers"):
            assert getattr(dotted, dest) == getattr(legacy, dest)

    def test_serve_bench_json_records_resolved_serve_config(self, tmp_path):
        out = tmp_path / "serving.json"
        code = main([
            "serve-bench", "--size", "24", "--duration", "0.3", "--clients", "4",
            "--policy.max-batch-size", "4", "--policy.max-queue-delay-ms", "2",
            "--policy.max-queue-depth", "32",
            "--json", str(out),
            "--kernel-size", "3", "--padding", "1", "--pool-choice", "0",
            "--initial-output-feature", "32",
        ])
        assert code == 0
        import json
        payload = json.loads(out.read_text())
        resolved = payload["extra_info"]["serve_config"]
        assert resolved["policy"]["max_batch_size"] == 4
        assert resolved["policy"]["max_queue_depth"] == 32
        assert resolved["warm"] is True
        assert resolved["admission"] is None

    def test_serve_bench_fleet_scenario_json(self, tmp_path, capsys):
        out = tmp_path / "serving_fleet.json"
        code = main([
            "serve-bench", "--fleet", "3", "--size", "24", "--duration", "0.8",
            "--clients", "8", "--policy.max-batch-size", "4",
            "--policy.max-queue-delay-ms", "2", "--policy.max-queue-depth", "64",
            "--assert-slo", "0.5", "--json", str(out),
            "--kernel-size", "3", "--padding", "1", "--pool-choice", "0",
            "--initial-output-feature", "32",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "registered pareto-s" in text
        assert "SLO assertion passed" in text
        import json
        payload = json.loads(out.read_text())
        assert set(payload["models"]) == {"pareto-s", "pareto-m", "pareto-l"}
        assert payload["fleet"]["served"] > 0
        assert payload["fleet"]["errors"] == 0
        assert payload["all_routes_fit_budget"] is True
        assert payload["slo_attainment"] >= 0.5
        # Every tenant's traffic was routed somewhere on the ladder.
        assert sum(payload["fleet"]["per_model"].values()) == payload["fleet"]["served"]
        resolved = payload["extra_info"]["serve_config"]
        assert resolved["admission"]["tenants"]["interactive"]["priority"] == 1
        assert resolved["autoscaler"]["max_replicas"] >= 1
