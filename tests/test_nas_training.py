"""Real-training evaluator: the honest path, at miniature scale."""

import numpy as np
import pytest

from repro.nas.config import ModelConfig
from repro.nas.crossval import TrainSettings, cross_validate_model, evaluate_accuracy, train_one_model
from repro.nas.evaluators import TrainingEvaluator
from repro.nn.resnet import build_model


def _config(channels=5, batch=4):
    return ModelConfig(channels=channels, batch=batch, kernel_size=3, stride=2, padding=1,
                       pool_choice=0, kernel_size_pool=3, stride_pool=2, initial_output_feature=32)


class TestCrossValidate:
    def test_returns_k_fold_accuracies(self, tiny_dataset_5ch):
        settings = TrainSettings(epochs=1, k=2, lr=0.02)
        accs = cross_validate_model(_config(), tiny_dataset_5ch, settings=settings, seed=0)
        assert len(accs) == 2
        assert all(0.0 <= a <= 100.0 for a in accs)

    def test_channel_mismatch_rejected(self, tiny_dataset_7ch):
        with pytest.raises(ValueError):
            cross_validate_model(_config(channels=5), tiny_dataset_7ch, settings=TrainSettings(k=2))

    def test_deterministic_given_seed(self, tiny_dataset_5ch):
        settings = TrainSettings(epochs=1, k=2)
        a = cross_validate_model(_config(), tiny_dataset_5ch, settings=settings, seed=3)
        b = cross_validate_model(_config(), tiny_dataset_5ch, settings=settings, seed=3)
        assert a == b


class TestFoldParallelDeterminism:
    """The performance substrate must not change results — bit for bit."""

    def test_process_pool_matches_serial_bitwise(self, tiny_dataset_5ch):
        settings = TrainSettings(epochs=1, k=2, recalibrate_bn=False)
        serial = cross_validate_model(_config(), tiny_dataset_5ch, settings=settings, seed=7)
        from dataclasses import replace

        parallel = cross_validate_model(
            _config(), tiny_dataset_5ch,
            settings=replace(settings, executor="process", workers=2), seed=7,
        )
        assert parallel == serial  # exact equality, not approximate

    def test_workspaces_match_allocation_per_call_bitwise(self, tiny_dataset_5ch):
        from dataclasses import replace

        settings = TrainSettings(epochs=1, k=2)
        pooled = cross_validate_model(_config(), tiny_dataset_5ch, settings=settings, seed=5)
        plain = cross_validate_model(
            _config(), tiny_dataset_5ch,
            settings=replace(settings, workspaces=False), seed=5,
        )
        assert pooled == plain

    def test_folds_share_a_process_local_pool(self, tiny_dataset_5ch):
        from repro.nas import crossval
        from repro.nas.crossval import clear_fold_workspaces

        clear_fold_workspaces()
        settings = TrainSettings(epochs=1, k=2, recalibrate_bn=False)
        cross_validate_model(_config(), tiny_dataset_5ch, settings=settings, seed=1)
        pool = crossval._FOLD_POOL
        assert pool is not None and pool.misses > 0
        misses_first = pool.misses
        # Same geometry again: the warm pool serves everything from hits.
        cross_validate_model(_config(), tiny_dataset_5ch, settings=settings, seed=1)
        assert crossval._FOLD_POOL is pool
        assert pool.misses == misses_first
        clear_fold_workspaces()
        assert crossval._FOLD_POOL is None

    def test_explicit_executor_is_reused_not_closed(self, tiny_dataset_5ch):
        from repro.parallel import SerialExecutor

        settings = TrainSettings(epochs=1, k=2, recalibrate_bn=False)
        executor = SerialExecutor()
        via_executor = cross_validate_model(
            _config(), tiny_dataset_5ch, settings=settings, seed=7, executor=executor
        )
        owned = cross_validate_model(_config(), tiny_dataset_5ch, settings=settings, seed=7)
        assert via_executor == owned


class TestTrainOneModel:
    def test_loss_decreases_on_tiny_dataset(self, tiny_dataset_5ch):
        model = build_model(_config(), seed=0)
        indices = np.arange(len(tiny_dataset_5ch))
        settings_1 = TrainSettings(epochs=1)
        first = train_one_model(model, tiny_dataset_5ch, indices, batch_size=8,
                                settings=settings_1, rng_seed=0)
        later = train_one_model(model, tiny_dataset_5ch, indices, batch_size=8,
                                settings=TrainSettings(epochs=3), rng_seed=1)
        assert later < first

    def test_evaluate_accuracy_bounds(self, tiny_dataset_5ch):
        model = build_model(_config(), seed=0)
        acc = evaluate_accuracy(model, tiny_dataset_5ch, np.arange(8))
        assert 0.0 <= acc <= 100.0


class TestTrainingEvaluator:
    def test_evaluate_full_protocol(self):
        evaluator = TrainingEvaluator(samples_per_class=2, patch_size=24, epochs=1, k=2,
                                      regions=["nebraska"], seed=0)
        result = evaluator.evaluate(_config())
        assert len(result.fold_accuracies) == 2
        assert result.accuracy == pytest.approx(np.mean(result.fold_accuracies))

    def test_dataset_cached_per_channel_count(self):
        evaluator = TrainingEvaluator(samples_per_class=1, patch_size=24, epochs=1, k=2,
                                      regions=["nebraska"])
        assert evaluator._dataset(5) is evaluator._dataset(5)
        assert evaluator._dataset(5) is not evaluator._dataset(7)

    def test_batched_evaluate_equals_sequential_evaluates(self):
        evaluator = TrainingEvaluator(samples_per_class=2, patch_size=24, epochs=1, k=2,
                                      regions=["nebraska"], seed=0)
        configs = [_config(), _config(channels=7)]
        outcomes = evaluator.evaluate(configs)
        assert all(o.ok and o.config == c for o, c in zip(outcomes, configs))
        sequential = [evaluator.evaluate(c) for c in configs]
        assert [o.unwrap() for o in outcomes] == sequential  # content-derived seeds

    def test_batched_evaluate_process_pool_matches_serial(self):
        serial = TrainingEvaluator(samples_per_class=2, patch_size=24, epochs=1, k=2,
                                   regions=["nebraska"], seed=0)
        with TrainingEvaluator(samples_per_class=2, patch_size=24, epochs=1, k=2,
                               regions=["nebraska"], seed=0,
                               executor="process", workers=2) as pooled:
            configs = [_config(), _config(batch=8)]
            outcomes = pooled.evaluate(configs)
            assert [o.unwrap() for o in outcomes] == [serial.evaluate(c) for c in configs]
            assert all(o.duration_s > 0 for o in outcomes)

    def test_learns_better_than_chance_with_budget(self):
        # A slightly bigger run: the model must beat coin-flipping on
        # synthetic drainage data, demonstrating the dataset is learnable.
        evaluator = TrainingEvaluator(samples_per_class=6, patch_size=24, epochs=3, k=3,
                                      regions=["nebraska", "california"], seed=1, lr=0.02)
        result = evaluator.evaluate(_config(batch=8))
        assert result.accuracy > 60.0
