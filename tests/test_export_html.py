"""Interactive HTML export of the Figure-3 scatter."""

import json

import pytest

from repro.core.export_html import export_pareto_html


def _records(n=10):
    return [
        {"accuracy": 90.0 + i * 0.5, "latency_ms": 8.0 + i, "memory_mb": 11.2,
         "channels": 5, "batch": 8, "kernel_size": 3, "stride": 2, "padding": 1,
         "pool_choice": 0, "initial_output_feature": 32}
        for i in range(n)
    ]


class TestExportParetoHtml:
    def test_writes_self_contained_html(self, tmp_path):
        path = tmp_path / "pareto.html"
        size = export_pareto_html(_records(), [0, 9], path)
        assert size == path.stat().st_size
        html = path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html  # no external deps
        assert "10 trials" in html and "2 non-dominated" in html

    def test_data_embedded_and_parsable(self, tmp_path):
        path = tmp_path / "p.html"
        export_pareto_html(_records(4), [1], path)
        html = path.read_text()
        start = html.index("const DATA = ") + len("const DATA = ")
        end = html.index(";", start)
        data = json.loads(html[start:end])
        assert len(data) == 4
        assert data[0]["accuracy"] == 90.0
        front_start = html.index("new Set(") + len("new Set(")
        front = json.loads(html[front_start : html.index(")", front_start)])
        assert front == [1]

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            export_pareto_html([], [], tmp_path / "x.html")
        with pytest.raises(KeyError):
            export_pareto_html([{"accuracy": 1.0}], [], tmp_path / "x.html",
                               axes=("accuracy", "missing"))

    def test_integration_with_pipeline(self, tmp_path):
        from repro.core import HwNasPipeline
        from repro.nas import GridSearch, SurrogateEvaluator
        from repro.nas.searchspace import SearchSpace

        space = SearchSpace(kernel_size=(3,), stride=(2,), padding=(1,), pool_choice=(0,),
                            kernel_size_pool=(3,), stride_pool=(2,),
                            initial_output_feature=(32,), channels=(5,), batches=(8, 16))
        result = HwNasPipeline(SurrogateEvaluator(), space, GridSearch(space),
                               input_hw=(48, 48)).run()
        path = tmp_path / "sweep.html"
        export_pareto_html(result.records, result.pareto.front_indices.tolist(), path)
        assert path.stat().st_size > 2000
