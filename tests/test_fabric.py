"""Distributed sweep fabric: sharded store, lease table, coordinator.

Headline acceptance (the ISSUE's chaos certification): a 4-process-group
sweep suffering a SIGKILLed pool worker, an injected node death, a
heartbeat-loss window, a Ctrl-C and a truncated shard tail resumes —
under a *different* shard count — to analysis records bitwise-equal to a
fault-free serial run.
"""

from __future__ import annotations

import json
import os
import shutil
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.obs as obs
from repro.faults import (
    NodeFault,
    NodeFaultKind,
    NodeFaultPlan,
    corrupt_shard_tail,
    corrupt_store_tail,
    interrupt_after,
)
from repro.nas import (
    Deadline,
    Experiment,
    FabricSweep,
    GridSearch,
    Heartbeat,
    LeaseTable,
    ResumeMismatchError,
    SurrogateEvaluator,
    TrialStore,
    WorkerNode,
)
from repro.nas.fabric import (
    ShardedTrialStore,
    record_fingerprint,
    shard_filename,
    shard_index,
)
from repro.nas.fabric.lease import TrialTask
from repro.nas.retry import NodeKilledError, WorkerLostError, classify_error
from repro.nas.searchspace import SearchSpace
from repro.parallel import ProcessPoolExecutorBackend, pick_steal_victim

SPACE = SearchSpace(
    kernel_size=(3,), stride=(2,), padding=(1,), pool_choice=(0, 1),
    kernel_size_pool=(3,), stride_pool=(2,), initial_output_feature=(16, 32),
    channels=(5,), batches=(8, 16),
)
BUDGET = SPACE.total_configurations()  # 8
HW = (48, 48)


def _experiment(**overrides):
    kwargs = dict(
        evaluator=SurrogateEvaluator(seed=0),
        strategy=GridSearch(SPACE),
        input_hw=HW,
        latency_jitter=0.006,
        jitter_seed=0,
    )
    kwargs.update(overrides)
    return Experiment(**kwargs)


def _sweep(store, **overrides):
    kwargs = dict(
        evaluator=SurrogateEvaluator(seed=0),
        strategy=GridSearch(SPACE),
        store=store,
        input_hw=HW,
        latency_jitter=0.006,
        jitter_seed=0,
        lease_ttl_s=1.0,
        poll_s=0.001,
    )
    kwargs.update(overrides)
    return FabricSweep(**kwargs)


def _sorted_analysis(store):
    return sorted(store.analysis_records(), key=lambda r: r["trial_id"])


@pytest.fixture(scope="module")
def proposals():
    return list(GridSearch(SPACE).propose(BUDGET))


@pytest.fixture(scope="module")
def reference_records():
    """Fault-free serial run: the bitwise ground truth."""
    exp = _experiment(store=TrialStore())
    result = exp.run(BUDGET)
    assert result.failed == 0
    records = list(exp.store.records())
    return records


@pytest.fixture(scope="module")
def reference_analysis(reference_records):
    store = TrialStore()
    for record in reference_records:
        store.add(record)
    return _sorted_analysis(store)


# ---------------------------------------------------------------------------
# Shard routing + the sharded store
# ---------------------------------------------------------------------------


class TestShardRouting:
    @settings(max_examples=30, deadline=None)
    @given(n_shards=st.integers(min_value=1, max_value=64))
    def test_routing_is_a_pure_function_of_the_fingerprint(self, n_shards):
        configs = list(GridSearch(SPACE).propose(BUDGET))
        for config in configs:
            idx = shard_index(config, n_shards)
            assert 0 <= idx < n_shards
            # Purity: same config, same answer, every time; and the route
            # is exactly fingerprint mod n_shards — no hidden state.
            assert idx == shard_index(config, n_shards)
            assert idx == record_fingerprint(config) % n_shards

    def test_shard_filename_layout(self):
        assert shard_filename(2, 8) == "shard-00002-of-00008.jsonl"
        with pytest.raises(ValueError):
            shard_filename(8, 8)
        with pytest.raises(ValueError):
            shard_index(None, 0)


class TestShardedStore:
    def test_records_land_in_their_routed_shards(self, tmp_path, reference_records):
        store = ShardedTrialStore(tmp_path / "s", n_shards=4)
        for record in reference_records:
            store.add(record)
        store.close()
        for record in reference_records:
            idx = shard_index(record.config, 4)
            shard = TrialStore(tmp_path / "s" / shard_filename(idx, 4))
            shard.load()
            assert shard.find(record.config) is not None

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(n_write=st.integers(min_value=1, max_value=6),
           n_read=st.integers(min_value=1, max_value=6))
    def test_reshard_roundtrip_yields_identical_record_sets(
        self, tmp_path_factory, reference_records, n_write, n_read
    ):
        """Satellite: records written under N shards re-read under M
        shards (N != M included) merge to the identical ordered
        sequence."""
        root = tmp_path_factory.mktemp("reshard")
        writer = ShardedTrialStore(root, n_shards=n_write)
        for record in reference_records:
            writer.add(record)
        writer.close()
        reader = ShardedTrialStore(root, n_shards=n_read)
        assert reader.load() == len(reference_records)
        expected = sorted(
            (record_fingerprint(r.config), r.trial_id) for r in reference_records
        )
        got = [(record_fingerprint(r.config), r.trial_id) for r in reader.records()]
        assert got == expected  # deterministic merged order, any layout
        assert [r.to_dict() for r in reader.records()] == [
            r.to_dict()
            for _, r in sorted(
                ((record_fingerprint(r.config), r.trial_id), r)
                for r in reference_records
            )
        ]
        reader.close()

    def test_merged_order_independent_of_append_order(self, tmp_path, reference_records):
        a = ShardedTrialStore(tmp_path / "a", n_shards=3)
        b = ShardedTrialStore(tmp_path / "b", n_shards=3)
        for record in reference_records:
            a.add(record)
        for record in reversed(reference_records):
            b.add(record)
        assert [r.trial_id for r in a] == [r.trial_id for r in b]
        a.close(), b.close()

    def test_manifest_resume_gate_covers_every_shard(self, tmp_path, reference_records):
        store = ShardedTrialStore(tmp_path / "s", n_shards=2)
        manifest = _experiment().run_manifest()
        store.write_manifest(manifest)
        for record in reference_records:
            store.add(record)
        store.verify_or_write_manifest(manifest)  # same sweep: fine
        other = _experiment(jitter_seed=99).run_manifest()
        with pytest.raises(ResumeMismatchError):
            store.verify_or_write_manifest(other)
        store.close()


class TestQuarantineAndCompaction:
    def _seeded_store(self, root, n_shards, records):
        store = ShardedTrialStore(root, n_shards=n_shards)
        for record in records:
            store.add(record)
        store.close()
        return store

    def test_deferred_compaction_runs_on_next_append(
        self, tmp_path, reference_records
    ):
        root = tmp_path / "s"
        self._seeded_store(root, 2, reference_records[:-1])
        info = corrupt_shard_tail(root, mode="truncate", seed=0)
        store = ShardedTrialStore(root, n_shards=2)
        loaded = store.load(compact="defer")
        assert loaded == len(reference_records) - 2  # torn record quarantined
        assert list(store.quarantined) == [info["shard"]]
        assert store.compaction_pending
        # The damaged file still holds its torn tail until someone must
        # append to it — then compaction is forced first.
        last = reference_records[-1]
        store.add(last)
        victim_idx = int(info["shard"].split("-")[1])
        if shard_index(last.config, 2) == victim_idx:
            assert not store.compaction_pending
        store.compact_all()
        assert not store.compaction_pending
        store.close()
        reloaded = ShardedTrialStore(root, n_shards=2)
        assert reloaded.load(strict=True) == len(reference_records) - 1
        reloaded.close()

    def test_background_compaction_rewrites_damaged_shards(
        self, tmp_path, reference_records
    ):
        root = tmp_path / "s"
        self._seeded_store(root, 3, reference_records)
        info = corrupt_shard_tail(root, mode="garbage", seed=1)
        store = ShardedTrialStore(root, n_shards=3)
        store.load(compact="background")
        store.wait_for_compaction()
        assert not store.compaction_pending
        sidecars = list(root.glob("*.quarantine"))
        assert sidecars, "quarantined line must be preserved in a sidecar"
        store.close()
        clean = ShardedTrialStore(root, n_shards=3)
        assert clean.load(strict=True) == len(reference_records) - 1
        assert info["shard"] not in clean.quarantined
        clean.close()

    def test_quarantine_rewrite_honors_fsync_durability(
        self, tmp_path, reference_records, monkeypatch
    ):
        """Satellite fix: the atomic quarantine rewrite used to skip the
        fsync the store's durability knob promises."""
        for durability, expect_fsync in (("fsync", True), ("flush", False)):
            path = tmp_path / f"{durability}.jsonl"
            store = TrialStore(path, durability=durability)
            for record in reference_records[:3]:
                store.add(record)
            store.close()
            corrupt_store_tail(path, mode="truncate", seed=0)
            calls: list[int] = []
            real_fsync = os.fsync
            monkeypatch.setattr(
                os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))[1]
            )
            damaged = TrialStore(path, durability=durability)
            assert damaged.load() == 2
            monkeypatch.undo()
            damaged.close()
            if expect_fsync:
                # Sidecar, rewritten file, and its directory entry.
                assert len(calls) >= 3
            else:
                assert calls == []


# ---------------------------------------------------------------------------
# Monotonic timing (satellite: NTP-step immunity)
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestMonotonicTiming:
    def test_all_timing_primitives_default_to_monotonic(self):
        """Wall-clock regression guard: lease expiry, heartbeat age and
        deadlines must be immune to NTP steps."""
        assert Deadline(1.0)._clock is time.monotonic
        assert Heartbeat()._clock is time.monotonic
        assert LeaseTable()._clock is time.monotonic

    def test_heartbeat_age_and_miss(self):
        clock = FakeClock()
        hb = Heartbeat(clock=clock)
        clock.now = 2.0
        assert hb.age_s() == pytest.approx(2.0)
        assert hb.missed(1.5) and not hb.missed(3.0)
        hb.beat()
        assert hb.age_s() == 0.0


# ---------------------------------------------------------------------------
# The lease table
# ---------------------------------------------------------------------------


def _tasks(proposals, n_shards=2):
    return [
        TrialTask(tid, config, shard=shard_index(config, n_shards))
        for tid, config in enumerate(proposals)
    ]


class TestLeaseTable:
    def test_claim_heartbeat_reclaim_exactly_once(self, proposals):
        clock = FakeClock()
        table = LeaseTable(
            _tasks(proposals), n_queues=2, batch_size=2, ttl_s=5.0,
            max_leases=3, clock=clock,
        )
        lease = table.claim("w0", home=0)
        assert lease is not None and len(lease.tasks) == 2
        assert all(t.lease_count == 1 for t in lease.tasks)
        clock.now = 4.0
        assert table.heartbeat(lease.lease_id)  # pushes expiry to 9.0
        clock.now = 8.0
        assert table.reclaim() == []  # heartbeat kept it alive
        clock.now = 9.5
        (reclaimed,) = table.reclaim()
        assert reclaimed.lease_id == lease.lease_id
        assert table.reclaim() == []  # exactly once
        assert table.stats.reclaims == 1
        # The reclaimed tasks are re-leasable, in their original order.
        again = table.claim("w1", home=0)
        assert [t.trial_id for t in again.tasks] == [t.trial_id for t in lease.tasks]
        assert all(t.lease_count == 2 for t in again.tasks)
        # The presumed-dead worker learns it lost the lease.
        assert not table.heartbeat(lease.lease_id)

    def test_worker_loss_is_transient_by_taxonomy(self):
        assert classify_error(WorkerLostError("gone")).value == "transient"
        assert isinstance(NodeKilledError("down"), SystemExit)

    def test_steal_prefers_longest_queue(self, proposals):
        assert pick_steal_victim([0, 3, 2]) == 1
        assert pick_steal_victim([4, 3, 2], exclude={0}) == 1
        assert pick_steal_victim([0, 0, 0]) is None
        table = LeaseTable(_tasks(proposals, n_shards=2), n_queues=2, batch_size=1)
        sizes = table.queue_sizes()
        empty_home = sizes.index(min(sizes))  # drain it first
        for _ in range(min(sizes)):
            assert table.claim("w0", home=empty_home) is not None
        before = table.stats.steals
        lease = table.claim("w0", home=empty_home)  # home dry: must steal
        assert lease is not None
        assert table.stats.steals == before + 1

    def test_poison_after_max_leases(self, proposals):
        clock = FakeClock()
        table = LeaseTable(
            _tasks(proposals)[:1], n_queues=1, batch_size=1, ttl_s=1.0,
            max_leases=2, clock=clock,
        )
        for _ in range(2):
            lease = table.claim("w0")
            assert lease is not None
            clock.now += 2.0
            table.reclaim()
        assert [t.trial_id for t in table.poisoned] == [0]
        assert table.claim("w0") is None  # quarantined, not re-leased
        assert table.finished

    def test_stale_commit_wins_over_requeued_copy(self, proposals):
        clock = FakeClock()
        table = LeaseTable(
            _tasks(proposals)[:1], n_queues=1, batch_size=1, ttl_s=1.0, clock=clock
        )
        lease = table.claim("w0")
        clock.now = 2.0
        table.reclaim()  # task re-queued
        table.mark_done(lease.tasks[0].trial_id if lease.tasks else 0)
        # The stale worker's commit landed: the requeued copy is obsolete.
        assert table.claim("w1") is None
        assert table.finished

    def test_elastic_add_task_mid_sweep(self, proposals):
        table = LeaseTable(n_queues=2, batch_size=4)
        assert table.claim("w0") is None
        for task in _tasks(proposals, n_shards=2):
            table.add_task(task)
        assert table.pending == BUDGET
        assert table.claim("w0", home=0) is not None


# ---------------------------------------------------------------------------
# Fabric vs serial, worker loss, elasticity
# ---------------------------------------------------------------------------


class TestFabricSweep:
    def test_two_nodes_match_serial_bitwise(self, tmp_path, reference_analysis):
        store = ShardedTrialStore(tmp_path / "s", n_shards=3)
        sweep = _sweep(store)
        sweep.add_node(WorkerNode("n0"))
        sweep.add_node(WorkerNode("n1"))
        result = sweep.run(BUDGET)
        assert result.launched == BUDGET and result.failed == 0
        assert result.claims >= 2 and result.poisoned == 0
        assert sum(result.node_trials.values()) == BUDGET
        assert _sorted_analysis(store) == reference_analysis
        store.close()

    def test_zero_nodes_self_executes(self, tmp_path, reference_analysis):
        store = ShardedTrialStore(tmp_path / "s", n_shards=2)
        result = _sweep(store).run(BUDGET)
        assert result.launched == BUDGET and result.self_executed == BUDGET
        assert _sorted_analysis(store) == reference_analysis
        store.close()

    def test_sigkilled_worker_releases_in_flight_exactly_once(
        self, tmp_path, proposals, reference_analysis
    ):
        """Satellite: a worker SIGKILLed mid-lease has its in-flight
        trials re-leased exactly once (to an elastically joined node),
        the reclaim counter increments, and no shard holds a duplicate
        record."""
        obs.configure(reset_metrics=True)
        try:
            queue0 = [
                (tid, c) for tid, c in enumerate(proposals)
                if shard_index(c, 2) == 0
            ]
            # n0 claims its whole home queue in one lease, commits the
            # first trial, then a pool worker is SIGKILLed on the second:
            # the node dies holding the rest of the batch in flight.
            kill_cid = queue0[1][1].config_id()
            store = ShardedTrialStore(tmp_path / "s", n_shards=2)
            sweep = _sweep(store, batch_size=BUDGET, lease_ttl_s=1.0)
            executor = ProcessPoolExecutorBackend(workers=1, max_requeues=0)
            sweep.add_node(WorkerNode(
                "n0", executor=executor, kill_config_ids={kill_cid},
                latch_dir=tmp_path, on_worker_loss="die", home_queue=0,
            ))
            joined = []

            def _join_late(done, total, record):
                if not joined:  # first commit: n0 holds everything else
                    joined.append(sweep.add_node(WorkerNode("n1")))

            sweep.progress = _join_late
            result = sweep.run(BUDGET)
            n0, n1 = sweep.nodes
            assert (tmp_path / f"kill-{kill_cid}.latch").exists()
            assert "pool worker died" in n0.death_reason
            assert n0.trials_run == 1  # committed one, died on the second
            assert result.reclaims == 1  # the in-flight batch, exactly once
            assert result.poisoned == 0
            assert n1.trials_run == BUDGET - 1
            assert obs.registry().counter_value(
                "repro_nas_lease_reclaims_total") == 1
            # No duplicate records in any shard: every line a unique config.
            seen = []
            for shard_path in store.shard_paths():
                for line in shard_path.read_text().splitlines():
                    seen.append(json.loads(line)["trial_id"])
            assert sorted(seen) == list(range(BUDGET))
            assert _sorted_analysis(store) == reference_analysis
            store.close()
        finally:
            obs.shutdown()

    def test_resume_skips_completed_trials(self, tmp_path, reference_analysis):
        store = ShardedTrialStore(tmp_path / "s", n_shards=2)
        sweep = _sweep(store, progress=interrupt_after(BUDGET - 3))
        sweep.add_node(WorkerNode("n0"))
        with pytest.raises(KeyboardInterrupt):
            sweep.run(BUDGET)
        store.close()
        store2 = ShardedTrialStore(tmp_path / "s", n_shards=2)
        sweep2 = _sweep(store2, resume=True)
        sweep2.add_node(WorkerNode("n0"))
        result = sweep2.run(BUDGET)
        assert result.skipped == BUDGET - 3
        assert result.launched == 3
        assert _sorted_analysis(store2) == reference_analysis
        store2.close()


# ---------------------------------------------------------------------------
# The headline chaos certification
# ---------------------------------------------------------------------------


class TestChaosCertification:
    def test_four_process_group_chaos_resumes_bitwise_equal(
        self, tmp_path, proposals, reference_analysis
    ):
        """Kills + heartbeat loss + Ctrl-C + truncated shard tail, then a
        resume under a *different* shard count: the final analysis
        records equal the fault-free serial run's, byte for byte."""
        root = tmp_path / "sweep"
        latches = tmp_path / "latches"
        latches.mkdir()
        obs_log = tmp_path / "fabric_obs.jsonl"
        obs.configure(jsonl_path=obs_log, reset_metrics=True)
        try:
            by_queue = {
                q: [(tid, c) for tid, c in enumerate(proposals)
                    if shard_index(c, 4) == q]
                for q in range(4)
            }
            assert all(by_queue.values())  # every node starts on home work
            # n0's first home trial dies with its pool worker (SIGKILL).
            kill_cid = by_queue[0][0][1].config_id()
            # n3's first home trial suffers a recoverable worker kill.
            soft_kill_cid = by_queue[3][0][1].config_id()

            store1 = ShardedTrialStore(root, n_shards=4)
            sweep1 = _sweep(
                store1, lease_ttl_s=0.75,
                progress=interrupt_after(BUDGET - 2),
            )
            sweep1.add_node(WorkerNode(
                "n0", home_queue=0, latch_dir=latches, on_worker_loss="die",
                executor=ProcessPoolExecutorBackend(workers=1, max_requeues=0),
                kill_config_ids={kill_cid},
            ))
            sweep1.add_node(WorkerNode(
                "n1", home_queue=1,
                fault_plan=NodeFaultPlan(
                    [NodeFault(NodeFaultKind.NODE_KILL, "n1", after_trials=1)],
                    latch_dir=latches,
                ),
            ))
            sweep1.add_node(WorkerNode(
                "n2", home_queue=2,
                fault_plan=NodeFaultPlan(
                    [NodeFault(NodeFaultKind.HEARTBEAT_LOSS, "n2",
                               after_trials=0, duration_trials=2, stall_s=1.2)],
                    latch_dir=latches,
                ),
            ))
            sweep1.add_node(WorkerNode(
                "n3", home_queue=3, latch_dir=latches, on_worker_loss="retry",
                executor=ProcessPoolExecutorBackend(workers=1, max_requeues=2),
                kill_config_ids={soft_kill_cid},
            ))
            with pytest.raises(KeyboardInterrupt):
                sweep1.run(BUDGET)
            store1.close()
            # The hard kill fired and took its node down.
            assert (latches / f"kill-{kill_cid}.latch").exists()
            assert "pool worker died" in sweep1.nodes[0].death_reason
            committed = sum(
                len(p.read_text().splitlines()) for p in store1.shard_paths()
            )
            assert committed == BUDGET - 2  # Ctrl-C after 6 commits

            # Crash artifact: one shard's writer died mid-append.
            info = corrupt_shard_tail(root, mode="truncate", seed=0)

            # Resume under a DIFFERENT shard count (4 -> 3): the merged
            # view is layout-independent, so nothing else changes.
            store2 = ShardedTrialStore(root, n_shards=3)
            sweep2 = _sweep(store2, resume=True)
            sweep2.add_node(WorkerNode("r0"))
            sweep2.add_node(WorkerNode("r1"))
            result = sweep2.run(BUDGET)
            assert list(store2.quarantined) == [info["shard"]]
            assert result.skipped == BUDGET - 3  # torn record re-run
            assert result.launched == 3 and result.failed == 0

            final = ShardedTrialStore(root, n_shards=3)
            assert final.load() == BUDGET
            assert all(r.ok for r in final.records())
            got = _sorted_analysis(final)
            assert got == reference_analysis  # the certification
            store2.close()
            final.close()
        finally:
            obs.shutdown()
        artifact_dir = os.environ.get("REPRO_FABRIC_ARTIFACT_DIR", "")
        if artifact_dir:  # CI uploads the chaos sweep's evidence
            os.makedirs(artifact_dir, exist_ok=True)
            shutil.copyfile(obs_log, os.path.join(artifact_dir, "fabric_obs.jsonl"))
            with open(os.path.join(artifact_dir, "merged_store.json"), "w") as fh:
                json.dump(got, fh, indent=1, sort_keys=True)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestFabricCli:
    def test_sweep_shards_nodes_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "shards"
        args = ["sweep", "--out", str(out), "--budget", "8",
                "--shards", "2", "--nodes", "2"]
        assert main(args) == 0
        assert sorted(p.name for p in out.glob("shard-*.jsonl")) == [
            shard_filename(0, 2), shard_filename(1, 2),
        ]
        assert "claims=" in capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        assert "skipped=8" in capsys.readouterr().out

    def test_resume_requires_distributed_flags(self, tmp_path):
        from repro.cli import main

        assert main(["sweep", "--out", str(tmp_path / "x"), "--resume"]) == 2
