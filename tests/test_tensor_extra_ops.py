"""Extended tensor ops: abs, clip, split, concat — semantics + gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients
from repro.tensor.tensor import concat, stack


def _t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestAbs:
    def test_values(self):
        x = Tensor([-2.0, 3.0, 0.0])
        np.testing.assert_allclose(x.abs().data, [2.0, 3.0, 0.0])

    def test_gradient(self):
        # Keep values away from the kink for a clean finite-difference check.
        x = Tensor(np.array([-2.0, 1.5, 3.0, -0.8], dtype=np.float32), requires_grad=True)
        check_gradients(lambda ts: ts[0].abs(), [x])

    def test_subgradient_zero_at_zero(self):
        x = Tensor([0.0], requires_grad=True)
        x.abs().sum().backward()
        assert x.grad[0] == 0.0


class TestClip:
    def test_values(self):
        x = Tensor([-5.0, 0.5, 5.0])
        np.testing.assert_allclose(x.clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0])

    def test_gradient_zero_outside(self):
        x = Tensor([-5.0, 0.5, 5.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Tensor([1.0]).clip(2.0, 1.0)

    def test_gradient_check_interior(self):
        x = Tensor(np.array([0.2, -0.3, 0.4], dtype=np.float32), requires_grad=True)
        check_gradients(lambda ts: ts[0].clip(-1.0, 1.0), [x])


class TestSplit:
    def test_values_and_shapes(self):
        x = _t((6, 3))
        parts = x.split(3, axis=0)
        assert len(parts) == 3
        for i, part in enumerate(parts):
            np.testing.assert_array_equal(part.data, x.data[2 * i : 2 * i + 2])

    def test_gradients_route_to_slices(self):
        x = _t((4, 2))
        a, b = x.split(2, axis=0)
        (a.sum() * 2.0 + b.sum() * 3.0).backward()
        np.testing.assert_allclose(x.grad[:2], 2.0)
        np.testing.assert_allclose(x.grad[2:], 3.0)

    def test_axis_one(self):
        x = _t((2, 6))
        parts = x.split(2, axis=1)
        assert parts[0].shape == (2, 3)
        parts[1].sum().backward()
        np.testing.assert_allclose(x.grad[:, :3], 0.0)
        np.testing.assert_allclose(x.grad[:, 3:], 1.0)

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            _t((5, 2)).split(2, axis=0)


class TestConcat:
    def test_values(self):
        a, b = _t((2, 3), 1), _t((4, 3), 2)
        out = concat([a, b], axis=0)
        assert out.shape == (6, 3)
        np.testing.assert_array_equal(out.data[:2], a.data)

    def test_gradients_partition(self):
        a, b = _t((2, 3), 1), _t((3, 3), 2)
        concat([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0)
        np.testing.assert_allclose(b.grad, 1.0)

    def test_axis_one_gradcheck(self):
        a, b = _t((2, 2), 3), _t((2, 4), 4)
        check_gradients(lambda ts: concat(ts, axis=1) * 2.0, [a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concat([])

    def test_split_concat_roundtrip(self):
        x = _t((6, 4), 5)
        parts = x.split(3, axis=0)
        back = concat(parts, axis=0)
        np.testing.assert_array_equal(back.data, x.data)
        back.sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)

    def test_stack_vs_concat_shapes(self):
        xs = [_t((2, 2), seed=i) for i in range(3)]
        assert stack(xs, axis=0).shape == (3, 2, 2)
        assert concat(xs, axis=0).shape == (6, 2)
