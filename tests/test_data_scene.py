"""Region-scale scene synthesis and patch sampling."""

import numpy as np
import pytest

from repro.data.regions import REGIONS
from repro.data.scene_sampler import (
    build_scene_dataset,
    detect_crossings,
    generate_region_scene,
    sample_patches,
)


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(0)
    return generate_region_scene(256, rng, REGIONS["nebraska"].terrain, n_channels=3, n_roads=3)


class TestGenerateRegionScene:
    def test_structure(self, scene):
        assert scene.dem.shape == (256, 256)
        assert scene.ortho.shape == (4, 256, 256)
        assert scene.channel_mask.any() and scene.road_mask.any()
        assert np.isfinite(scene.dem).all()

    def test_crossings_sit_on_both_masks(self, scene):
        assert scene.crossings
        for r, c in scene.crossings:
            # Centroids of blobs may fall on a mask gap, but a small
            # neighborhood must intersect both features.
            window = (slice(max(r - 3, 0), r + 4), slice(max(c - 3, 0), c + 4))
            assert scene.channel_mask[window].any()
            assert scene.road_mask[window].any()

    def test_channel_stack_shapes(self, scene):
        assert scene.channel_stack(5).shape == (5, 256, 256)
        assert scene.channel_stack(7).shape == (7, 256, 256)
        with pytest.raises(ValueError):
            scene.channel_stack(6)

    def test_no_features_no_crossings(self):
        rng = np.random.default_rng(1)
        empty = generate_region_scene(64, rng, REGIONS["nebraska"].terrain, n_channels=0, n_roads=0)
        assert empty.crossings == []
        assert not empty.channel_mask.any()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_region_scene(32, rng, REGIONS["nebraska"].terrain)
        with pytest.raises(ValueError):
            generate_region_scene(128, rng, REGIONS["nebraska"].terrain, n_channels=-1)


class TestDetectCrossings:
    def test_single_intersection(self):
        channel = np.zeros((20, 20), dtype=bool)
        road = np.zeros((20, 20), dtype=bool)
        channel[10, :] = True
        road[:, 5] = True
        crossings = detect_crossings(channel, road)
        assert crossings == [(10, 5)]

    def test_disjoint_features(self):
        channel = np.zeros((10, 10), dtype=bool)
        road = np.zeros((10, 10), dtype=bool)
        channel[2, :] = True
        road[7, :] = True  # parallel, never cross
        assert detect_crossings(channel, road) == []


class TestSamplePatches:
    def test_balanced_output(self, scene):
        rng = np.random.default_rng(2)
        x, y, centers = sample_patches(scene, 48, rng, channels=5)
        assert x.shape[1:] == (5, 48, 48)
        assert (y == 1).sum() == (y == 0).sum()
        assert len(centers) == len(y)

    def test_negatives_respect_exclusion(self, scene):
        rng = np.random.default_rng(3)
        x, y, centers = sample_patches(scene, 32, rng, exclusion_radius=30.0)
        crossings = np.array(scene.crossings, dtype=float)
        for (r, c), label in zip(centers, y):
            if label == 0:
                distance = np.hypot(crossings[:, 0] - r, crossings[:, 1] - c).min()
                assert distance >= 30.0

    def test_positive_patches_contain_both_features(self, scene):
        rng = np.random.default_rng(4)
        x, y, centers = sample_patches(scene, 48, rng, channels=5, jitter=0)
        # DEM channel of a positive patch must show the embankment signature:
        # verify via the scene masks around the center.
        for (r, c), label in zip(centers, y):
            if label == 1:
                h = 24
                assert scene.channel_mask[r - h : r + h, c - h : c + h].any()
                assert scene.road_mask[r - h : r + h, c - h : c + h].any()

    def test_requested_counts(self, scene):
        rng = np.random.default_rng(5)
        x, y, _ = sample_patches(scene, 32, rng, n_positive=3, n_negative=5)
        assert (y == 1).sum() == 3 and (y == 0).sum() == 5

    def test_validation(self, scene):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            sample_patches(scene, 4, rng)
        with pytest.raises(ValueError):
            sample_patches(scene, 512, rng)


class TestBuildSceneDataset:
    def test_dataset_is_balanced_and_typed(self):
        x, y = build_scene_dataset(REGIONS["california"].terrain, scene_size=200,
                                   patch=48, n_scenes=2, channels=7, seed=0)
        assert x.dtype == np.float32
        assert x.shape[1:] == (7, 48, 48)
        assert (y == 1).sum() == (y == 0).sum()
