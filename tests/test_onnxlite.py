"""onnxlite export/read roundtrips and the memory objective."""

import numpy as np
import pytest

from repro.graph.trace import trace_model
from repro.nn import SearchableResNet18, build_baseline_resnet18, count_parameters
from repro.onnxlite import export_model, load_model, model_size_mb
from repro.onnxlite.export import build_model_proto, export_graph, proto_to_bytes
from repro.onnxlite.reader import proto_from_bytes
from repro.onnxlite.schema import ModelProto, OperatorProto, TensorProto


def _small_model(**kwargs):
    defaults = dict(in_channels=5, kernel_size=3, padding=1, pool_choice=0, initial_output_feature=32)
    defaults.update(kwargs)
    return SearchableResNet18(**defaults)


class TestSchema:
    def test_tensor_proto_coerces_to_float32(self):
        t = TensorProto("w", np.arange(4, dtype=np.float64))
        assert t.data.dtype == np.float32
        assert t.nbytes == 16

    def test_initializer_lookup(self):
        proto = ModelProto("m", (1,), (1,), initializers=[TensorProto("a", np.zeros(2))])
        assert proto.initializer("a").data.shape == (2,)
        with pytest.raises(KeyError):
            proto.initializer("missing")


class TestRoundtrip:
    def test_full_roundtrip(self):
        model = _small_model()
        blob = export_model(model, input_hw=(64, 64))
        proto = proto_from_bytes(blob)
        assert proto.input_shape == (5, 64, 64)
        assert proto.output_shape == (2,)
        # Parameters + BN buffers all present, bytes identical.
        state = model.state_dict()
        for name, value in state.items():
            np.testing.assert_array_equal(proto.initializer(name).data, np.asarray(value, np.float32))

    def test_operator_topology_preserved(self):
        model = _small_model()
        graph = trace_model(model, (64, 64))
        proto = build_model_proto(model, graph)
        op_types = {op.op_type for op in proto.operators}
        assert {"Conv", "BatchNormalization", "Relu", "Add", "Gemm", "GlobalAveragePool"} <= op_types
        # No MaxPool in the no-pool variant.
        assert "MaxPool" not in op_types

    def test_file_io(self, tmp_path):
        model = _small_model()
        path = tmp_path / "model.onxl"
        blob = export_model(model, input_hw=(64, 64), path=path)
        assert path.read_bytes() == blob
        proto = load_model(path)
        assert proto.parameter_count() > 0

    def test_bad_magic_and_version(self):
        with pytest.raises(ValueError):
            proto_from_bytes(b"XXXX" + b"\x00" * 20)
        good = proto_to_bytes(ModelProto("m", (1,), (1,)))
        tampered = good[:4] + (99).to_bytes(4, "little") + good[8:]
        with pytest.raises(ValueError):
            proto_from_bytes(tampered)


class TestMemoryObjective:
    def test_baseline_memory_matches_paper(self):
        mb = model_size_mb(build_baseline_resnet18(in_channels=5))
        assert mb == pytest.approx(44.71, rel=0.01)  # paper Table 5

    def test_winner_memory_matches_paper(self):
        mb = model_size_mb(_small_model(in_channels=7))
        assert mb == pytest.approx(11.18, rel=0.01)  # paper Table 4

    def test_size_dominated_by_parameters(self):
        model = _small_model()
        blob_bytes = len(export_model(model, input_hw=(64, 64)))
        param_bytes = 4 * count_parameters(model)
        assert blob_bytes > param_bytes
        assert blob_bytes < 1.02 * param_bytes  # graph text is tiny

    def test_channels_shift_memory_slightly(self):
        mb5 = model_size_mb(_small_model(in_channels=5))
        mb7 = model_size_mb(_small_model(in_channels=7))
        assert mb7 > mb5
        assert mb7 - mb5 < 0.01
