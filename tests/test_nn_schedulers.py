"""LR schedulers and the Dropout layer."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    CosineAnnealingLR,
    Dropout,
    Linear,
    Parameter,
    StepLR,
    WarmupWrapper,
)
from repro.tensor.tensor import Tensor


def _optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(2))], lr=lr)


class TestStepLR:
    def test_decay_schedule(self):
        opt = _optimizer(0.1)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(6)]
        assert lrs == pytest.approx([0.1, 0.05, 0.05, 0.025, 0.025, 0.0125])

    def test_applies_to_optimizer(self):
        opt = _optimizer(1.0)
        StepLR(opt, step_size=1, gamma=0.1).step()
        assert opt.lr == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=1, gamma=0.0)


class TestCosineAnnealing:
    def test_endpoints(self):
        opt = _optimizer(0.2)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.02)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 0.2  # already decaying after first epoch
        assert lrs[-1] == pytest.approx(0.02, abs=1e-9)

    def test_monotone_decrease(self):
        sched = CosineAnnealingLR(_optimizer(0.1), t_max=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_past_t_max(self):
        sched = CosineAnnealingLR(_optimizer(0.1), t_max=3, eta_min=0.01)
        for _ in range(5):
            lr = sched.step()
        assert lr == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(_optimizer(), t_max=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(_optimizer(), t_max=5, eta_min=-1.0)


class TestWarmup:
    def test_linear_ramp_then_delegate(self):
        opt = _optimizer(0.1)
        inner = StepLR(opt, step_size=100, gamma=0.5)  # effectively constant
        sched = WarmupWrapper(inner, warmup_epochs=4)
        lrs = [sched.step() for _ in range(6)]
        assert lrs[:4] == pytest.approx([0.025, 0.05, 0.075, 0.1])
        assert lrs[4] == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupWrapper(StepLR(_optimizer(), step_size=1), warmup_epochs=0)


class TestDropoutLayer:
    def test_train_mode_zeroes_and_rescales(self):
        layer = Dropout(p=0.5, rng=0)
        layer.train()
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = layer(x)
        zero_fraction = float((out.data == 0).mean())
        assert 0.4 < zero_fraction < 0.6
        nonzero = out.data[out.data != 0]
        np.testing.assert_allclose(nonzero, 2.0, rtol=1e-5)

    def test_eval_mode_is_identity(self):
        layer = Dropout(p=0.5, rng=0)
        layer.eval()
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        assert layer(x) is x

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(p=1.0)


class TestSchedulerIntegration:
    def test_scheduler_drives_training(self):
        rng = np.random.default_rng(0)
        target = rng.normal(size=(4,)).astype(np.float32)
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.5)
        sched = CosineAnnealingLR(opt, t_max=50, eta_min=0.01)
        for _ in range(50):
            opt.zero_grad()
            ((p - Tensor(target)) ** 2.0).sum().backward()
            opt.step()
            sched.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)
        assert opt.lr == pytest.approx(0.01)
