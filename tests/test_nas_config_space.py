"""Search space and configuration identity tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nas.config import BASELINE_ARCH, BATCH_CHOICES, CHANNEL_CHOICES, ModelConfig
from repro.nas.searchspace import DEFAULT_SPACE, SearchSpace, enumerate_input_combinations

config_strategy = st.builds(
    ModelConfig,
    channels=st.sampled_from(CHANNEL_CHOICES),
    batch=st.sampled_from(BATCH_CHOICES),
    kernel_size=st.sampled_from((3, 7)),
    stride=st.sampled_from((1, 2)),
    padding=st.sampled_from((1, 2, 3)),
    pool_choice=st.sampled_from((0, 1)),
    kernel_size_pool=st.sampled_from((2, 3)),
    stride_pool=st.sampled_from((1, 2)),
    initial_output_feature=st.sampled_from((32, 48, 64)),
)


class TestModelConfig:
    @settings(max_examples=50, deadline=None)
    @given(config_strategy)
    def test_dict_roundtrip(self, config):
        assert ModelConfig.from_dict(config.to_dict()) == config

    @settings(max_examples=50, deadline=None)
    @given(config_strategy)
    def test_config_id_stable_and_hexadecimal(self, config):
        cid = config.config_id()
        assert cid == config.config_id()
        int(cid, 16)

    def test_canonical_collapses_nopool_params(self):
        a = ModelConfig(5, 8, 3, 2, 1, 0, 2, 1, 32)
        b = ModelConfig(5, 8, 3, 2, 1, 0, 3, 2, 32)
        assert a.architecture_key() == b.architecture_key()
        assert a.config_id() != b.config_id()  # trials remain distinct

    def test_pooled_configs_not_collapsed(self):
        a = ModelConfig(5, 8, 3, 2, 1, 1, 2, 2, 32)
        b = ModelConfig(5, 8, 3, 2, 1, 1, 3, 2, 32)
        assert a.architecture_key() != b.architecture_key()

    def test_baseline_values(self):
        cfg = ModelConfig.baseline()
        assert cfg.kernel_size == 7 and cfg.initial_output_feature == 64
        assert cfg.to_dict()["padding"] == BASELINE_ARCH["padding"]

    def test_stem_downsample(self):
        assert ModelConfig(5, 8, 3, 2, 1, 0, 3, 2, 32).stem_downsample() == 2
        assert ModelConfig(5, 8, 3, 2, 1, 1, 3, 2, 32).stem_downsample() == 4
        assert ModelConfig(5, 8, 3, 1, 1, 1, 3, 1, 32).stem_downsample() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(6, 8, 3, 2, 1, 0, 3, 2, 32)
        with pytest.raises(ValueError):
            ModelConfig(5, 0, 3, 2, 1, 0, 3, 2, 32)
        with pytest.raises(ValueError):
            ModelConfig(5, 8, 3, 2, 1, 2, 3, 2, 32)
        with pytest.raises(ValueError):
            ModelConfig(5, 8, 3, 2, 1, 1, 0, 2, 32)

    @settings(max_examples=50, deadline=None)
    @given(config_strategy)
    def test_all_grid_configs_valid_at_100(self, config):
        assert config.is_valid_for((100, 100))


class TestSearchSpace:
    def test_paper_cardinalities(self):
        assert DEFAULT_SPACE.architectures_per_combination() == 288
        assert DEFAULT_SPACE.total_configurations() == 1728
        assert len(enumerate_input_combinations()) == 6

    def test_unique_architectures_account_for_nopool_collapse(self):
        # 2*2*3*3 = 36 base; pool variants: 4 pooled + 1 unpooled = 5.
        assert DEFAULT_SPACE.unique_architectures_per_combination() == 180

    def test_enumeration_count_and_uniqueness(self):
        configs = DEFAULT_SPACE.configs()
        assert len(configs) == 1728
        assert len({c.config_id() for c in configs}) == 1728

    def test_enumeration_covers_paper_winners(self, winner_config):
        assert any(c == winner_config for c in DEFAULT_SPACE.iter_all())

    def test_restricted_space(self):
        pruned = SearchSpace(padding=(1,))
        assert pruned.architectures_per_combination() == 96
        assert all(c.padding == 1 for c in pruned.iter_all())

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(kernel_size=())

    def test_sampling_stays_on_grid(self, rng):
        for config in DEFAULT_SPACE.sample(rng, 25):
            assert DEFAULT_SPACE.contains(config)

    def test_neighbors_single_knob_mutation(self, rng):
        base = ModelConfig(5, 8, 3, 2, 1, 0, 3, 2, 32)
        mutated = DEFAULT_SPACE.neighbors(base, rng)
        diffs = sum(
            1 for f in ModelConfig.__dataclass_fields__
            if getattr(base, f) != getattr(mutated, f)
        )
        assert diffs == 1
        assert DEFAULT_SPACE.contains(mutated)
