"""NSGA-II-style search and successive halving."""

import numpy as np
import pytest

from repro.nas import (
    Experiment,
    FidelitySurrogate,
    FidelityTrainer,
    NSGAEvolution,
    SurrogateEvaluator,
    successive_halving,
)
from repro.nas.config import ModelConfig
from repro.nas.searchspace import DEFAULT_SPACE
from repro.pareto import non_dominated_mask
from repro.pareto.dominance import to_minimization, ObjectiveSense


def _winner_cfg():
    return ModelConfig(channels=7, batch=16, kernel_size=3, stride=2, padding=1,
                       pool_choice=0, kernel_size_pool=3, stride_pool=2,
                       initial_output_feature=32)


class TestNSGAEvolution:
    def test_population_front_is_non_dominated(self):
        strategy = NSGAEvolution(DEFAULT_SPACE, population_size=16, seed=0)
        experiment = Experiment(SurrogateEvaluator(seed=0), strategy, input_hw=(100, 100))
        experiment.run(budget=80)
        front = strategy.population_front()
        assert front
        values = np.vstack(strategy._objectives)
        front_keys = {c.config_id() for c in front}
        mask = non_dominated_mask(values)
        computed = {strategy._configs[i].config_id() for i in np.flatnonzero(mask)}
        assert front_keys == computed

    def test_finds_winner_family_with_small_budget(self):
        strategy = NSGAEvolution(DEFAULT_SPACE, population_size=24, seed=3)
        experiment = Experiment(SurrogateEvaluator(seed=0), strategy, input_hw=(100, 100))
        experiment.run(budget=150)
        front = strategy.population_front()
        # The f=32 small-kernel family should dominate the evolved front.
        assert any(c.initial_output_feature == 32 and c.kernel_size == 3 for c in front)

    def test_population_truncation(self):
        strategy = NSGAEvolution(DEFAULT_SPACE, population_size=8, seed=1)
        experiment = Experiment(SurrogateEvaluator(seed=0), strategy, input_hw=(100, 100))
        experiment.run(budget=40)
        assert len(strategy._configs) <= 2 * strategy.population_size

    def test_scalar_observe_path(self):
        strategy = NSGAEvolution(DEFAULT_SPACE, population_size=4, seed=0)
        for config in strategy.propose(6):
            strategy.observe(config, 90.0)
        assert strategy.population_front()

    def test_validation(self):
        with pytest.raises(ValueError):
            NSGAEvolution(DEFAULT_SPACE, population_size=2)

    def test_empty_front(self):
        assert NSGAEvolution(DEFAULT_SPACE).population_front() == []


class TestFidelitySurrogate:
    def test_monotone_in_budget_on_average(self):
        fs = FidelitySurrogate(seed=0, noise_at_one_epoch=0.0)
        cfg = _winner_cfg()
        accs = [fs.evaluate_at(cfg, b) for b in (1, 2, 4, 8, 16)]
        assert accs == sorted(accs)

    def test_converges_to_full_fidelity(self):
        fs = FidelitySurrogate(seed=0, noise_at_one_epoch=0.0)
        cfg = _winner_cfg()
        full = fs.base.evaluate(cfg).accuracy
        assert fs.evaluate_at(cfg, 64) == pytest.approx(full, abs=0.01)

    def test_noise_shrinks_with_budget(self):
        fs = FidelitySurrogate(seed=0, gap=0.0, noise_at_one_epoch=2.0)
        cfg = _winner_cfg()
        full = fs.base.evaluate(cfg).accuracy
        low = [abs(FidelitySurrogate(seed=s, gap=0.0, noise_at_one_epoch=2.0).evaluate_at(cfg, 1) - full)
               for s in range(20)]
        high = [abs(FidelitySurrogate(seed=s, gap=0.0, noise_at_one_epoch=2.0).evaluate_at(cfg, 16) - full)
                for s in range(20)]
        assert np.mean(high) < np.mean(low)

    def test_validation(self):
        with pytest.raises(ValueError):
            FidelitySurrogate(gap=-1.0)
        with pytest.raises(ValueError):
            FidelitySurrogate().evaluate_at(_winner_cfg(), 0)


class TestSuccessiveHalving:
    def test_budget_savings_and_ranking(self):
        rng = np.random.default_rng(0)
        candidates = DEFAULT_SPACE.sample(rng, 16)
        evaluator = FidelitySurrogate(seed=0)
        result = successive_halving(candidates, evaluator, min_budget=1, max_budget=8, eta=2)
        # Budget: 16*1 + 8*2 + 4*4 + 2*8 = 64 epochs vs 128 for full eval.
        assert result.total_epochs_spent == 64
        assert len(result.rung_history) == 4
        # Each rung is sorted best-first.
        for rung in result.rung_history:
            scores = [s for _, s in rung]
            assert scores == sorted(scores, reverse=True)

    def test_picks_a_good_candidate(self):
        rng = np.random.default_rng(1)
        candidates = DEFAULT_SPACE.sample(rng, 24)
        evaluator = FidelitySurrogate(seed=0, noise_at_one_epoch=0.5)
        result = successive_halving(candidates, evaluator, min_budget=1, max_budget=8)
        full = {c.config_id(): evaluator.base.evaluate(c).accuracy for c in candidates}
        best_possible = max(full.values())
        chosen = full[result.best[0].config_id()]
        assert chosen >= best_possible - 3.0

    def test_single_candidate(self):
        result = successive_halving([_winner_cfg()], FidelitySurrogate(seed=0), max_budget=4)
        assert len(result.survivors) == 1

    def test_validation(self):
        fs = FidelitySurrogate(seed=0)
        with pytest.raises(ValueError):
            successive_halving([], fs)
        with pytest.raises(ValueError):
            successive_halving([_winner_cfg()], fs, eta=1)
        with pytest.raises(ValueError):
            successive_halving([_winner_cfg()], fs, min_budget=9, max_budget=4)


class TestFidelityTrainer:
    def test_real_training_at_budget(self, tiny_dataset_5ch):
        trainer = FidelityTrainer(tiny_dataset_5ch, k=2, seed=0)
        cfg = ModelConfig(channels=5, batch=8, kernel_size=3, stride=2, padding=1,
                          pool_choice=0, kernel_size_pool=3, stride_pool=2,
                          initial_output_feature=32)
        acc = trainer.evaluate_at(cfg, budget=1)
        assert 0.0 <= acc <= 100.0
