"""Shared fixtures: tiny datasets, canonical configs, seeded RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import DrainageCrossingDataset
from repro.nas.config import ModelConfig


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset_5ch() -> DrainageCrossingDataset:
    """16 samples, 24x24, 5 channels — fast enough for real training."""
    return DrainageCrossingDataset(
        channels=5, size=24, samples_per_class=2, regions=["nebraska", "california"], seed=7
    )


@pytest.fixture(scope="session")
def tiny_dataset_7ch() -> DrainageCrossingDataset:
    return DrainageCrossingDataset(
        channels=7, size=24, samples_per_class=2, regions=["nebraska", "california"], seed=7
    )


@pytest.fixture()
def winner_config() -> ModelConfig:
    """The paper's best Table-4 solution (7ch, b16, no-pool, f32)."""
    return ModelConfig(
        channels=7, batch=16, kernel_size=3, stride=2, padding=1,
        pool_choice=0, kernel_size_pool=3, stride_pool=2, initial_output_feature=32,
    )


@pytest.fixture()
def baseline_config() -> ModelConfig:
    return ModelConfig.baseline(channels=5, batch=16)
