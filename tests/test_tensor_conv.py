"""Convolution / pooling: reference equivalence, gradients, geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import signal

from repro.tensor import Tensor, avg_pool2d, check_gradients, conv2d, global_avg_pool2d, max_pool2d
from repro.tensor.conv_ops import conv_output_size, pool_output_size


def _t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


def _reference_conv(x, w, b, stride, padding):
    """Direct scipy cross-correlation reference."""
    n, c_in, h, wd = x.shape
    c_out, _, k, _ = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = conv_output_size(h, k, stride, padding)
    ow = conv_output_size(wd, k, stride, padding)
    out = np.zeros((n, c_out, oh, ow), dtype=np.float64)
    for i in range(n):
        for f in range(c_out):
            acc = np.zeros((xp.shape[2] - k + 1, xp.shape[3] - k + 1))
            for c in range(c_in):
                acc += signal.correlate2d(xp[i, c], w[f, c], mode="valid")
            out[i, f] = acc[::stride, ::stride] + (b[f] if b is not None else 0.0)
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride,padding,kernel", [(1, 0, 3), (2, 1, 3), (2, 3, 7), (1, 2, 5)])
    def test_matches_scipy_reference(self, stride, padding, kernel):
        rng = np.random.default_rng(kernel)
        x = rng.normal(size=(2, 3, 12, 12)).astype(np.float32)
        w = rng.normal(size=(4, 3, kernel, kernel)).astype(np.float32) * 0.2
        b = rng.normal(size=4).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        ref = _reference_conv(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, ref, rtol=1e-3, atol=1e-4)

    def test_no_bias(self):
        out = conv2d(_t((1, 2, 5, 5)), _t((3, 2, 3, 3), 1), None, stride=1, padding=1)
        assert out.shape == (1, 3, 5, 5)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            conv2d(_t((1, 2, 4, 4)), _t((3, 2, 7, 7), 1), None)  # collapses
        with pytest.raises(ValueError):
            conv2d(_t((1, 2, 8, 8)), _t((3, 5, 3, 3), 1), None)  # channel mismatch
        with pytest.raises(ValueError):
            conv2d(_t((2, 8, 8)), _t((3, 2, 3, 3), 1), None)  # not 4-D
        with pytest.raises(ValueError):
            conv2d(_t((1, 2, 8, 8)), _t((3, 2, 3, 3), 1), None, stride=0)

    @settings(max_examples=15, deadline=None)
    @given(
        size=st.integers(6, 14),
        kernel=st.sampled_from([1, 3, 5]),
        stride=st.integers(1, 3),
        padding=st.integers(0, 2),
    )
    def test_output_shape_formula(self, size, kernel, stride, padding):
        expected = conv_output_size(size, kernel, stride, padding)
        if expected < 1:
            return
        out = conv2d(_t((1, 1, size, size)), _t((2, 1, kernel, kernel), 1), None,
                     stride=stride, padding=padding)
        assert out.shape == (1, 2, expected, expected)


class TestConvBackward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (1, 1)])
    def test_gradients(self, stride, padding):
        x = _t((2, 2, 6, 6), 1)
        w = _t((3, 2, 3, 3), 2, scale=0.3)
        b = _t((3,), 3)
        check_gradients(lambda ts: conv2d(ts[0], ts[1], ts[2], stride=stride, padding=padding), [x, w, b])

    def test_grad_skipped_for_frozen_weight(self):
        x = _t((1, 1, 4, 4))
        w = Tensor(np.ones((1, 1, 3, 3), dtype=np.float32), requires_grad=False)
        out = conv2d(x, w, None, stride=1, padding=0)
        out.sum().backward()
        assert w.grad is None
        assert x.grad is not None


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        y = max_pool2d(x, 2, 2)
        np.testing.assert_allclose(y.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_hits_argmax_only(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_max_pool_overlapping_windows_grad(self):
        check_gradients(lambda ts: max_pool2d(ts[0], 3, 1), [_t((1, 2, 6, 6), 5)])

    def test_avg_pool_matches_mean(self):
        x = _t((2, 3, 6, 6), 7)
        y = avg_pool2d(x, 2, 2)
        manual = x.data.reshape(2, 3, 3, 2, 3, 2).mean(axis=(3, 5))
        np.testing.assert_allclose(y.data, manual, rtol=1e-5)

    def test_avg_pool_grad(self):
        check_gradients(lambda ts: avg_pool2d(ts[0], 2, 2), [_t((1, 2, 4, 4))])
        check_gradients(lambda ts: avg_pool2d(ts[0], 3, 2), [_t((1, 1, 7, 7))])

    def test_global_avg_pool(self):
        x = _t((2, 3, 4, 4))
        y = global_avg_pool2d(x)
        assert y.shape == (2, 3)
        np.testing.assert_allclose(y.data, x.data.mean(axis=(2, 3)), rtol=1e-5)
        check_gradients(lambda ts: global_avg_pool2d(ts[0]), [_t((2, 2, 3, 3))])

    def test_pool_geometry_validation(self):
        with pytest.raises(ValueError):
            max_pool2d(_t((1, 1, 2, 2)), 3, 1)
        with pytest.raises(ValueError):
            avg_pool2d(_t((1, 1, 2, 2)), 3, 1)
        with pytest.raises(ValueError):
            max_pool2d(_t((1, 2, 2)), 2, 2)
        with pytest.raises(ValueError):
            global_avg_pool2d(_t((2, 3)))

    def test_pool_output_size_formula(self):
        assert pool_output_size(10, 2, 2) == 5
        assert pool_output_size(10, 3, 2) == 4
        assert pool_output_size(5, 3, 1) == 3
