"""Acceptance: a chaos sweep (transients + worker kill + interrupt + store
corruption) resumes to results bitwise-identical to a fault-free serial run.

Also covers the sweep-survival satellites: unexpected exceptions are
captured instead of aborting the sweep, hangs are bounded by the trial
deadline, one broken device predictor degrades gracefully, and telemetry
accounts for all of it.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultyEvaluator,
    corrupt_store_tail,
    interrupt_after,
)
from repro.latency.devices import DEVICE_PROFILES
from repro.nas import (
    Experiment,
    GridSearch,
    RetryPolicy,
    SurrogateEvaluator,
    TrialStore,
)
from repro.nas.config import ModelConfig
from repro.nas.experiment import measure_architecture
from repro.nas.retry import PermanentTrialError
from repro.nas.searchspace import SearchSpace
from repro.nas.telemetry import RunTelemetry
from repro.parallel import ProcessPoolExecutorBackend

SPACE = SearchSpace(
    kernel_size=(3,), stride=(2,), padding=(1,), pool_choice=(0, 1),
    kernel_size_pool=(3,), stride_pool=(2,), initial_output_feature=(16, 32),
    channels=(5,), batches=(8, 16),
)
BUDGET = SPACE.total_configurations()  # 8
HW = (48, 48)


def _experiment(**overrides):
    kwargs = dict(
        evaluator=SurrogateEvaluator(seed=0),
        strategy=GridSearch(SPACE),
        input_hw=HW,
        latency_jitter=0.006,
        jitter_seed=0,
    )
    kwargs.update(overrides)
    return Experiment(**kwargs)


def _sorted_analysis(store):
    return sorted(store.analysis_records(), key=lambda r: r["trial_id"])


class _ExplodingEvaluator:
    """Raises an *unexpected* exception type for one configuration."""

    def __init__(self, inner, bad_config_id):
        self.inner = inner
        self.bad_config_id = bad_config_id

    def evaluate(self, config: ModelConfig):
        if config.config_id() == self.bad_config_id:
            raise FloatingPointError("overflow in fold 3")
        return self.inner.evaluate(config)


class TestChaosResumeAcceptance:
    def test_chaos_run_resumes_bitwise_equal(self, tmp_path):
        """The headline scenario: 2 transients, 1 worker kill, a Ctrl-C
        after BUDGET-2 trials and a truncated store tail — after resume,
        every non-injected trial succeeded and the analysis records are
        exactly those of a fault-free serial run."""
        # --- reference: fault-free, serial, in-memory --------------------
        reference = _experiment(store=TrialStore())
        ref_result = reference.run(BUDGET)
        assert ref_result.failed == 0
        ref_records = _sorted_analysis(reference.store)
        assert len(ref_records) == BUDGET

        # --- chaos leg 1: transients + worker kill + interrupt -----------
        plan = FaultPlan.chaos(total=BUDGET, transients=2, seed=3)
        transient_ids = plan.trials_with(FaultKind.TRANSIENT)
        assert len(transient_ids) == 2
        proposals = list(GridSearch(SPACE).propose(BUDGET))
        kill_tid = min(t for t in range(BUDGET) if t not in transient_ids)
        kill_cid = proposals[kill_tid].config_id()

        path = tmp_path / "sweep.jsonl"
        executor1 = ProcessPoolExecutorBackend(workers=2)
        evaluator1 = FaultyEvaluator(
            SurrogateEvaluator(seed=0), kill_config_ids={kill_cid},
            latch_dir=tmp_path, executor=executor1,
        )
        store1 = TrialStore(path)
        exp1 = _experiment(
            evaluator=evaluator1, store=store1, failure_injector=plan,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            progress=interrupt_after(BUDGET - 2),
        )
        with pytest.raises(KeyboardInterrupt):
            exp1.run(BUDGET)
        executor1.close()
        store1.close()
        assert evaluator1.kills_fired == 1
        assert executor1.pool_deaths == 1  # the kill broke (and respawned) the pool
        assert len(store1) == BUDGET - 2

        # --- crash artifact: writer killed mid-append --------------------
        corrupt_store_tail(path, mode="truncate", seed=0)

        # --- chaos leg 2: quarantining reload + verified resume ----------
        store2 = TrialStore(path)
        assert store2.load() == BUDGET - 3  # the torn record is quarantined
        assert len(store2.quarantined) == 1

        plan2 = FaultPlan.chaos(total=BUDGET, transients=2, seed=3)
        executor2 = ProcessPoolExecutorBackend(workers=2)
        evaluator2 = FaultyEvaluator(
            SurrogateEvaluator(seed=0), kill_config_ids={kill_cid},
            latch_dir=tmp_path, executor=executor2,
        )
        exp2 = _experiment(
            evaluator=evaluator2, store=store2, failure_injector=plan2,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            skip_existing=True,
        )
        result = exp2.run(BUDGET)
        executor2.close()
        store2.close()

        # Completion accounting: quarantined + never-run trials were
        # re-evaluated, the rest served from the store.
        assert result.skipped == BUDGET - 3
        assert result.launched == 3
        assert result.failed == 0

        # The kill latch survived the resume: no second kill fired.
        assert evaluator2.kills_fired == 0
        assert executor2.pool_deaths == 0

        # Every non-injected trial succeeded (this plan injects no
        # permanent losses, so that is *every* trial) ...
        final = TrialStore(path)
        assert final.load() == BUDGET
        assert all(r.ok for r in final.records())
        # ... and any transient trial that ran under chaos was retried.
        retried_ids = {r.trial_id for r in final.records() if r.attempts > 1}
        assert retried_ids <= set(transient_ids) and retried_ids

        # Bitwise acceptance: resumed analysis records == fault-free run.
        assert _sorted_analysis(final) == ref_records

    def test_paper_mode_plan_accounting(self):
        """FaultPlan.paper_mode drives the 1,717/1,728 accounting like the
        legacy injector (sampled here on a tiny sweep via TRIAL_FAILURE)."""
        plan = FaultPlan(
            [Fault(FaultKind.TRIAL_FAILURE, 2)], seed=0
        )
        exp = _experiment(store=TrialStore(), failure_injector=plan)
        result = exp.run(4)
        assert result.failed == 1 and result.succeeded == 3
        failed = [r for r in exp.store.records() if not r.ok]
        assert failed[0].trial_id == 2 and failed[0].error_kind == "injected"


class TestSweepSurvivesUnexpectedErrors:
    def test_unexpected_exception_is_captured_not_fatal(self):
        """Satellite fix: run_trial used to catch only (ValueError,
        KeyError) — a FloatingPointError aborted the whole sweep."""
        proposals = list(GridSearch(SPACE).propose(BUDGET))
        bad_cid = proposals[1].config_id()
        exp = _experiment(
            evaluator=_ExplodingEvaluator(SurrogateEvaluator(seed=0), bad_cid),
            store=TrialStore(),
            retry_policy=RetryPolicy.none(),
        )
        result = exp.run(BUDGET)  # must not raise
        assert result.launched == BUDGET
        assert result.failed == 1 and result.succeeded == BUDGET - 1
        (bad,) = [r for r in exp.store.records() if not r.ok]
        assert bad.trial_id == 1
        assert bad.error_kind == "permanent"
        assert "FloatingPointError" in bad.error
        assert "FloatingPointError" in bad.traceback  # full traceback captured
        assert bad.attempts == 1  # permanent errors are not retried

    def test_transient_recovery_is_accounted(self):
        plan = FaultPlan([Fault(FaultKind.TRANSIENT, 0, attempts=1)])
        exp = _experiment(
            store=TrialStore(), failure_injector=plan,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
        )
        result = exp.run(3)
        assert result.failed == 0
        assert result.retried == 1 and result.total_retries == 1
        record = exp.store.records()[0]
        assert record.ok and record.attempts == 2 and record.retried

    def test_hang_is_bounded_by_trial_deadline(self):
        plan = FaultPlan([Fault(FaultKind.HANG, 1, delay_s=30.0)])
        exp = _experiment(
            store=TrialStore(), failure_injector=plan,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, deadline_s=0.05),
        )
        result = exp.run(3)
        assert result.deadline_exceeded == 1
        record = exp.store.records()[1]
        assert not record.ok and record.error_kind == "deadline"
        assert record.duration_s < 5.0  # the 30 s hang did not run its course
        assert result.succeeded == 2

    def test_exhausted_transient_fails_with_kind(self):
        plan = FaultPlan([Fault(FaultKind.TRANSIENT, 0, attempts=10)])
        exp = _experiment(
            store=TrialStore(), failure_injector=plan,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
        )
        result = exp.run(2)
        record = exp.store.records()[0]
        assert not record.ok and record.error_kind == "transient"
        assert record.attempts == 2
        assert result.retried == 1


class TestDeviceDegradation:
    CONFIG = ModelConfig(
        channels=5, batch=8, kernel_size=3, stride=2, padding=1,
        pool_choice=1, kernel_size_pool=3, stride_pool=2,
        initial_output_feature=16,
    )

    def test_one_broken_predictor_is_skipped(self):
        good = dict(list(DEVICE_PROFILES.items())[:2])
        broken = {**good, "broken-device": None}  # None -> AttributeError inside
        degraded = measure_architecture(self.CONFIG, input_hw=HW, profiles=broken)
        assert degraded.skipped_devices == ("broken-device",)
        assert set(degraded.per_device_ms) == set(good)
        # Survivor aggregation matches a run that never saw the broken one.
        clean = measure_architecture(self.CONFIG, input_hw=HW, profiles=good)
        assert degraded.latency_ms == clean.latency_ms
        assert degraded.lat_std == clean.lat_std

    def test_all_broken_predictors_raise_permanent(self):
        with pytest.raises(PermanentTrialError, match="all device predictors"):
            measure_architecture(
                self.CONFIG, input_hw=HW, profiles={"b1": None, "b2": None}
            )

    def test_experiment_records_skipped_devices(self):
        profiles = {**dict(list(DEVICE_PROFILES.items())[:2]), "broken-device": None}
        exp = _experiment(store=TrialStore(), profiles=profiles)
        result = exp.run(2)
        assert result.failed == 0
        for record in exp.store.records():
            assert record.ok
            assert record.skipped_devices == ("broken-device",)


class TestTelemetryCounters:
    def test_fault_counters_and_summary(self):
        plan = FaultPlan([
            Fault(FaultKind.TRANSIENT, 0, attempts=1),
            Fault(FaultKind.TRIAL_FAILURE, 2),
        ])
        telemetry = RunTelemetry()
        exp = _experiment(
            store=TrialStore(), failure_injector=plan,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            progress=telemetry,
        )
        exp.run(4)
        assert telemetry.retried_trials == 1
        assert telemetry.total_retries == 1
        assert telemetry.recovered_trials == 1
        assert telemetry.failures == 1
        assert telemetry.failures_by_kind == {"injected": 1}
        assert "1 trials retried" in telemetry.fault_line()
        assert "recovered" in telemetry.summary()
