"""Layers, initialization and optimizers."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
)
from repro.nn.init import conv_fans, kaiming_normal, kaiming_uniform, linear_fans, xavier_uniform
from repro.tensor.tensor import Tensor


def _x(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape).astype(np.float32))


class TestInit:
    def test_fans(self):
        assert conv_fans((8, 4, 3, 3)) == (36, 72)
        assert linear_fans((10, 20)) == (20, 10)

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = kaiming_normal((256, 128, 3, 3), rng, mode="fan_out")
        expected = np.sqrt(2.0 / (256 * 9))
        assert w.std() == pytest.approx(expected, rel=0.05)

    def test_kaiming_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = kaiming_uniform((64, 64), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert w.min() >= -bound and w.max() <= bound

    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((50, 30), rng)
        bound = np.sqrt(6.0 / 80)
        assert np.abs(w).max() <= bound

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            kaiming_normal((3,), np.random.default_rng(0))


class TestLayers:
    def test_conv_deterministic_with_seed(self):
        a = Conv2d(3, 8, 3, rng=5)
        b = Conv2d(3, 8, 3, rng=5)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_conv_bias_flag(self):
        assert Conv2d(2, 4, 3, bias=False).bias is None
        assert len(Conv2d(2, 4, 3, bias=False).parameters()) == 1

    def test_conv_validation(self):
        with pytest.raises(ValueError):
            Conv2d(0, 4, 3)
        with pytest.raises(ValueError):
            Conv2d(2, 4, 0)

    def test_linear_shapes(self):
        layer = Linear(6, 4, rng=0)
        assert layer(_x((5, 6))).shape == (5, 4)
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_pool_default_stride_equals_kernel(self):
        assert MaxPool2d(2).stride == 2
        assert AvgPool2d(3).stride == 3

    def test_identity_flatten(self):
        x = _x((2, 3, 4, 4))
        assert Identity()(x) is x
        assert Flatten()(x).shape == (2, 48)

    def test_global_avg_pool_layer(self):
        assert GlobalAvgPool2d()(_x((2, 5, 3, 3))).shape == (2, 5)

    def test_batchnorm_switches_with_mode(self):
        bn = BatchNorm2d(2)
        x = _x((8, 2, 3, 3), seed=3)
        bn.train()
        y_train = bn(x)
        bn.eval()
        y_eval = bn(x)
        # Same input, different normalization source -> different output.
        assert not np.allclose(y_train.data, y_eval.data)

    def test_reprs_are_informative(self):
        assert "Conv2d(3, 8" in repr(Conv2d(3, 8, 3))
        assert "BatchNorm2d(4)" == repr(BatchNorm2d(4))
        assert "MaxPool2d" in repr(MaxPool2d(3, 2))


def _quadratic_params(seed=0):
    rng = np.random.default_rng(seed)
    target = rng.normal(size=(8,)).astype(np.float32)
    p = Parameter(np.zeros(8))
    return p, target


class TestSGD:
    def test_converges_on_quadratic(self):
        p, target = _quadratic_params()
        opt = SGD([p], lr=0.3, momentum=0.9)
        for _ in range(150):
            opt.zero_grad()
            loss = ((p - Tensor(target)) ** 2.0).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.ones(4))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(4, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, 0.9 * np.ones(4), rtol=1e-5)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=0.5).step()
        np.testing.assert_array_equal(p.data, np.ones(2))

    def test_validation(self):
        p = Parameter(np.ones(2))
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], momentum=1.5)
        with pytest.raises(ValueError):
            SGD([p], weight_decay=-1.0)
        with pytest.raises(ValueError):
            SGD([])


class TestAdam:
    def test_converges_on_quadratic(self):
        p, target = _quadratic_params(1)
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            ((p - Tensor(target)) ** 2.0).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |step 1| == lr regardless of grad scale.
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([1000.0], dtype=np.float32)
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_validation(self):
        p = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            Adam([p], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.9))


class TestTrainingSmoke:
    def test_small_net_fits_xor_like_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 2)).astype(np.float32)
        y = ((x[:, 0] * x[:, 1]) > 0).astype(np.int64)
        from repro.nn import Sequential

        net = Sequential(Linear(2, 16, rng=1), ReLU(), Linear(16, 2, rng=2))
        opt = SGD(net.parameters(), lr=0.1, momentum=0.9)
        loss_fn = CrossEntropyLoss()
        for _ in range(200):
            opt.zero_grad()
            loss = loss_fn(net(Tensor(x)), y)
            loss.backward()
            opt.step()
        acc = (net(Tensor(x)).data.argmax(axis=1) == y).mean()
        assert acc > 0.9
