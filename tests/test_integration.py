"""End-to-end integration: the complete paper pipeline at miniature scale.

This is the honest-path test: real synthetic data, real NumPy training
with k-fold CV, real latency prediction and onnxlite memory, ending in a
Pareto front — the whole Section 3 methodology in one run.
"""

import numpy as np
import pytest

from repro.nas import Experiment, GridSearch, TrainingEvaluator, TrialStore
from repro.nas.searchspace import SearchSpace
from repro.pareto import ParetoAnalysis


@pytest.fixture(scope="module")
def mini_sweep_result():
    space = SearchSpace(
        kernel_size=(3,), stride=(2,), padding=(1,),
        pool_choice=(0,), kernel_size_pool=(3,), stride_pool=(2,),
        initial_output_feature=(32, 64),
        channels=(5,), batches=(4, 8),
    )
    evaluator = TrainingEvaluator(
        samples_per_class=3, patch_size=24, epochs=1, k=2, regions=["nebraska"], seed=0
    )
    experiment = Experiment(
        evaluator=evaluator, strategy=GridSearch(space), input_hw=(24, 24)
    )
    return experiment.run(budget=4)


class TestEndToEnd:
    def test_all_trials_complete(self, mini_sweep_result):
        assert mini_sweep_result.launched == 4
        assert mini_sweep_result.succeeded == 4

    def test_records_carry_all_three_objectives(self, mini_sweep_result):
        for record in mini_sweep_result.store:
            assert 0.0 <= record.accuracy <= 100.0
            assert record.latency_ms > 0
            assert record.memory_mb > 0
            assert len(record.fold_accuracies) == 2
            assert len(record.per_device_ms) == 4

    def test_memory_reflects_architecture(self, mini_sweep_result):
        by_feature = {}
        for record in mini_sweep_result.store:
            by_feature.setdefault(record.config.initial_output_feature, set()).add(
                round(record.memory_mb, 3)
            )
        # f=64 models are ~4x the memory of f=32 models.
        assert min(by_feature[64]) > 3.5 * max(by_feature[32])

    def test_pareto_front_extraction_works(self, mini_sweep_result):
        records = mini_sweep_result.store.analysis_records()
        front = ParetoAnalysis().front_records(records)
        assert 1 <= len(front) <= len(records)

    def test_store_roundtrip_through_disk(self, mini_sweep_result, tmp_path):
        path = tmp_path / "mini.jsonl"
        persisted = TrialStore(path)
        persisted.extend(mini_sweep_result.store.records())
        restored = TrialStore(path)
        assert restored.load() == 4
        for a, b in zip(mini_sweep_result.store, restored):
            assert a.config == b.config
            assert a.accuracy == pytest.approx(b.accuracy)


class TestTrainedModelQuality:
    def test_full_protocol_learns_on_synthetic_data(self):
        """Train the paper's winning architecture with the real pipeline
        and require clearly-above-chance 2-fold CV accuracy."""
        from repro.nas.config import ModelConfig

        evaluator = TrainingEvaluator(
            samples_per_class=8, patch_size=28, epochs=4, k=2,
            regions=["nebraska", "california"], seed=2, lr=0.02,
        )
        config = ModelConfig(channels=5, batch=8, kernel_size=3, stride=2, padding=1,
                             pool_choice=0, kernel_size_pool=3, stride_pool=2,
                             initial_output_feature=32)
        result = evaluator.evaluate(config)
        assert result.accuracy > 65.0
