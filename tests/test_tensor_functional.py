"""Tests for NN functional primitives: stability, gradients, semantics."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients
from repro.tensor import functional as F


def _t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestActivations:
    def test_sigmoid_stable_for_extreme_inputs(self):
        x = Tensor([-500.0, 0.0, 500.0])
        y = F.sigmoid(x)
        np.testing.assert_allclose(y.data, [0.0, 0.5, 1.0], atol=1e-6)
        assert np.isfinite(y.data).all()

    def test_sigmoid_tanh_grads(self):
        check_gradients(lambda ts: F.sigmoid(ts[0]), [_t((3, 3))])
        check_gradients(lambda ts: F.tanh(ts[0]), [_t((3, 3))])

    def test_relu_alias(self):
        x = Tensor([-1.0, 2.0])
        np.testing.assert_allclose(F.relu(x).data, [0.0, 2.0])


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        y = F.softmax(_t((5, 7)), axis=1)
        np.testing.assert_allclose(y.data.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_log_softmax_stability_large_logits(self):
        x = Tensor([[1000.0, 1000.0]])
        y = F.log_softmax(x, axis=1)
        np.testing.assert_allclose(y.data, np.log(0.5) * np.ones((1, 2)), rtol=1e-5)

    def test_log_softmax_grad(self):
        check_gradients(lambda ts: F.log_softmax(ts[0], axis=1), [_t((4, 3))])


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = Tensor([[2.0, 0.0], [0.0, 3.0]])
        targets = np.array([0, 1])
        loss = F.cross_entropy_logits(logits, targets)
        expected = float(np.mean([np.log(1 + np.exp(-2.0)), np.log(1 + np.exp(-3.0))]))
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = F.cross_entropy_logits(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(3.0), rel=1e-5)

    def test_gradient(self):
        t = np.array([0, 1, 1, 0])
        check_gradients(lambda ts: F.cross_entropy_logits(ts[0], t), [_t((4, 2))])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy_logits(_t((4,)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            F.cross_entropy_logits(_t((4, 2)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            F.cross_entropy_logits(_t((2, 2)), np.array([0, 5]))


class TestLinear:
    def test_shapes_and_grad(self):
        x, w, b = _t((3, 4), 1), _t((2, 4), 2), _t((2,), 3)
        y = F.linear(x, w, b)
        assert y.shape == (3, 2)
        check_gradients(lambda ts: F.linear(*ts), [x, w, b])


class TestDropout:
    def test_eval_mode_identity(self):
        x = _t((4, 4))
        assert F.dropout(x, 0.5, training=False) is x
        assert F.dropout(x, 0.0) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        y = F.dropout(x, 0.3, rng=rng)
        assert y.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(_t((2,)), 1.0)


class TestBatchNorm:
    def _params(self, c):
        gamma = Tensor(np.ones(c), requires_grad=True)
        beta = Tensor(np.zeros(c), requires_grad=True)
        return gamma, beta, np.zeros(c, np.float32), np.ones(c, np.float32)

    def test_training_normalizes_batch(self):
        g, b, rm, rv = self._params(3)
        x = _t((8, 3, 5, 5), scale=3.0)
        y = F.batch_norm_2d(x, g, b, rm, rv, training=True)
        assert abs(float(y.data.mean())) < 1e-4
        assert float(y.data.std()) == pytest.approx(1.0, abs=1e-2)

    def test_running_stats_updated_toward_batch(self):
        g, b, rm, rv = self._params(2)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(16, 2, 4, 4)))
        F.batch_norm_2d(x, g, b, rm, rv, training=True, momentum=1.0)
        np.testing.assert_allclose(rm, x.data.mean(axis=(0, 2, 3)), rtol=1e-4)

    def test_eval_uses_running_stats(self):
        g, b, rm, rv = self._params(2)
        rm[:] = 1.0
        rv[:] = 4.0
        x = Tensor(np.full((2, 2, 2, 2), 3.0, dtype=np.float32))
        y = F.batch_norm_2d(x, g, b, rm, rv, training=False)
        np.testing.assert_allclose(y.data, (3.0 - 1.0) / 2.0, rtol=1e-3)

    def test_eval_mode_grad(self):
        g, b, rm, rv = self._params(3)
        x = _t((4, 3, 2, 2))
        check_gradients(
            lambda ts: F.batch_norm_2d(ts[0], ts[1], ts[2], rm.copy(), rv.copy(), training=False),
            [x, g, b],
        )

    def test_shape_validation(self):
        g, b, rm, rv = self._params(3)
        with pytest.raises(ValueError):
            F.batch_norm_2d(_t((4, 3)), g, b, rm, rv, training=True)
        with pytest.raises(ValueError):
            F.batch_norm_2d(_t((2, 4, 3, 3)), g, b, rm, rv, training=True)
