"""Forward hooks, activation observation, channel statistics, sweep compare."""

import numpy as np
import pytest

from repro.data.dataset import DrainageCrossingDataset
from repro.data.stats import ChannelStats, Normalizer, compute_channel_stats
from repro.nn import Conv2d, Linear, ReLU, SearchableResNet18, Sequential
from repro.quant.observer import ActivationObserver
from repro.tensor.tensor import Tensor


class TestForwardHooks:
    def test_hook_sees_output(self):
        layer = Linear(3, 2, rng=0)
        seen = []
        handle = layer.register_forward_hook(lambda m, args, out: seen.append(out.shape))
        layer(Tensor(np.zeros((4, 3), dtype=np.float32)))
        assert seen == [(4, 2)]
        handle.remove()
        layer(Tensor(np.zeros((4, 3), dtype=np.float32)))
        assert len(seen) == 1  # removed hooks stop firing

    def test_hook_can_replace_output(self):
        layer = ReLU()
        layer.register_forward_hook(lambda m, args, out: out * 2.0)
        out = layer(Tensor(np.array([1.0, -1.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [2.0, 0.0])

    def test_remove_is_idempotent(self):
        layer = ReLU()
        handle = layer.register_forward_hook(lambda m, a, o: None)
        handle.remove()
        handle.remove()

    def test_multiple_hooks_run_in_order(self):
        layer = ReLU()
        calls = []
        layer.register_forward_hook(lambda m, a, o: calls.append("first"))
        layer.register_forward_hook(lambda m, a, o: calls.append("second"))
        layer(Tensor(np.zeros(2, dtype=np.float32)))
        assert calls == ["first", "second"]


class TestActivationObserver:
    def _model(self):
        return Sequential(Conv2d(2, 4, 3, padding=1, rng=0), ReLU(), Conv2d(4, 2, 3, padding=1, rng=1))

    def test_collects_ranges_for_leaves(self):
        model = self._model()
        observer = ActivationObserver(model)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 2, 8, 8)).astype(np.float32))
        with observer:
            model(x)
            model(x)
        summary = observer.summary()
        assert len(summary) == 3  # two convs + relu, no container row
        assert all(row["batches"] == 2 for row in summary)

    def test_detach_stops_collection(self):
        model = self._model()
        observer = ActivationObserver(model).attach()
        observer.detach()
        model(Tensor(np.zeros((1, 2, 8, 8), dtype=np.float32)))
        assert all(not r.observed for r in observer.ranges.values())

    def test_relu_range_nonnegative(self):
        model = self._model()
        observer = ActivationObserver(model, layer_types=(ReLU,))
        with observer:
            model(Tensor(np.random.default_rng(1).normal(size=(2, 2, 8, 8)).astype(np.float32)))
        (record,) = [r for r in observer.ranges.values() if r.observed]
        assert record.low >= 0.0

    def test_fit_quantizers_cover_ranges(self):
        model = self._model()
        observer = ActivationObserver(model)
        with observer:
            model(Tensor(np.random.default_rng(2).normal(size=(2, 2, 8, 8)).astype(np.float32)))
        quantizers = observer.fit_quantizers()
        for name, record in observer.ranges.items():
            quantizer = quantizers[name]
            # The observed extremes must be representable within half a step.
            for value in (record.low, record.high):
                code = quantizer.quantize(np.array([value]))
                assert abs(quantizer.dequantize(code)[0] - value) <= 0.5 * quantizer.scale + 1e-9

    def test_double_attach_rejected(self):
        observer = ActivationObserver(self._model()).attach()
        with pytest.raises(RuntimeError):
            observer.attach()

    def test_works_on_resnet(self):
        model = SearchableResNet18(in_channels=5, kernel_size=3, padding=1,
                                   pool_choice=0, initial_output_feature=32)
        model.eval()
        observer = ActivationObserver(model)
        with observer:
            from repro.tensor.tensor import no_grad

            with no_grad():
                model(Tensor(np.zeros((1, 5, 32, 32), dtype=np.float32)))
        assert len(observer.summary()) > 30


class TestChannelStats:
    @pytest.fixture(scope="class")
    def dataset(self):
        return DrainageCrossingDataset(channels=5, size=24, samples_per_class=3,
                                       regions=["nebraska"], seed=0)

    def test_matches_direct_computation(self, dataset):
        stats = compute_channel_stats(dataset, batch=4)
        x = np.stack([dataset.patch(i) for i in range(len(dataset))])
        direct_mean = x.transpose(1, 0, 2, 3).reshape(5, -1).mean(axis=1)
        direct_std = x.transpose(1, 0, 2, 3).reshape(5, -1).std(axis=1)
        np.testing.assert_allclose(stats.mean, direct_mean, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(stats.std, direct_std, rtol=1e-4, atol=1e-5)

    def test_batch_size_invariance(self, dataset):
        a = compute_channel_stats(dataset, batch=3)
        b = compute_channel_stats(dataset, batch=100)
        np.testing.assert_allclose(a.mean, b.mean, rtol=1e-5)
        np.testing.assert_allclose(a.std, b.std, rtol=1e-5)

    def test_normalizer_standardizes(self, dataset):
        stats = compute_channel_stats(dataset)
        normalizer = Normalizer(stats)
        x = np.stack([dataset.patch(i) for i in range(len(dataset))])
        z = normalizer(x)
        flat = z.transpose(1, 0, 2, 3).reshape(5, -1)
        np.testing.assert_allclose(flat.mean(axis=1), 0.0, atol=1e-3)
        np.testing.assert_allclose(flat.std(axis=1), 1.0, atol=1e-3)
        np.testing.assert_allclose(normalizer.inverse(z), x, rtol=1e-3, atol=1e-4)

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            compute_channel_stats(dataset, indices=np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            ChannelStats(mean=np.zeros(3), std=np.zeros(3))
        stats = compute_channel_stats(dataset)
        with pytest.raises(ValueError):
            Normalizer(stats)(np.zeros((2, 7, 4, 4), dtype=np.float32))


class TestSweepCompare:
    def test_identical_sweeps_compare_perfectly(self):
        from repro.core import HwNasPipeline
        from repro.core.sweep_compare import compare_sweeps
        from repro.nas import GridSearch, SurrogateEvaluator
        from repro.nas.searchspace import SearchSpace

        space = SearchSpace(kernel_size=(3,), stride=(2,), padding=(1,), pool_choice=(0, 1),
                            kernel_size_pool=(3,), stride_pool=(2,),
                            initial_output_feature=(32, 64), channels=(5,), batches=(8, 16))
        def run(seed):
            return HwNasPipeline(SurrogateEvaluator(seed=seed), space, GridSearch(space),
                                 input_hw=(48, 48)).run()

        same = compare_sweeps(run(0), run(0))
        assert same.accuracy_spearman == pytest.approx(1.0)
        assert same.mean_abs_accuracy_delta == 0.0
        assert same.best_architecture_matches
        assert same.front_architecture_jaccard == 1.0

        different = compare_sweeps(run(0), run(5))
        assert different.mean_abs_accuracy_delta > 0.0
        assert "Spearman" in different.summary()
