"""SearchableResNet18: structure, shapes, parameter counts, config build."""

import numpy as np
import pytest

from repro.nn import (
    BasicBlock,
    SearchableResNet18,
    build_baseline_resnet18,
    build_model,
    count_parameters,
    model_summary,
)
from repro.nn.serialize import load_state_dict, save_state_dict, state_dict_from_bytes, state_dict_to_bytes
from repro.tensor.tensor import Tensor


def _x(n, c, s, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=(n, c, s, s)).astype(np.float32))


class TestBasicBlock:
    def test_identity_skip_when_shapes_match(self):
        from repro.nn.layers import Identity

        block = BasicBlock(16, 16, stride=1)
        assert isinstance(block.downsample, Identity)

    def test_projection_skip_on_stride_or_width_change(self):
        from repro.nn.module import Sequential

        assert isinstance(BasicBlock(16, 32, stride=2).downsample, Sequential)
        assert isinstance(BasicBlock(16, 32, stride=1).downsample, Sequential)

    def test_forward_shape(self):
        block = BasicBlock(8, 16, stride=2)
        out = block(_x(2, 8, 16))
        assert out.shape == (2, 16, 8, 8)


class TestParameterCounts:
    def test_baseline_matches_paper_memory_math(self):
        # Paper Table 5: 44.71 MB at 5 channels -> ~11.18M params.
        count = count_parameters(build_baseline_resnet18(in_channels=5))
        assert count == pytest.approx(11.18e6, rel=0.005)

    def test_winner_is_quarter_size(self):
        small = count_parameters(
            SearchableResNet18(in_channels=7, kernel_size=3, padding=1, pool_choice=0,
                               initial_output_feature=32)
        )
        big = count_parameters(build_baseline_resnet18(in_channels=7))
        assert big / small == pytest.approx(4.0, rel=0.01)

    def test_width_scaling_is_quadratic(self):
        f32 = count_parameters(SearchableResNet18(initial_output_feature=32, kernel_size=3, padding=1))
        f64 = count_parameters(SearchableResNet18(initial_output_feature=64, kernel_size=3, padding=1))
        assert f64 / f32 == pytest.approx(4.0, rel=0.02)


class TestForward:
    @pytest.mark.parametrize("channels", [5, 7])
    def test_output_is_binary_logits(self, channels):
        model = SearchableResNet18(in_channels=channels, kernel_size=3, padding=1,
                                   pool_choice=0, initial_output_feature=32)
        out = model(_x(2, channels, 32))
        assert out.shape == (2, 2)

    def test_pooling_path(self):
        model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                                   pool_choice=1, kernel_size_pool=2, stride_pool=2,
                                   initial_output_feature=32)
        assert model(_x(1, 5, 64)).shape == (1, 2)

    def test_channel_mismatch_rejected(self):
        model = SearchableResNet18(in_channels=5, kernel_size=3, padding=1)
        with pytest.raises(ValueError):
            model(_x(1, 7, 32))

    def test_predict_returns_classes(self):
        model = SearchableResNet18(in_channels=5, kernel_size=3, padding=1,
                                   pool_choice=0, initial_output_feature=32)
        preds = model.predict(_x(4, 5, 32))
        assert preds.shape == (4,)
        assert set(np.unique(preds)).issubset({0, 1})

    def test_deterministic_init_by_seed(self):
        a = SearchableResNet18(seed=11, kernel_size=3, padding=1)
        b = SearchableResNet18(seed=11, kernel_size=3, padding=1)
        np.testing.assert_array_equal(a.conv1.weight.data, b.conv1.weight.data)
        c = SearchableResNet18(seed=12, kernel_size=3, padding=1)
        assert not np.allclose(a.conv1.weight.data, c.conv1.weight.data)


class TestValidation:
    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            SearchableResNet18(in_channels=0)
        with pytest.raises(ValueError):
            SearchableResNet18(num_classes=1)
        with pytest.raises(ValueError):
            SearchableResNet18(pool_choice=2)
        with pytest.raises(ValueError):
            SearchableResNet18(initial_output_feature=0)


class TestBuildModel:
    def test_from_mapping_and_object(self, winner_config):
        from_map = build_model(winner_config.to_dict())
        from_obj = build_model(winner_config)
        assert count_parameters(from_map) == count_parameters(from_obj)
        assert from_obj.in_channels == 7

    def test_config_recorded(self, winner_config):
        model = build_model(winner_config)
        assert model.config["initial_output_feature"] == 32
        assert model.config["pool_choice"] == 0


class TestSerialization:
    def test_bytes_roundtrip(self):
        model = SearchableResNet18(kernel_size=3, padding=1, initial_output_feature=32, pool_choice=0)
        payload = state_dict_to_bytes(model.state_dict())
        restored = state_dict_from_bytes(payload)
        np.testing.assert_array_equal(restored["conv1.weight"], model.conv1.weight.data)

    def test_file_roundtrip_preserves_outputs(self, tmp_path):
        a = SearchableResNet18(seed=1, kernel_size=3, padding=1, initial_output_feature=32, pool_choice=0)
        b = SearchableResNet18(seed=2, kernel_size=3, padding=1, initial_output_feature=32, pool_choice=0)
        x = _x(2, 5, 32)
        a.eval(), b.eval()
        save_state_dict(a, tmp_path / "m.bin")
        load_state_dict(b, tmp_path / "m.bin")
        np.testing.assert_allclose(a(x).data, b(x).data, rtol=1e-5)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            state_dict_from_bytes(b"NOPE" + b"\x00" * 16)


class TestSummary:
    def test_summary_total_matches(self):
        model = SearchableResNet18(kernel_size=3, padding=1, initial_output_feature=32, pool_choice=0)
        text = model_summary(model)
        assert str(count_parameters(model)) in text
        assert "conv1" in text
