"""Workspace pool mechanics + bitwise equivalence of the pooled paths.

The training substrate (PR: fold-parallel CV + workspace reuse) promises
that pooled scratch buffers change *nothing* numerically: every op fully
overwrites its buffers, so running under :func:`use_workspaces` must be
bitwise identical to allocation-per-call.  The fuzzed checks below drive
:func:`repro.tensor.grad_check.check_backend_consistency` across random
conv/pool/batch-norm geometries with real padding and stride.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, WorkspacePool, active_pool, use_workspaces, workspaces_enabled
from repro.tensor import conv_ops
from repro.tensor import functional as F
from repro.tensor.grad_check import check_backend_consistency, check_gradients
from repro.tensor.tensor import no_grad


class TestWorkspacePool:
    def test_miss_then_hit(self):
        pool = WorkspacePool()
        a = pool.acquire((3, 4))
        assert pool.misses == 1 and pool.hits == 0
        pool.release(a)
        b = pool.acquire((3, 4))
        assert b is a  # the exact buffer comes back
        assert pool.hits == 1

    def test_shape_keyed(self):
        pool = WorkspacePool()
        a = pool.acquire((2, 2))
        pool.release(a)
        b = pool.acquire((4,))  # different shape: a fresh allocation
        assert b is not a
        assert pool.misses == 2

    def test_live_buffers_never_alias(self):
        pool = WorkspacePool()
        a = pool.acquire((5,))
        b = pool.acquire((5,))
        assert a is not b

    def test_stats_and_clear(self):
        pool = WorkspacePool()
        buf = pool.acquire((8, 8))
        pool.release(buf)
        stats = pool.stats()
        assert stats["peak_bytes"] == buf.nbytes
        assert stats["free_bytes"] == buf.nbytes
        assert stats["shapes"] == 1
        pool.clear()
        assert pool.free_bytes() == 0

    def test_context_activation_and_nesting(self):
        assert not workspaces_enabled()
        outer = WorkspacePool()
        inner = WorkspacePool()
        with use_workspaces(outer):
            assert workspaces_enabled()
            assert active_pool() is outer
            with use_workspaces(inner):
                assert active_pool() is inner
            assert active_pool() is outer
        assert not workspaces_enabled()

    def test_null_pool_outside_context(self):
        # Outside a context, acquire is plain allocation and release a no-op.
        pool = active_pool()
        a = pool.acquire((2, 3))
        assert a.shape == (2, 3) and a.dtype == np.float32
        pool.release(a)
        assert pool.acquire((2, 3)) is not a


def _ws_contexts():
    """Context factories for bitwise comparison: plain vs pooled."""
    return (contextlib.nullcontext, use_workspaces, use_workspaces)


class TestBitwiseEquivalence:
    """Fuzzed: pooled execution == allocation-per-call, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 4),
        c_in=st.integers(1, 4),
        c_out=st.integers(1, 5),
        size=st.integers(5, 12),
        kernel=st.integers(1, 4),
        stride=st.integers(1, 3),
        padding=st.integers(0, 2),
        data=st.integers(0, 2**31 - 1),
    )
    def test_conv2d_fuzzed(self, n, c_in, c_out, size, kernel, stride, padding, data):
        if conv_ops.conv_output_size(size, kernel, stride, padding) < 1:
            return  # degenerate geometry, rejected by conv2d itself
        rng = np.random.default_rng(data)
        x = Tensor(rng.standard_normal((n, c_in, size, size), dtype=np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((c_out, c_in, kernel, kernel), dtype=np.float32),
                   requires_grad=True)
        b = Tensor(rng.standard_normal((c_out,), dtype=np.float32), requires_grad=True)
        check_backend_consistency(
            lambda ts: conv_ops.conv2d(ts[0], ts[1], ts[2], stride=stride, padding=padding),
            [x, w, b],
            contexts=_ws_contexts(),
        )

    def test_conv2d_padded_strided_gradients(self):
        # The clipped col2im scatter (no padded staging buffer) against
        # central differences, on both GEMM layouts.
        rng = np.random.default_rng(7)
        for n in (1, 3):  # n=1 -> batched layout, n=3 -> merged layout
            x = Tensor(rng.standard_normal((n, 2, 7, 7), dtype=np.float32), requires_grad=True)
            w = Tensor(0.3 * rng.standard_normal((3, 2, 3, 3), dtype=np.float32),
                       requires_grad=True)
            b = Tensor(rng.standard_normal((3,), dtype=np.float32), requires_grad=True)
            check_gradients(
                lambda ts: conv_ops.conv2d(ts[0], ts[1], ts[2], stride=2, padding=1),
                [x, w, b],
            )

    @settings(max_examples=15, deadline=None)
    @given(
        size=st.integers(4, 10),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 3),
        maxpool=st.booleans(),
        data=st.integers(0, 2**31 - 1),
    )
    def test_pooling_fuzzed(self, size, kernel, stride, maxpool, data):
        if conv_ops.pool_output_size(size, kernel, stride) < 1:
            return
        rng = np.random.default_rng(data)
        op = conv_ops.max_pool2d if maxpool else conv_ops.avg_pool2d
        x = Tensor(rng.standard_normal((2, 3, size, size), dtype=np.float32), requires_grad=True)
        check_backend_consistency(
            lambda ts: op(ts[0], kernel, stride), [x], contexts=_ws_contexts()
        )

    @settings(max_examples=10, deadline=None)
    @given(training=st.booleans(), data=st.integers(0, 2**31 - 1))
    def test_batch_norm_fuzzed(self, training, data):
        rng = np.random.default_rng(data)
        x = Tensor(rng.standard_normal((3, 4, 5, 5), dtype=np.float32), requires_grad=True)
        gamma = Tensor(rng.standard_normal((4,), dtype=np.float32), requires_grad=True)
        beta = Tensor(rng.standard_normal((4,), dtype=np.float32), requires_grad=True)
        mean0 = rng.standard_normal(4).astype(np.float32)
        var0 = rng.random(4).astype(np.float32) + 0.5

        def fn(ts):
            # Fresh running buffers per run so the EMA update (an output
            # too) is also compared bitwise across contexts.
            rm, rv = mean0.copy(), var0.copy()
            return F.batch_norm_2d(ts[0], ts[1], ts[2], rm, rv, training=training)

        check_backend_consistency(fn, [x, gamma, beta], contexts=_ws_contexts())

    def test_composite_block(self):
        # conv -> BN -> relu -> pool: closures release buffers in tape
        # order; the whole block must stay bitwise stable under pooling.
        rng = np.random.default_rng(11)
        x = Tensor(rng.standard_normal((2, 3, 12, 12), dtype=np.float32), requires_grad=True)
        w = Tensor(0.2 * rng.standard_normal((4, 3, 3, 3), dtype=np.float32), requires_grad=True)
        gamma = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        beta = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        rm = np.zeros(4, dtype=np.float32)
        rv = np.ones(4, dtype=np.float32)

        def block(ts):
            y = conv_ops.conv2d(ts[0], ts[1], None, stride=2, padding=1)
            y = F.batch_norm_2d(y, ts[2], ts[3], rm.copy(), rv.copy(), training=True)
            y = y.relu()
            return conv_ops.max_pool2d(y, 2, 2)

        check_backend_consistency(block, [x, w, gamma, beta], contexts=_ws_contexts())


class TestPoolDiscipline:
    """Buffers flow back: no leaks from closures, donation or fast paths."""

    def _conv_inputs(self, requires_grad=True):
        rng = np.random.default_rng(3)
        x = Tensor(rng.standard_normal((2, 3, 10, 10), dtype=np.float32),
                   requires_grad=requires_grad)
        w = Tensor(rng.standard_normal((4, 3, 3, 3), dtype=np.float32),
                   requires_grad=requires_grad)
        b = Tensor(rng.standard_normal((4,), dtype=np.float32), requires_grad=requires_grad)
        return x, w, b

    def test_inference_mode_keeps_no_closure_and_recycles(self):
        x, w, b = self._conv_inputs(requires_grad=True)
        pool = WorkspacePool()
        with use_workspaces(pool), no_grad():
            out = conv_ops.conv2d(x, w, b, stride=2, padding=1)
        assert out._backward is None  # nothing pins the column matrix
        # Everything acquired during the forward is back on the free list.
        assert pool.free_bytes() == pool.peak_bytes

    def test_backward_returns_all_buffers_for_non_leaf_inputs(self):
        # When the conv input is itself an intermediate, its donated
        # gradient buffer is released after the consuming closure ran.
        x, w, b = self._conv_inputs()
        x.requires_grad = False  # leaf image batch, as in training
        pool = WorkspacePool()
        with use_workspaces(pool):
            y = conv_ops.conv2d(x, w, b, stride=2, padding=1)
            z = y.relu()
            z.sum().backward()
        assert pool.free_bytes() == pool.peak_bytes
        assert y.grad is None  # intermediate grads are not retained

    def test_donated_leaf_gradient_is_correct(self):
        # A leaf that requires grad may adopt a pooled buffer; values
        # must match the allocation-per-call run exactly.
        for ws in (False, True):
            x, w, b = self._conv_inputs()
            ctx = use_workspaces() if ws else contextlib.nullcontext()
            with ctx:
                conv_ops.conv2d(x, w, b, stride=2, padding=1).sum().backward()
            if ws:
                got = (x.grad.copy(), w.grad.copy(), b.grad.copy())
            else:
                want = (x.grad.copy(), w.grad.copy(), b.grad.copy())
        for g, e in zip(got, want):
            np.testing.assert_array_equal(g, e)

    def test_double_consumer_accumulation(self):
        # Two relu branches donate into the same tensor: the first
        # donation is adopted, the second is added and recycled.
        data = np.array([[-1.0, 2.0], [3.0, -4.0]], dtype=np.float32)
        x = Tensor(data, requires_grad=True)
        with use_workspaces():
            (x.relu().sum() + x.relu().sum()).backward()
        np.testing.assert_array_equal(
            x.grad, np.array([[0.0, 2.0], [2.0, 0.0]], dtype=np.float32)
        )

    def test_steady_state_training_reuses_buffers(self):
        # Second identical step must be all hits: shapes repeat, buffers
        # recycle, and the footprint stops growing (the leak guard).
        x, w, b = self._conv_inputs()
        x.requires_grad = False
        pool = WorkspacePool()

        def step():
            with use_workspaces(pool):
                y = conv_ops.conv2d(x, w, b, stride=2, padding=1).relu()
                y.sum().backward()
            w.zero_grad()
            b.zero_grad()

        step()
        misses_first, free_first = pool.misses, pool.free_bytes()
        step()
        assert pool.misses == misses_first
        assert pool.free_bytes() == free_first


class TestScatterBounds:
    """The clipped col2im ranges match the padded-buffer formulation."""

    @settings(max_examples=60, deadline=None)
    @given(
        in_len=st.integers(1, 16),
        kernel=st.integers(1, 5),
        stride=st.integers(1, 4),
        padding=st.integers(0, 3),
    )
    def test_bounds_agree_with_direct_enumeration(self, in_len, kernel, stride, padding):
        out_len = conv_ops.conv_output_size(in_len, kernel, stride, padding)
        if out_len < 1 or kernel > in_len + 2 * padding:
            return
        for offset in range(kernel):
            t0, t1 = conv_ops._scatter_axis_bounds(offset, padding, stride, out_len, in_len)
            valid = [
                t for t in range(out_len) if 0 <= offset - padding + stride * t < in_len
            ]
            if not valid:
                assert t1 < t0
            else:
                assert (t0, t1) == (valid[0], valid[-1])
                assert valid == list(range(t0, t1 + 1))
