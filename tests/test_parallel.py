"""Executors, partitioning and LPT scheduling."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    ProcessPoolExecutorBackend,
    SerialExecutor,
    chunk_evenly,
    chunk_fixed,
    lpt_schedule,
    make_executor,
)


def _square(x):
    return x * x


class TestSerialExecutor:
    def test_order_preserved(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(_square, [2]) == [4]


class TestProcessPool:
    def test_matches_serial(self):
        with ProcessPoolExecutorBackend(workers=2, chunksize=2) as pool:
            assert pool.map(_square, list(range(10))) == [x * x for x in range(10)]

    def test_worker_default_positive(self):
        assert ProcessPoolExecutorBackend().workers >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutorBackend(workers=0)
        with pytest.raises(ValueError):
            ProcessPoolExecutorBackend(workers=1, chunksize=0)

    def test_factory(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("process", workers=1), ProcessPoolExecutorBackend)
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_factory_forwards_chunksize(self):
        pool = make_executor("process", workers=2, chunksize=8)
        assert isinstance(pool, ProcessPoolExecutorBackend)
        assert pool.chunksize == 8
        assert pool._effective_chunksize(100) == 8

    def test_auto_chunksize(self):
        pool = ProcessPoolExecutorBackend(workers=4, chunksize=None)
        # max(1, n // (4 * workers)): ~4 chunks per worker.
        assert pool._effective_chunksize(160) == 10
        assert pool._effective_chunksize(3) == 1
        assert pool._effective_chunksize(0) == 1

    def test_auto_chunksize_maps_correctly(self):
        with make_executor("process", workers=2) as pool:
            assert pool.map(_square, list(range(40))) == [x * x for x in range(40)]

    def test_explicit_chunksize_clamped_to_spread(self):
        # An oversized explicit chunksize on a tiny sweep must not ship
        # every task to a single worker: it is capped at ceil(n / workers).
        pool = ProcessPoolExecutorBackend(workers=4, chunksize=64)
        assert pool._effective_chunksize(8) == 2
        assert pool._effective_chunksize(3) == 1
        assert pool._effective_chunksize(1000) == 64  # cap inactive when ample

    def test_empty_map_returns_without_spawning(self):
        pool = ProcessPoolExecutorBackend(workers=2)
        assert pool.map(_square, []) == []
        assert pool._pool is None  # no worker processes were started
        pool.close()


class TestChunking:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(0, 50), parts=st.integers(1, 10))
    def test_chunk_evenly_partitions(self, n, parts):
        items = list(range(n))
        chunks = chunk_evenly(items, parts)
        assert len(chunks) == parts
        assert sum(chunks, []) == items
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_chunk_fixed(self):
        assert chunk_fixed([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)
        with pytest.raises(ValueError):
            chunk_fixed([1], 0)


class TestLpt:
    @settings(max_examples=40, deadline=None)
    @given(
        costs=st.lists(st.floats(0.0, 100.0, allow_nan=False), max_size=40),
        workers=st.integers(1, 6),
    )
    def test_valid_partition(self, costs, workers):
        assignments = lpt_schedule(costs, workers)
        assert len(assignments) == workers
        flat = sorted(task for bucket in assignments for task in bucket)
        assert flat == list(range(len(costs)))

    def test_balances_heterogeneous_costs(self):
        costs = [10.0, 10.0, 1.0] * 4
        loads = [sum(costs[t] for t in bucket) for bucket in lpt_schedule(costs, 4)]
        # LPT guarantee: makespan <= 4/3 OPT (OPT = 21 here).
        assert max(loads) <= 4 / 3 * 21 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            lpt_schedule([1.0], 0)
        with pytest.raises(ValueError):
            lpt_schedule([-1.0], 2)
