"""Integer kernels, Winograd convolution, and compile-time autotuning.

Certification suite for the true-int8 inference path and the kernel
variant registry:

- ``chunked_int_gemm`` is *bit-exact* against int64 integer matmul
  (fuzzed, including K > 512 so the panel loop is exercised);
- the gemmlowp-style fixed-point requantization matches round-to-nearest
  within one code;
- the F(2x2, 3x3) Winograd binder matches the im2col binder to tight
  absolute tolerance across fuzzed odd geometries (padding, C_in=1, the
  24x24 deployment tile, 25x25);
- a fully integer compiled plan certifies against the fp32 interpreter
  within quantization tolerance and agrees on argmax;
- variant forcing validates against eligibility and the registry;
- autotune decisions replay deterministically from the JSON cache, also
  across processes;
- the quantized path materializes zero dequantized fp32 weight copies
  (the lazy-weight invariant).
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.deploy import autotune_variants, compile_plan
from repro.deploy.passes import PlanNode
from repro.deploy.plan import Arena, _bind_conv
from repro.deploy.qkernels import (
    K_CHUNK,
    chunked_int_gemm,
    quantize_multiplier,
    quantize_multipliers,
    requantize,
)
from repro.deploy.runtime import OnnxliteRuntime
from repro.deploy.winograd import WINOGRAD_VARIANT, bind_winograd_conv, winograd_eligible
from repro.latency.fusion import KERNEL_VARIANTS
from repro.nn import SearchableResNet18
from repro.onnxlite.reader import proto_from_bytes
from repro.quant.calibrate import calibrate_activations
from repro.quant.export import export_quantized_model

_relaxed = settings(max_examples=16, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

HW = 24  # the deployment tile


def _model(seed=3):
    return SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                              pool_choice=0, initial_output_feature=32, seed=seed)


def _calibrated_proto(size=HW, seed=3):
    """Quantized export + activation calibration on synthetic patches."""
    proto = proto_from_bytes(export_quantized_model(_model(seed), input_hw=(size, size)))
    rng = np.random.default_rng(seed + 100)
    calibrate_activations(proto, rng.standard_normal((12, 5, size, size)).astype(np.float32))
    return proto


@pytest.fixture(scope="module")
def calibrated_proto():
    return _calibrated_proto()


class TestChunkedIntGemm:
    """The f32-carrier integer GEMM is exact, not approximately right."""

    @_relaxed
    @given(c=st.integers(1, 6), k=st.integers(1, 1300), m=st.integers(1, 48),
           seed=st.integers(0, 2**16))
    def test_bit_exact_vs_int64_matmul(self, c, k, m, seed):
        rng = np.random.default_rng(seed)
        w = rng.integers(-127, 128, size=(c, k)).astype(np.float32)
        a = rng.integers(0, 256, size=(k, m)).astype(np.float32)
        acc = np.empty((c, m), np.float64)
        part = np.empty((c, m), np.float32)
        chunked_int_gemm(w, a, acc, part)
        ref = w.astype(np.int64) @ a.astype(np.int64)
        assert np.array_equal(acc, ref)

    def test_multi_panel_extremes(self):
        """Worst-case magnitudes across several K panels stay exact."""
        k = 3 * K_CHUNK + 17
        w = np.full((2, k), -127, np.float32)
        a = np.full((k, 5), 255, np.float32)
        acc = np.empty((2, 5), np.float64)
        chunked_int_gemm(w, a, acc, np.empty((2, 5), np.float32))
        assert np.array_equal(acc, np.full((2, 5), -127 * 255 * k, np.int64))

    @_relaxed
    @given(m=st.floats(1e-6, 0.999), seed=st.integers(0, 2**16))
    def test_requantize_matches_rounding(self, m, seed):
        """Fixed-point requantization == round(acc * m) + zp within 1 code."""
        m0, shift = quantize_multiplier(m)
        assert 2**30 <= m0 < 2**31
        rng = np.random.default_rng(seed)
        acc = rng.integers(-(2**23), 2**23, size=(4, 32)).astype(np.int64)
        out = np.empty(acc.shape, np.uint8)
        requantize(acc.copy(), m0, shift, zero_point=10, relu=False, out=out)
        exact = np.clip(np.round(acc * m) + 10, 0, 255)
        assert np.abs(out.astype(np.int64) - exact).max() <= 1

    def test_requantize_relu_clamps_at_zero_point(self):
        acc = np.array([[-100000, 0, 100000]], np.int64)
        m0, shift = quantize_multiplier(0.001)
        out = np.empty((1, 3), np.uint8)
        requantize(acc, m0, shift, zero_point=12, relu=True, out=out)
        assert out[0, 0] == 12 and out[0, 1] == 12 and out[0, 2] > 12

    def test_per_channel_multipliers(self):
        scales = np.array([0.5, 0.01, 0.25], np.float64)
        m0, shift = quantize_multipliers(scales)
        acc = np.tile(np.array([[1000]], np.int64), (3, 4))
        out = np.empty((3, 4), np.uint8)
        requantize(acc, m0, shift, zero_point=0, relu=False, out=out, axis=0)
        assert out[:, 0].tolist() == [255, 10, 250]  # 500 clips, 10, 250


def _conv_node(c_out, c_in, padding, relu, seed):
    rng = np.random.default_rng(seed)
    return PlanNode(
        name="conv", op_type="Conv", inputs=["x"], output="y",
        attrs={"kernel": 3, "stride": 1, "padding": padding},
        relu=relu,
        weights={
            "weight": (rng.standard_normal((c_out, c_in, 3, 3)) * 0.3).astype(np.float32),
            "bias": rng.standard_normal(c_out).astype(np.float32),
        },
    )


class TestWinograd:
    """F(2x2, 3x3) output transform equivalence against im2col."""

    def _compare(self, c_out, c_in, h, w, padding, relu, batch, seed=0):
        node = _conv_node(c_out, c_in, padding, relu, seed)
        oh, ow = h + 2 * padding - 2, w + 2 * padding - 2
        in_shape, out_shape = (c_in, h, w), (c_out, oh, ow)
        rng = np.random.default_rng(seed + 1)
        x = rng.standard_normal((batch, *in_shape)).astype(np.float32)
        ref = _bind_conv(node, in_shape, out_shape, Arena())({"x": x})
        got = bind_winograd_conv(node, in_shape, out_shape, Arena())({"x": x})
        np.testing.assert_allclose(got, ref, atol=5e-5, rtol=1e-5)

    @_relaxed
    @given(c_out=st.sampled_from((1, 4, 9)), c_in=st.sampled_from((1, 3, 8)),
           h=st.integers(3, 26), w=st.integers(3, 26),
           padding=st.sampled_from((0, 1)), relu=st.booleans(),
           batch=st.sampled_from((1, 3)), seed=st.integers(0, 99))
    def test_fuzzed_geometries(self, c_out, c_in, h, w, padding, relu, batch, seed):
        self._compare(c_out, c_in, h, w, padding, relu, batch, seed)

    @pytest.mark.parametrize("hw", [HW, 25])
    def test_deployment_tile_and_odd_neighbor(self, hw):
        """24x24 (even tiles) and 25x25 (bottom/right crop) both match."""
        self._compare(c_out=16, c_in=8, h=hw, w=hw, padding=1, relu=True, batch=2)

    def test_eligibility(self):
        assert winograd_eligible({"kernel": 3, "stride": 1})
        assert not winograd_eligible({"kernel": 3, "stride": 2})
        assert not winograd_eligible({"kernel": 7, "stride": 1})


class TestIntegerPlanCertification:
    """The all-integer compiled plan vs the fp32 interpreted reference."""

    def test_integer_plan_matches_interpreter(self, calibrated_proto):
        runtime = OnnxliteRuntime(calibrated_proto)
        plan = runtime.compile()
        variants = plan.kernel_variants()
        # Every Conv/Gemm actually took an integer kernel by default.
        leads = {name: v for name, v in variants.items()
                 if v.startswith(("conv.", "gemm."))}
        assert leads and all(v.endswith(".int8") for v in leads.values()), variants
        rng = np.random.default_rng(7)
        x = rng.standard_normal((32, 5, HW, HW)).astype(np.float32)
        ref = runtime.run(x)
        got = plan.run(x)
        # Quantization tolerance: uint8 activation grids accumulate a
        # few LSBs of noise through 20+ integer layers; empirically the
        # worst logit error is ~0.01 on a ~0.9 logit range, so 0.08
        # fails loudly on any real kernel bug while never flaking.
        assert np.abs(got - ref).max() <= 0.08
        agreement = float((got.argmax(axis=1) == ref.argmax(axis=1)).mean())
        assert agreement >= 0.9

    def test_variants_subset_of_registry(self, calibrated_proto):
        plan = compile_plan(calibrated_proto)
        registry = {v for names in KERNEL_VARIANTS.values() for v in names}
        assert set(plan.kernel_variants().values()) <= registry

    def test_forcing_f32_demotes_chain(self, calibrated_proto):
        plan = compile_plan(calibrated_proto)
        conv_int8 = [n for n, v in plan.kernel_variants().items()
                     if v == "conv.im2col.int8"]
        forced = compile_plan(calibrated_proto, variants={conv_int8[0]: "conv.im2col.f32"})
        assert forced.kernel_variants()[conv_int8[0]] == "conv.im2col.f32"
        rng = np.random.default_rng(11)
        x = rng.standard_normal((4, 5, HW, HW)).astype(np.float32)
        np.testing.assert_allclose(forced.run(x), plan.run(x), atol=0.08)

    def test_forcing_unknown_variant_raises(self, calibrated_proto):
        with pytest.raises(ValueError, match="variant"):
            compile_plan(calibrated_proto, variants={"conv1": "conv.fft.f32"})

    def test_forcing_winograd_on_strided_conv_raises(self, calibrated_proto):
        # conv1 is the stride-2 stem: not F(2x2, 3x3) eligible.
        with pytest.raises(ValueError):
            compile_plan(calibrated_proto, variants={"conv1": WINOGRAD_VARIANT})

    def test_forcing_int8_without_calibration_raises(self):
        proto = proto_from_bytes(export_quantized_model(_model(), input_hw=(HW, HW)))
        with pytest.raises(ValueError):
            compile_plan(proto, variants={"conv1": "conv.im2col.int8"})


class TestLazyWeightInvariant:
    """The integer path never pays for dequantized fp32 weight copies."""

    def test_zero_fp32_materialization(self, calibrated_proto):
        runtime = OnnxliteRuntime(calibrated_proto)
        plan = runtime.compile()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 5, HW, HW)).astype(np.float32)
        plan.run(x)
        table = runtime._weights
        # Conv/Gemm weights stayed integer codes end to end: zero bytes
        # of dequantized copies (BN params and biases are unquantized,
        # so their direct access contributes nothing here).
        assert table.materialized_bytes() == 0
        quantized = {name for name in table
                     if table.tensor(name).quantized}
        assert quantized and not (table.materialized & quantized)

    def test_arena_steady_state(self, calibrated_proto):
        plan = compile_plan(calibrated_proto)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 5, HW, HW)).astype(np.float32)
        plan.run(x)  # warm: sizes all buckets
        allocations = plan.memory_stats()["allocations"]
        for _ in range(3):
            plan.run(x)
        assert plan.memory_stats()["allocations"] == allocations


class TestAutotune:
    def test_decisions_are_registry_members_and_cache_replays(self, calibrated_proto, tmp_path):
        cache = tmp_path / "autotune.json"
        first = autotune_variants(calibrated_proto, batch=2, rounds=1, cache_path=cache)
        assert not first.cached and first.variants
        for name, row in first.table.items():
            assert row["chosen"] in KERNEL_VARIANTS[row["op_type"]]
            assert row["chosen"] == first.variants[name]
            assert set(row["timings_us"]) >= {row["chosen"]}
        second = autotune_variants(calibrated_proto, batch=2, rounds=1, cache_path=cache)
        assert second.cached and second.variants == first.variants
        # A different batch is a different cache key (crossovers move).
        other = autotune_variants(calibrated_proto, batch=4, rounds=1, cache_path=cache)
        assert not other.cached
        # The tuned plan compiles and runs.
        plan = compile_plan(calibrated_proto, variants=first.variants)
        out = plan.run(np.zeros((2, 5, HW, HW), np.float32))
        assert out.shape == (2, 2)

    def test_corrupt_cache_is_a_miss_and_heals(self, calibrated_proto, tmp_path):
        """An unreadable cache file must not crash tuning — it re-tunes
        and atomically rewrites a valid store over the garbage."""
        cache = tmp_path / "autotune.json"
        cache.write_text("not json{{{")
        res = autotune_variants(calibrated_proto, batch=2, rounds=1, cache_path=cache)
        assert not res.cached and res.variants
        again = autotune_variants(calibrated_proto, batch=2, rounds=1, cache_path=cache)
        assert again.cached and again.variants == res.variants

    def test_cache_determinism_across_processes(self, calibrated_proto, tmp_path):
        """A second *process* sharing the cache compiles the same variant map."""
        cache = tmp_path / "autotune.json"
        local = autotune_variants(calibrated_proto, batch=2, rounds=1, cache_path=cache)
        script = f"""
import json
import numpy as np
from repro.deploy import autotune_variants
from repro.nn import SearchableResNet18
from repro.onnxlite.reader import proto_from_bytes
from repro.quant.calibrate import calibrate_activations
from repro.quant.export import export_quantized_model

model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                           pool_choice=0, initial_output_feature=32, seed=3)
proto = proto_from_bytes(export_quantized_model(model, input_hw=({HW}, {HW})))
rng = np.random.default_rng(103)
calibrate_activations(proto, rng.standard_normal((12, 5, {HW}, {HW})).astype(np.float32))
res = autotune_variants(proto, batch=2, rounds=1, cache_path={str(cache)!r})
print(json.dumps({{"cached": res.cached, "variants": res.variants}}))
"""
        src = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.run([sys.executable, "-c", script], capture_output=True,
                              text=True, env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr
        remote = json.loads(proc.stdout.strip().splitlines()[-1])
        # Same model + same calibration stream -> same fingerprint -> the
        # sibling process replays the cached decisions verbatim.
        assert remote["cached"] is True
        assert remote["variants"] == local.variants
