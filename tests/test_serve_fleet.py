"""Fleet serving: routing, admission control, SLO expiry, autoscaling.

Covers the multi-tenant serving fleet acceptance criteria:

- the routing rule (`repro.latency.select_model`): cheapest model
  meeting the accuracy floor and device budget, load spill, hard-floor
  failure, soft-budget fallback;
- admission-control properties: token-bucket fairness under two
  competing tenants, priority preemption ordering, deadline-expired
  requests rejected *without executing*, and bitwise-identical outputs
  for admitted requests vs a no-admission `PlanServer` run;
- the autoscaler scaling up under a load step and back down after
  drain, asserted through `repro.obs` gauges;
- the `ServeConfig` consolidation (legacy-kwarg deprecation counter)
  and the `MicroBatcher` condition-wakeup fix (no busy-polling while
  idle).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.deploy import load_runtime
from repro.latency import (
    ModelCandidate,
    NoFeasibleModel,
    select_model,
)
from repro.nn import SearchableResNet18
from repro.obs import registry
from repro.onnxlite.export import export_model
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    AutoscalerConfig,
    BatchPolicy,
    DeadlineExceeded,
    FleetServer,
    MicroBatcher,
    PlanServer,
    ServeConfig,
    ServeRequest,
    ServeResponse,
    TenantLoad,
    TenantOverloaded,
    TenantQuota,
    TokenBucket,
    run_fleet_load,
)

HW = 24  # deployment tile (fast, merged-GEMM regime)


def _model(width: int = 32, seed: int = 3) -> SearchableResNet18:
    return SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                              pool_choice=0, initial_output_feature=width, seed=seed)


@pytest.fixture(scope="module")
def plan_s():
    return load_runtime(export_model(_model(32, seed=1), input_hw=(HW, HW))).compile()


@pytest.fixture(scope="module")
def plan_m():
    return load_runtime(export_model(_model(48, seed=2), input_hw=(HW, HW))).compile()


def _images(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 5, HW, HW)).astype(np.float32)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# --------------------------------------------------------------------------
# routing rule (pure)
# --------------------------------------------------------------------------


CANDS = [
    ModelCandidate("small", accuracy=90.0, latency_ms={"mean": 3.0, "cpu": 5.0}),
    ModelCandidate("mid", accuracy=94.0, latency_ms={"mean": 6.0, "cpu": 11.0}),
    ModelCandidate("large", accuracy=96.0, latency_ms={"mean": 11.0, "cpu": 22.0}),
]


class TestSelectModel:
    def test_cheapest_fitting_model_wins(self):
        sel = select_model(CANDS, budget_ms=7.0)
        assert sel.name == "small"
        assert sel.fits_budget
        assert sel.predicted_ms == 3.0

    def test_accuracy_floor_excludes_cheap_models(self):
        sel = select_model(CANDS, budget_ms=7.0, accuracy_floor=93.0)
        assert sel.name == "mid"
        assert sel.fits_budget

    def test_unsatisfiable_floor_raises(self):
        with pytest.raises(NoFeasibleModel):
            select_model(CANDS, accuracy_floor=99.0)

    def test_budget_unmeetable_serves_fastest_and_flags(self):
        sel = select_model(CANDS, budget_ms=1.0)
        assert sel.name == "small"  # fastest floor-satisfying model
        assert not sel.fits_budget

    def test_device_column_used_for_budget(self):
        # 8 ms on "cpu" admits only the small model's 5 ms.
        sel = select_model(CANDS, budget_ms=8.0, device="cpu")
        assert sel.name == "small"
        assert sel.predicted_ms == 5.0

    def test_queue_load_spills_to_next_feasible_model(self):
        # Both fit a 12 ms budget; heavy load on "small" inflates its
        # effective cost past "mid" (3 * 3 > 6 * 1).
        sel = select_model(CANDS, budget_ms=12.0, load={"small": 2.0})
        assert sel.name == "mid"
        # predicted_ms stays the raw prediction, not the inflated cost.
        assert sel.predicted_ms == 6.0
        assert sel.effective_ms == 6.0

    def test_unknown_device_is_loud(self):
        with pytest.raises(KeyError):
            select_model(CANDS, budget_ms=5.0, device="tpu")


# --------------------------------------------------------------------------
# admission control
# --------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.1)  # one token refilled
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_unlimited_rate_always_admits(self):
        bucket = TokenBucket(rate_per_s=None, burst=1, clock=FakeClock())
        assert all(bucket.try_take() for _ in range(1000))

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_take() for _ in range(3)] == [True, True, False]


class TestAdmissionFairness:
    def test_flooding_tenant_does_not_starve_the_other(self):
        clock = FakeClock()
        policy = AdmissionPolicy(tenants={
            "flood": TenantQuota(rate_per_s=100.0, burst=5),
            "calm": TenantQuota(rate_per_s=100.0, burst=5),
        })
        ctrl = AdmissionController(policy, clock=clock)
        flood_rejections = 0
        for _ in range(50):
            try:
                ctrl.admit("flood")
            except TenantOverloaded:
                flood_rejections += 1
        assert flood_rejections == 45  # burst of 5 admitted, rest shed
        # The calm tenant's bucket is untouched by the flood.
        for _ in range(5):
            ctrl.admit("calm")
        stats = ctrl.stats()
        assert stats["admitted"] == {"flood": 5, "calm": 5}
        assert stats["rejected"] == {"flood": 45, "calm": 0}

    def test_default_quota_applies_to_unknown_tenants(self):
        ctrl = AdmissionController(
            AdmissionPolicy(default=TenantQuota(rate_per_s=1.0, burst=1)),
            clock=FakeClock(),
        )
        ctrl.admit("anyone")
        with pytest.raises(TenantOverloaded):
            ctrl.admit("anyone")

    def test_batcher_enforces_admission_and_tenant_priority(self):
        clock = FakeClock()
        ctrl = AdmissionController(AdmissionPolicy(tenants={
            "vip": TenantQuota(rate_per_s=100.0, burst=2, priority=7),
        }), clock=clock)
        b = MicroBatcher(max_batch_size=8, max_queue_delay_ms=1000,
                         max_queue_depth=16, clock=clock, admission=ctrl)
        b.submit_request(ServeRequest(image=0, tenant="vip"))
        b.submit_request(ServeRequest(image=1, tenant="vip"))
        with pytest.raises(TenantOverloaded):
            b.submit_request(ServeRequest(image=2, tenant="vip"))
        b.close()
        batch = b.next_batch()
        # Priority defaulted from the tenant quota, not explicit.
        assert [r.priority for r in batch] == [7, 7]


class TestPriorityPreemption:
    def test_higher_class_pops_first_fifo_within_class(self):
        b = MicroBatcher(max_batch_size=2, max_queue_delay_ms=1000, max_queue_depth=16)
        for i in range(4):
            b.submit_request(ServeRequest(image=("low", i), priority=0))
        for i in range(2):
            b.submit_request(ServeRequest(image=("high", i), priority=1))
        b.close()  # drain mode: batches release immediately
        order = []
        while (batch := b.next_batch()) is not None:
            order.append([r.x for r in batch])
        assert order == [
            [("high", 0), ("high", 1)],
            [("low", 0), ("low", 1)],
            [("low", 2), ("low", 3)],
        ]

    def test_default_class_preserves_pure_fifo(self):
        b = MicroBatcher(max_batch_size=3, max_queue_delay_ms=1000, max_queue_depth=16)
        for i in range(6):
            b.submit(i)
        b.close()
        assert [r.x for r in b.next_batch()] == [0, 1, 2]
        assert [r.x for r in b.next_batch()] == [3, 4, 5]


class TestDeadlineExpiry:
    def test_expired_request_fails_fast_without_executing(self):
        clock = FakeClock()
        b = MicroBatcher(max_batch_size=1, max_queue_delay_ms=0,
                         max_queue_depth=16, clock=clock)
        doomed = b.submit_request(ServeRequest(image="doomed", deadline_ms=10.0))
        alive = b.submit_request(ServeRequest(image="alive", deadline_ms=10_000.0))
        clock.advance(0.05)  # 50 ms >> the 10 ms SLO
        batch = b.next_batch()
        # The expired request never reaches a worker; the live one does.
        assert [r.x for r in batch] == ["alive"]
        assert b.expired == 1
        with pytest.raises(DeadlineExceeded):
            doomed.result(timeout=1)
        assert not alive.done()

    def test_dead_on_arrival_is_rejected_at_submit(self):
        b = MicroBatcher(max_batch_size=4, max_queue_delay_ms=1000, max_queue_depth=16)
        fut = b.submit_request(ServeRequest(image=0, deadline_ms=0.0))
        with pytest.raises(DeadlineExceeded):
            fut.result(timeout=1)
        assert b.depth == 0
        assert b.expired == 1

    def test_met_deadline_reported_on_response(self, plan_s):
        with FleetServer(ServeConfig(warm=False)) as fleet:
            fleet.register("only", plan_s)
            resp = fleet.infer(ServeRequest(image=_images(1)[0], deadline_ms=30_000.0))
        assert isinstance(resp, ServeResponse)
        assert resp.deadline_met is True
        assert resp.total_ms > 0
        assert resp.queue_ms >= 0
        assert resp.exec_ms > 0


# --------------------------------------------------------------------------
# fleet routing + bitwise identity
# --------------------------------------------------------------------------


def _two_model_fleet(plan_s, plan_m, **config_kw) -> FleetServer:
    fleet = FleetServer(ServeConfig(
        policy=BatchPolicy(max_batch_size=4, max_queue_delay_ms=1.0,
                           max_queue_depth=64),
        warm=False,
        **config_kw,
    ))
    fleet.register("small", plan_s, accuracy=90.0,
                   latency_ms={"mean": 3.0, "cpu": 5.0})
    fleet.register("mid", plan_m, accuracy=94.0,
                   latency_ms={"mean": 6.0, "cpu": 11.0})
    return fleet


class TestFleetRouting:
    def test_requests_route_within_their_budgets(self, plan_s, plan_m):
        x = _images(1)[0]
        with _two_model_fleet(plan_s, plan_m) as fleet:
            tight = fleet.infer(ServeRequest(image=x, budget_ms=4.0))
            floor = fleet.infer(ServeRequest(image=x, accuracy_floor=92.0,
                                             budget_ms=20.0))
            pinned = fleet.infer(ServeRequest(image=x, model="mid"))
        assert tight.model == "small" and tight.predicted_ms <= 4.0
        assert floor.model == "mid" and floor.predicted_ms <= 20.0
        assert pinned.model == "mid"

    def test_unsatisfiable_floor_raises_at_submit(self, plan_s, plan_m):
        with _two_model_fleet(plan_s, plan_m) as fleet:
            with pytest.raises(NoFeasibleModel):
                fleet.submit(ServeRequest(image=_images(1)[0], accuracy_floor=99.9))

    def test_unknown_model_hint_raises(self, plan_s, plan_m):
        with _two_model_fleet(plan_s, plan_m) as fleet:
            with pytest.raises(KeyError):
                fleet.submit(ServeRequest(image=_images(1)[0], model="nonesuch"))

    def test_mismatched_input_shape_rejected_at_register(self, plan_s):
        other = load_runtime(
            export_model(_model(32, seed=9), input_hw=(HW * 2, HW * 2))
        ).compile()
        with FleetServer(ServeConfig(warm=False)) as fleet:
            fleet.register("a", plan_s)
            with pytest.raises(ValueError, match="input shape"):
                fleet.register("b", other)

    def test_process_mode_is_rejected(self):
        with pytest.raises(ValueError, match="thread-mode only"):
            FleetServer(ServeConfig(policy=BatchPolicy(worker_mode="process")))

    def test_mixed_tenant_load_routes_and_attains_slo(self, plan_s, plan_m):
        with _two_model_fleet(plan_s, plan_m, admission=AdmissionPolicy(tenants={
            "interactive": TenantQuota(rate_per_s=4000, burst=256, priority=1),
            "analytics": TenantQuota(rate_per_s=4000, burst=256),
        })) as fleet:
            report = run_fleet_load(
                fleet,
                [
                    TenantLoad(name="interactive", clients=3, budget_ms=6.0,
                               device="cpu", deadline_ms=1000.0),
                    TenantLoad(name="analytics", clients=2, model="mid",
                               deadline_ms=2000.0),
                ],
                duration_s=0.8,
            )
        assert report.served > 0
        assert report.errors == 0
        # Every routed request fit its declared budget...
        assert report.all_routes_fit_budget
        assert report.per_model.get("small", 0) > 0
        assert report.per_model.get("mid", 0) > 0
        # ...and the wall-clock SLOs (sized generously) held.
        assert report.slo_attainment >= 0.95

    def test_admitted_outputs_bitwise_identical_to_plan_server(self, plan_s, plan_m):
        # Same images through (a) the fleet with admission control active
        # and (b) a bare single-model PlanServer with no admission.
        # max_batch_size=1 pins both paths to the bucket-1 replica shape.
        images = _images(6, seed=42)
        admission = AdmissionPolicy(
            default=TenantQuota(rate_per_s=10_000.0, burst=64)
        )
        policy = BatchPolicy(max_batch_size=1, max_queue_delay_ms=0.5,
                             max_queue_depth=64)
        with FleetServer(ServeConfig(policy=policy, warm=False,
                                     admission=admission)) as fleet:
            fleet.register("small", plan_s, accuracy=90.0,
                           latency_ms={"mean": 3.0})
            fleet.register("mid", plan_m, accuracy=94.0,
                           latency_ms={"mean": 6.0})
            fleet_rows = [
                fleet.infer(ServeRequest(image=x, budget_ms=4.0)).row
                for x in images
            ]
        with PlanServer(plan_s.replicate(),
                        config=ServeConfig(policy=policy, warm=False)) as server:
            serial_rows = [server.infer(x) for x in images]
        for got, want in zip(fleet_rows, serial_rows):
            np.testing.assert_array_equal(got, want)


# --------------------------------------------------------------------------
# autoscaler
# --------------------------------------------------------------------------


class TestAutoscaler:
    def test_scales_up_under_load_step_and_down_after_drain(self, plan_s):
        obs.configure(reset_metrics=True)
        try:
            fleet = FleetServer(ServeConfig(
                policy=BatchPolicy(max_batch_size=2, max_queue_delay_ms=0.5,
                                   max_queue_depth=256),
                warm=False,
                autoscaler=AutoscalerConfig(
                    min_replicas=0, max_replicas=2,
                    scale_up_depth=3, scale_down_idle_ticks=2,
                ),
            ))
            fleet.register("only", plan_s)

            def gauge() -> float:
                for inst in registry().find("repro_serve_fleet_replicas"):
                    if inst.labels.get("model") == "only":
                        return inst.value
                return -1.0

            assert fleet.replicas("only") == 1
            assert gauge() == 1.0

            # Idle ticks retire the last replica (min_replicas=0).
            assert fleet.scale_tick() == []
            events = fleet.scale_tick()
            assert [e["action"] for e in events] == ["down"]
            assert fleet.replicas("only") == 0
            assert gauge() == 0.0
            deadline = time.monotonic() + 5
            while any(
                t.is_alive() for t in fleet._units["only"].workers.values()
            ) and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not fleet._units["only"].workers

            # Load step: with no workers the queue builds past the trigger.
            futures = [
                fleet.submit(ServeRequest(image=x)) for x in _images(8, seed=7)
            ]
            assert fleet._units["only"].batcher.depth == 8
            events = fleet.scale_tick()
            assert [e["action"] for e in events] == ["up"]
            assert fleet.replicas("only") == 1
            assert gauge() == 1.0
            if fleet._units["only"].batcher.depth > 3:
                # Still pressed on the next tick: second replica.
                events = fleet.scale_tick()
                if events:
                    assert events[0]["action"] == "up"
                    assert gauge() == 2.0
            rows = [f.result(timeout=30) for f in futures]
            assert all(r.row.shape == rows[0].row.shape for r in rows)

            # Drain: consecutive idle ticks scale back down to zero.
            deadline = time.monotonic() + 5
            while fleet.replicas("only") > 0 and time.monotonic() < deadline:
                fleet.scale_tick()
                time.sleep(0.01)
            assert fleet.replicas("only") == 0
            assert gauge() == 0.0
            actions = [e["action"] for e in fleet.scale_events]
            assert "up" in actions and "down" in actions
            assert registry().counter_value("repro_serve_fleet_scale_up_total") >= 1
            assert registry().counter_value("repro_serve_fleet_scale_down_total") >= 2
            fleet.close()
        finally:
            obs.shutdown()

    def test_scale_up_warms_cache_off_hot_path(self, plan_s):
        fleet = FleetServer(ServeConfig(
            policy=BatchPolicy(max_batch_size=2, max_queue_delay_ms=0.5,
                               max_queue_depth=256),
            warm=True,
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=2,
                                        scale_up_depth=1),
        ))
        try:
            fleet.register("only", plan_s)
            warmed = fleet.cache.stats()["pooled_entries"]
            # Park the queue over the trigger, then tick: the new
            # replica's entries appear in the pool before its worker
            # ever runs a batch.
            futures = [fleet.submit(ServeRequest(image=x)) for x in _images(6)]
            fleet.scale_tick()
            assert fleet.replicas("only") == 2
            assert fleet.cache.stats()["pooled_entries"] > warmed
            for f in futures:
                f.result(timeout=30)
        finally:
            fleet.close()


# --------------------------------------------------------------------------
# ServeConfig consolidation + idle-CPU fix
# --------------------------------------------------------------------------


class TestServeConfig:
    def test_legacy_kwargs_tick_deprecation_counter(self, plan_s):
        obs.configure(reset_metrics=True)
        try:
            before = registry().counter_value(
                "repro_serve_deprecated_api_total", api="PlanServer.__init__")
            with PlanServer(plan_s.replicate(), policy=BatchPolicy(), warm=False):
                pass
            after_legacy = registry().counter_value(
                "repro_serve_deprecated_api_total", api="PlanServer.__init__")
            assert after_legacy == before + 1
            with PlanServer(plan_s.replicate(), config=ServeConfig(warm=False)):
                pass
            assert registry().counter_value(
                "repro_serve_deprecated_api_total",
                api="PlanServer.__init__") == after_legacy
        finally:
            obs.shutdown()

    def test_config_and_legacy_kwargs_are_mutually_exclusive(self, plan_s):
        with pytest.raises(ValueError, match="not both"):
            PlanServer(plan_s.replicate(), policy=BatchPolicy(),
                       config=ServeConfig())

    def test_effective_config_reflects_replica_clamp(self, plan_s):
        server = PlanServer(
            plan_s.replicate(),
            config=ServeConfig(policy=BatchPolicy(replicas=64), warm=False,
                               cpus=2),
        )
        try:
            assert server.config.policy.replicas == 2
            assert server.policy.replicas == 2
        finally:
            server.close()

    def test_as_dict_round_trips_to_json(self):
        import json

        cfg = ServeConfig(
            policy=BatchPolicy(max_batch_size=4),
            admission=AdmissionPolicy(tenants={"t": TenantQuota(rate_per_s=10)}),
            autoscaler=AutoscalerConfig(),
        )
        payload = json.loads(json.dumps(cfg.as_dict()))
        assert payload["policy"]["max_batch_size"] == 4
        assert payload["admission"]["tenants"]["t"]["rate_per_s"] == 10
        assert payload["autoscaler"]["max_replicas"] == 4


class TestIdleCpu:
    def test_idle_server_burns_no_cpu(self, plan_s):
        # The old next_batch(poll_s=0.05) woke every worker 20x/s on an
        # empty queue.  With the condition-variable wait an idle server
        # never wakes: zero idle wakeups and ~zero process CPU time.
        with PlanServer(plan_s.replicate(),
                        config=ServeConfig(
                            policy=BatchPolicy(replicas=2),
                            warm=False, cpus=2)) as server:
            time.sleep(0.2)  # let workers reach their waits
            cpu0 = time.process_time()
            t0 = time.monotonic()
            time.sleep(0.5)
            cpu_used = time.process_time() - cpu0
            elapsed = time.monotonic() - t0
            assert server.batcher.idle_wakeups == 0
            assert cpu_used < 0.2 * elapsed

    def test_consumer_still_wakes_on_submit_after_idle(self):
        b = MicroBatcher(max_batch_size=1, max_queue_delay_ms=0, max_queue_depth=4)
        got: list = []

        def consume():
            batch = b.next_batch()
            got.append([r.x for r in batch])

        t = threading.Thread(target=consume, daemon=True)
        t.start()
        time.sleep(0.1)  # consumer parks on the untimed wait
        b.submit(123)
        t.join(timeout=5)
        assert got == [[123]]

    def test_kick_wakes_stopped_consumer(self):
        b = MicroBatcher(max_batch_size=4, max_queue_delay_ms=1000, max_queue_depth=16)
        stop = threading.Event()
        out: list = []

        def consume():
            out.append(b.next_batch(stop=stop.is_set))

        t = threading.Thread(target=consume, daemon=True)
        t.start()
        time.sleep(0.1)
        stop.set()
        b.kick()
        t.join(timeout=5)
        assert out == [None]
