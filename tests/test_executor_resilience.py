"""Resilient executor tests: per-item isolation, pool respawn, degradation.

The process-pool tests spawn real worker processes and kill them with
``os._exit`` through a file latch (:class:`repro.faults.KillSwitch`), so
each kill fires exactly once even across pool respawns.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import KillSwitch
from repro.parallel import (
    MapItemResult,
    ProcessPoolExecutorBackend,
    SerialExecutor,
)

# --------------------------------------------------------------------------
# Top-level task functions (must be picklable for the process backend).
# --------------------------------------------------------------------------


def _square(x):
    return x * x


def _poison(x):
    if x == 3:
        raise ValueError("poisoned item")
    return x * 2


def _fail_once(task):
    """Fail on the first execution (latch file absent), succeed after."""
    latch_path, x = task
    if KillSwitch(latch_path).acquire():
        raise RuntimeError("first attempt fails")
    return x + 100


def _maybe_kill(task):
    """Kill the worker process once (latch-guarded), else return the item."""
    latch_path, x, kill_value = task
    if x == kill_value:
        KillSwitch(latch_path).fire_once(exit_code=42)
    return x * 10


def _die_unless_parent(task):
    """Kill any process that is not the parent (degradation driver)."""
    parent_pid, x = task
    if os.getpid() != parent_pid:
        os._exit(43)
    return x + 1


class _Flaky:
    """Callable failing the first ``fail_times`` invocations per item."""

    def __init__(self, fail_times=1):
        self.fail_times = fail_times
        self.calls = {}

    def __call__(self, x):
        n = self.calls.get(x, 0) + 1
        self.calls[x] = n
        if n <= self.fail_times:
            raise OSError(f"flaky failure #{n}")
        return x * 3


# --------------------------------------------------------------------------
# Serial backend
# --------------------------------------------------------------------------


class TestSerialMapResilient:
    def test_all_ok_preserves_order(self):
        results = SerialExecutor().map_resilient(_square, [3, 1, 2])
        assert [r.index for r in results] == [0, 1, 2]
        assert [r.value for r in results] == [9, 1, 4]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_poisoned_item_is_isolated(self):
        results = SerialExecutor().map_resilient(_poison, [1, 3, 5])
        assert [r.ok for r in results] == [True, False, True]
        bad = results[1]
        assert bad.error_type == "ValueError" and "poisoned" in bad.error
        assert results[0].value == 2 and results[2].value == 10

    def test_unwrap(self):
        ok, bad = SerialExecutor().map_resilient(_poison, [1, 3])
        assert ok.unwrap() == 2
        with pytest.raises(RuntimeError, match="ValueError"):
            bad.unwrap()

    def test_retries_recover_flaky_item(self):
        flaky = _Flaky(fail_times=1)
        results = SerialExecutor().map_resilient(flaky, [4, 5], retries=1)
        assert all(r.ok for r in results)
        assert [r.attempts for r in results] == [2, 2]
        assert [r.value for r in results] == [12, 15]

    def test_retries_exhausted(self):
        flaky = _Flaky(fail_times=5)
        (result,) = SerialExecutor().map_resilient(flaky, [7], retries=2)
        assert not result.ok and result.attempts == 3
        assert result.error_type == "OSError"

    def test_fatal_error_propagates(self):
        def boom(_):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            SerialExecutor().map_resilient(boom, [1])

    def test_empty_items(self):
        assert SerialExecutor().map_resilient(_square, []) == []


# --------------------------------------------------------------------------
# Process backend
# --------------------------------------------------------------------------


class TestProcessMapResilient:
    def test_all_ok(self):
        with ProcessPoolExecutorBackend(workers=2) as ex:
            results = ex.map_resilient(_square, [1, 2, 3, 4])
        assert [r.value for r in results] == [1, 4, 9, 16]
        assert all(isinstance(r, MapItemResult) and r.ok for r in results)
        assert ex.stats == {"pool_deaths": 0, "requeued_items": 0, "degraded": False}

    def test_poisoned_item_is_isolated(self):
        with ProcessPoolExecutorBackend(workers=2) as ex:
            results = ex.map_resilient(_poison, [1, 3, 5, 7])
        assert [r.ok for r in results] == [True, False, True, True]
        assert results[1].error_type == "ValueError"
        assert ex.pool_deaths == 0

    def test_retries_in_pool(self, tmp_path):
        tasks = [(str(tmp_path / "latch-a"), 1), (str(tmp_path / "latch-b"), 2)]
        with ProcessPoolExecutorBackend(workers=2) as ex:
            results = ex.map_resilient(_fail_once, tasks, retries=1)
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [101, 102]
        assert all(r.attempts == 2 for r in results)

    def test_worker_kill_respawns_and_requeues(self, tmp_path):
        latch = str(tmp_path / "kill-latch")
        tasks = [(latch, x, 2) for x in range(5)]
        with ProcessPoolExecutorBackend(workers=2) as ex:
            results = ex.map_resilient(_maybe_kill, tasks)
        # Every item succeeds: the killed worker's in-flight items are
        # requeued onto a fresh pool, and the latch stops a second kill.
        assert all(r.ok for r in results), [r.error for r in results]
        assert [r.value for r in results] == [0, 10, 20, 30, 40]
        assert ex.pool_deaths == 1
        assert ex.requeued_items >= 1
        assert not ex.degraded
        assert any(r.requeues >= 1 for r in results)

    def test_degrades_to_serial_after_repeated_deaths(self):
        parent = os.getpid()
        tasks = [(parent, x) for x in range(4)]
        with ProcessPoolExecutorBackend(workers=2, max_pool_deaths=2, max_requeues=5) as ex:
            results = ex.map_resilient(_die_unless_parent, tasks)
        # Workers always die; after two consecutive pool deaths the
        # backend runs the remainder in this (parent) process.
        assert ex.degraded
        assert ex.pool_deaths == 2
        assert all(r.ok for r in results), [r.error for r in results]
        assert [r.value for r in results] == [1, 2, 3, 4]

    def test_max_requeues_zero_gives_up_on_items(self):
        parent = os.getpid()
        tasks = [(parent, x) for x in range(3)]
        with ProcessPoolExecutorBackend(workers=2, max_pool_deaths=5, max_requeues=0) as ex:
            results = ex.map_resilient(_die_unless_parent, tasks)
        # One pool death, no requeues allowed: every in-flight item is
        # recorded as failed rather than retried forever.
        assert all(not r.ok for r in results)
        assert all(r.error_type == "BrokenProcessPool" for r in results)
        assert ex.pool_deaths == 1

    def test_degraded_backend_runs_serial(self):
        ex = ProcessPoolExecutorBackend(workers=2)
        ex.degraded = True
        results = ex.map_resilient(_square, [2, 3])
        assert [r.value for r in results] == [4, 9]
        assert ex._pool is None  # no pool was ever spawned

    def test_empty_items_spawn_no_pool(self):
        ex = ProcessPoolExecutorBackend(workers=2)
        assert ex.map_resilient(_square, []) == []
        assert ex._pool is None


class TestPlainMapRecovery:
    def test_broken_pool_raises_but_next_map_succeeds(self, tmp_path):
        """Satellite fix: plain ``map`` no longer leaves ``_pool`` broken."""
        from concurrent.futures.process import BrokenProcessPool

        latch = str(tmp_path / "map-latch")
        tasks = [(latch, x, 1) for x in range(3)]
        with ProcessPoolExecutorBackend(workers=2) as ex:
            with pytest.raises(BrokenProcessPool):
                ex.map(_maybe_kill, tasks)
            assert ex.pool_deaths == 1
            # The broken pool was discarded: this map respawns and works.
            assert ex.map(_square, [5, 6]) == [25, 36]
            assert ex._consecutive_deaths == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutorBackend(max_pool_deaths=0)
        with pytest.raises(ValueError):
            ProcessPoolExecutorBackend(max_requeues=-1)
