"""Markdown sweep report generation."""

import pytest

from repro.core import HwNasPipeline
from repro.core.markdown_report import _md_table, sweep_markdown, write_sweep_report
from repro.nas import GridSearch, SurrogateEvaluator
from repro.nas.searchspace import SearchSpace


@pytest.fixture(scope="module")
def small_result():
    space = SearchSpace(kernel_size=(3,), stride=(2,), padding=(1,), pool_choice=(0, 1),
                        kernel_size_pool=(3,), stride_pool=(2,),
                        initial_output_feature=(32,), channels=(5, 7), batches=(16,))
    return HwNasPipeline(SurrogateEvaluator(), space, GridSearch(space), input_hw=(48, 48)).run()


class TestMdTable:
    def test_formats_rows(self):
        text = _md_table([{"a": 1, "b": 2.5}], ["a", "b"])
        assert "| a | b |" in text
        assert "| 1 | 2.50 |" in text

    def test_empty(self):
        assert "empty" in _md_table([])

    def test_missing_cells_blank(self):
        text = _md_table([{"a": 1}], ["a", "b"])
        assert "| 1 |  |" in text


class TestSweepMarkdown:
    def test_contains_all_sections(self, small_result):
        text = sweep_markdown(small_result, include_baseline=False)
        for heading in ("Trial accounting", "Objective ranges", "Non-dominated solutions",
                        "Per-input-combination fronts"):
            assert heading in text
        assert "channels=5, batch=16" in text
        assert "1728" in text  # paper trial count for comparison

    def test_fault_tolerance_section(self, small_result):
        text = sweep_markdown(small_result, include_baseline=False)
        assert "## Fault tolerance" in text
        for quantity in ("trials retried", "recovered by retry", "deadline exceeded",
                         "device predictions skipped", "store lines quarantined"):
            assert quantity in text

    def test_kernel_energy_section(self, small_result):
        text = sweep_markdown(small_result, include_baseline=False)
        assert "## Kernel variants & energy" in text
        for scenario in ("fp32 im2col", "Winograd F(2x2,3x3)", "int8 integer path"):
            assert scenario in text
        # int8 should price below the fp32 baseline (bytes + pJ/MAC factors).
        int8_row = next(line for line in text.splitlines() if "int8 integer path" in line)
        assert "0." in int8_row.split("|")[3]

    def test_baseline_section_optional(self, small_result):
        with_baseline = sweep_markdown(small_result, include_baseline=True)
        without = sweep_markdown(small_result, include_baseline=False)
        assert "Stock ResNet-18" in with_baseline
        assert "Stock ResNet-18" not in without

    def test_write_report(self, small_result, tmp_path):
        path = tmp_path / "report.md"
        size = write_sweep_report(small_result, path, include_baseline=False)
        assert size == path.stat().st_size
        assert path.read_text().startswith("# Sweep report")
