"""Latency prediction: fusion, kernels, device models, calibration."""

import numpy as np
import pytest

from repro.graph.ir import OpType
from repro.graph.trace import trace_model
from repro.latency import (
    DEVICE_PROFILES,
    LatencyPredictor,
    extract_kernels,
    fuse_graph,
    get_predictor,
    list_predictors,
    predict_all_devices,
    PREDICTOR_METADATA,
)
from repro.latency.calibration import PAPER_ANCHORS, calibration_report
from repro.latency.devices import kernel_latency_ms
from repro.latency.kernels import Kernel
from repro.nn import SearchableResNet18, build_baseline_resnet18


def _winner(channels=7):
    return SearchableResNet18(in_channels=channels, kernel_size=3, stride=2, padding=1,
                              pool_choice=0, initial_output_feature=32)


class TestFusion:
    def test_every_non_io_node_covered_once(self):
        graph = trace_model(build_baseline_resnet18(5), (100, 100))
        fused = fuse_graph(graph)
        covered = [n.name for op in fused for n in op.nodes]
        assert len(covered) == len(set(covered))
        non_io = [n.name for n in graph.nodes() if n.op not in (OpType.INPUT, OpType.OUTPUT)]
        assert sorted(covered) == sorted(non_io)

    def test_conv_bn_relu_chains_fuse(self):
        graph = trace_model(_winner(), (64, 64))
        fused = fuse_graph(graph)
        stem = next(op for op in fused if op.lead.name == "conv1")
        assert [n.op for n in stem.folded] == [OpType.BATCH_NORM, OpType.RELU]

    def test_block_second_conv_fuses_only_bn(self):
        graph = trace_model(_winner(), (64, 64))
        fused = fuse_graph(graph)
        conv2 = next(op for op in fused if op.lead.name.endswith("0.conv2"))
        assert [n.op for n in conv2.folded] == [OpType.BATCH_NORM]

    def test_add_relu_fuses(self):
        graph = trace_model(_winner(), (64, 64))
        fused = fuse_graph(graph)
        adds = [op for op in fused if op.lead.op is OpType.ADD]
        assert len(adds) == 8
        assert all(len(op.folded) == 1 and op.folded[0].op is OpType.RELU for op in adds)


class TestKernels:
    def test_kernel_count_matches_fusion(self):
        graph = trace_model(build_baseline_resnet18(5), (100, 100))
        assert len(extract_kernels(graph)) == len(fuse_graph(graph))

    def test_flops_preserved_by_fusion(self):
        from repro.graph.flops import count_graph_flops

        graph = trace_model(_winner(), (100, 100))
        assert sum(k.flops for k in extract_kernels(graph)) == count_graph_flops(graph)

    def test_add_kernel_reads_two_inputs(self):
        graph = trace_model(_winner(), (64, 64))
        kernels = extract_kernels(graph)
        add = next(k for k in kernels if k.kernel_type == "add-relu")
        single = next(k for k in kernels if k.kernel_type == "conv-bn-relu")
        # Two producer tensors of the same shape -> double input bytes.
        assert add.input_bytes == 2 * add.output_bytes

    def test_conv_kernel_size_recorded(self):
        graph = trace_model(build_baseline_resnet18(5), (100, 100))
        stem = next(k for k in extract_kernels(graph) if k.name == "conv1")
        assert stem.conv_kernel == 7


class TestDeviceModel:
    def _kernel(self, **kw):
        defaults = dict(name="k", kernel_type="conv-bn-relu", flops=10_000_000,
                        input_bytes=100_000, output_bytes=100_000, weight_bytes=50_000)
        defaults.update(kw)
        return Kernel(**defaults)

    def test_latency_positive_and_monotone_in_flops(self):
        profile = DEVICE_PROFILES["cortexA76cpu"]
        small = kernel_latency_ms(self._kernel(flops=1_000_000), profile)
        large = kernel_latency_ms(self._kernel(flops=100_000_000), profile)
        assert 0 < small < large

    def test_pool_penalty_applied_only_to_maxpool(self):
        profile = DEVICE_PROFILES["myriadvpu"]
        pool = kernel_latency_ms(self._kernel(kernel_type="maxpool", flops=1000), profile)
        relu = kernel_latency_ms(self._kernel(kernel_type="relu", flops=1000), profile)
        assert pool - relu > 30.0  # the VPU's large pool penalty

    def test_large_kernel_derated(self):
        profile = DEVICE_PROFILES["adreno640gpu"]
        k3 = kernel_latency_ms(self._kernel(conv_kernel=3), profile)
        k7 = kernel_latency_ms(self._kernel(conv_kernel=7), profile)
        assert k7 > k3

    def test_cache_slowdown(self):
        profile = DEVICE_PROFILES["adreno630gpu"]
        tiny = kernel_latency_ms(self._kernel(input_bytes=1000, output_bytes=1000, weight_bytes=0), profile)
        huge = kernel_latency_ms(self._kernel(input_bytes=10_000_000, output_bytes=10_000_000,
                                              weight_bytes=0), profile)
        assert huge > 3 * tiny


class TestPredictors:
    def test_registry_names(self):
        assert set(list_predictors()) == {"cortexA76cpu", "adreno640gpu", "adreno630gpu", "myriadvpu"}
        assert get_predictor("CORTEXA76CPU").name == "cortexA76cpu"
        with pytest.raises(KeyError):
            get_predictor("tpu")

    def test_metadata_matches_table2(self):
        rows = {r["hardware_name"]: r for r in PREDICTOR_METADATA}
        assert rows["myriadvpu"]["device"] == "Intel Movidius NCS2"
        assert rows["cortexA76cpu"]["framework"] == "TFLite v2.1"

    def test_predict_model_end_to_end(self):
        latency = get_predictor("adreno640gpu").predict_model(_winner(), input_hw=(100, 100))
        assert 1.0 < latency < 50.0

    def test_summary_mean_std(self):
        graph = trace_model(_winner(), (100, 100))
        summary = predict_all_devices(graph)
        values = list(summary.per_device_ms.values())
        assert summary.mean_ms == pytest.approx(np.mean(values))
        assert summary.std_ms == pytest.approx(np.std(values))
        flat = summary.as_dict()
        assert "latency_ms" in flat and "lat_std" in flat


class TestCalibration:
    def test_all_anchor_means_within_tolerance(self):
        for row in calibration_report():
            relative = abs(row["pred_mean"] - row["paper_mean"]) / row["paper_mean"]
            assert relative < 0.15, f"{row['anchor']}: {row['pred_mean']} vs {row['paper_mean']}"

    def test_anchor_stds_within_tolerance(self):
        for row in calibration_report():
            if not np.isnan(row["paper_std"]):
                assert abs(row["pred_std"] - row["paper_std"]) / row["paper_std"] < 0.15

    def test_paper_orderings_hold(self):
        """The qualitative facts the paper reports must hold exactly."""
        report = {r["anchor"]: r for r in calibration_report()}
        # Winners are ~4x faster than the baseline.
        assert report["baseline-5ch"]["pred_mean"] > 3 * report["pareto-BD"]["pred_mean"]
        # Pooled winners are ~2x slower than unpooled, with bigger spread.
        assert report["pareto-C"]["pred_mean"] > 1.7 * report["pareto-A"]["pred_mean"]
        assert report["pareto-C"]["pred_std"] > 2 * report["pareto-A"]["pred_std"]

    def test_anchor_set_covers_tables_4_and_5(self):
        labels = {a.label for a in PAPER_ANCHORS}
        assert {"baseline-5ch", "baseline-7ch", "pareto-A", "pareto-C", "sweep-max"} <= labels


class TestKernelVariantRegistry:
    """The predictor/executor matching invariant for kernel variants.

    ``repro.latency.fusion.KERNEL_VARIANTS`` is the single source of
    truth for which kernel implementations exist; the deploy compiler
    only emits names from it (asserted in ``tests/test_qkernels.py``)
    and the energy model must price every one of them.
    """

    def _registry_names(self):
        from repro.latency import KERNEL_VARIANTS

        return {v for names in KERNEL_VARIANTS.values() for v in names}

    def test_energy_factors_cover_registry_exactly(self):
        from repro.latency import VARIANT_COST_FACTORS

        assert set(VARIANT_COST_FACTORS) == self._registry_names()

    def test_defaults_are_fp32(self):
        from repro.latency import KERNEL_VARIANTS, variants_for

        for op, names in KERNEL_VARIANTS.items():
            assert names[0].endswith(".f32"), (op, names)
            assert variants_for(op)[0] == names[0]

    def test_variant_pricing_scales_energy(self):
        from repro.latency import kernel_energy_mj

        kernel = Kernel(name="k", kernel_type="conv-bn-relu", flops=1e8,
                        input_bytes=1e5, output_bytes=1e5, weight_bytes=1e5,
                        conv_kernel=3)
        fp32 = kernel_energy_mj(kernel, "cortexA76cpu", "conv.im2col.f32")
        int8 = kernel_energy_mj(kernel, "cortexA76cpu", "conv.im2col.int8")
        winograd = kernel_energy_mj(kernel, "cortexA76cpu", "conv.winograd2x2.f32")
        assert int8 < fp32  # quarter bytes + quarter pJ/MAC
        assert winograd != fp32
        assert kernel_energy_mj(kernel, "cortexA76cpu", None) == fp32  # default
        with pytest.raises(KeyError):
            kernel_energy_mj(kernel, "cortexA76cpu", "conv.fft.f32")

    def test_energy_report_rows_match_kernels(self):
        from repro.latency import energy_report

        model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                                   pool_choice=0, initial_output_feature=32)
        graph = trace_model(model, input_hw=(24, 24))
        rows = energy_report(graph, "cortexA76cpu")
        kernels = extract_kernels(graph)
        assert [r["kernel"] for r in rows] == [k.name for k in kernels]
        assert all(r["variant"] in self._registry_names() for r in rows)
        assert all(r["energy_mj"] > 0 for r in rows)
