"""Dataset assembly: channels, indices, regions, determinism, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    BatchSampler,
    DrainageCrossingDataset,
    REGIONS,
    augment_batch,
    generate_patch,
    kfold_indices,
    ndvi,
    ndwi,
    random_flip_rot,
    total_sample_count,
    train_test_split_indices,
)
from repro.data.orthophoto import render_orthophoto
from repro.data.regions import region_by_name
from repro.data.terrain import generate_scene


class TestIndices:
    def test_ndvi_bounds_and_signs(self):
        nir = np.array([0.5, 0.1])
        red = np.array([0.1, 0.5])
        values = ndvi(nir, red)
        assert values[0] > 0 > values[1]
        assert (np.abs(values) <= 1.0).all()

    def test_ndwi_water_positive(self):
        # Open water: green >> nir.
        assert ndwi(np.array([0.09]), np.array([0.02]))[0] > 0.5

    def test_zero_denominator_safe(self):
        assert np.isfinite(ndvi(np.zeros(3), np.zeros(3))).all()

    def test_vegetation_scene_has_positive_ndvi(self, rng):
        scene = generate_scene(48, rng, REGIONS["nebraska"].terrain, crossing=False)
        ortho = render_orthophoto(scene, rng)
        red, green, _blue, nir = ortho
        veg_ndvi = ndvi(nir, red)
        assert veg_ndvi.mean() > 0.1  # mostly vegetated landscape

    def test_water_pixels_have_higher_ndwi(self, rng):
        for seed in range(10):
            local = np.random.default_rng(seed)
            scene = generate_scene(64, local, REGIONS["california"].terrain, crossing=True)
            if scene.water_mask.sum() < 5:
                continue
            ortho = render_orthophoto(scene, local)
            water_ndwi = ndwi(ortho[1], ortho[3])[scene.water_mask].mean()
            land_ndwi = ndwi(ortho[1], ortho[3])[~scene.water_mask].mean()
            assert water_ndwi > land_ndwi
            return
        pytest.fail("no scene with water found")


class TestRegions:
    def test_table1_counts(self):
        assert REGIONS["nebraska"].total_samples == 4044
        assert REGIONS["illinois"].total_samples == 2022
        assert REGIONS["north_dakota"].total_samples == 1226
        assert REGIONS["california"].total_samples == 4776
        assert total_sample_count() == 12068

    def test_lookup_by_display_name(self):
        assert region_by_name("North Dakota").dem_resolution_m == 0.61
        with pytest.raises(KeyError):
            region_by_name("atlantis")


class TestGeneratePatch:
    def test_channel_counts(self, rng):
        region = REGIONS["nebraska"]
        assert generate_patch(region, 1, rng, size=32, channels=5).shape == (5, 32, 32)
        assert generate_patch(region, 0, np.random.default_rng(1), size=32, channels=7).shape == (7, 32, 32)

    def test_invalid_channels(self, rng):
        with pytest.raises(ValueError):
            generate_patch(REGIONS["nebraska"], 1, rng, channels=6)

    def test_dem_channel_standardized(self, rng):
        patch = generate_patch(REGIONS["california"], 1, rng, size=48, channels=5)
        assert abs(float(patch[0].mean())) < 1e-3
        assert float(patch[0].std()) == pytest.approx(1.0, abs=1e-2)

    def test_seventh_channels_are_derived_indices(self, rng):
        patch = generate_patch(REGIONS["illinois"], 1, rng, size=32, channels=7)
        red, green, nir = patch[1], patch[2], patch[4]
        np.testing.assert_allclose(patch[5], ndvi(nir, red), atol=1e-5)
        np.testing.assert_allclose(patch[6], ndwi(green, nir), atol=1e-5)


class TestDataset:
    def test_balanced_classes(self):
        ds = DrainageCrossingDataset(channels=5, size=24, samples_per_class=3, seed=0)
        counts = ds.class_counts()
        assert counts[0] == counts[1] == 12  # 3 per class x 4 regions

    def test_deterministic_across_instances(self):
        a = DrainageCrossingDataset(channels=5, size=24, samples_per_class=2, seed=3)
        b = DrainageCrossingDataset(channels=5, size=24, samples_per_class=2, seed=3)
        np.testing.assert_array_equal(a.patch(5), b.patch(5))

    def test_different_seeds_differ(self):
        a = DrainageCrossingDataset(channels=5, size=24, samples_per_class=2, seed=3)
        b = DrainageCrossingDataset(channels=5, size=24, samples_per_class=2, seed=4)
        assert not np.allclose(a.patch(0), b.patch(0))

    def test_cache_returns_same_object(self):
        ds = DrainageCrossingDataset(channels=5, size=24, samples_per_class=1, cache=True)
        assert ds.patch(0) is ds.patch(0)

    def test_batch_collation(self, tiny_dataset_5ch):
        x, y = tiny_dataset_5ch.batch(np.array([0, 1, 2]))
        assert x.shape == (3, 5, 24, 24)
        assert y.shape == (3,)

    def test_region_subset(self):
        ds = DrainageCrossingDataset(channels=5, size=24, samples_per_class=2, regions=["illinois"])
        assert ds.region_counts() == {"illinois": 4}

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DrainageCrossingDataset(samples_per_class=0)

    def test_getitem_protocol(self, tiny_dataset_5ch):
        patch, label = tiny_dataset_5ch[0]
        assert patch.shape == (5, 24, 24)
        assert label in (0, 1)


class TestSampler:
    def test_covers_all_indices_once(self, tiny_dataset_5ch):
        sampler = BatchSampler(tiny_dataset_5ch, batch_size=5, shuffle=True, rng=0)
        seen = sum((len(y) for _, y in sampler), 0)
        assert seen == len(tiny_dataset_5ch)

    def test_len_with_and_without_drop_last(self, tiny_dataset_5ch):
        n = len(tiny_dataset_5ch)  # 16
        assert len(BatchSampler(tiny_dataset_5ch, batch_size=5)) == (n + 4) // 5
        assert len(BatchSampler(tiny_dataset_5ch, batch_size=5, drop_last=True)) == n // 5

    def test_restricted_indices(self, tiny_dataset_5ch):
        subset = np.array([0, 3, 7])
        sampler = BatchSampler(tiny_dataset_5ch, batch_size=2, indices=subset, shuffle=False)
        labels = np.concatenate([y for _, y in sampler])
        np.testing.assert_array_equal(np.sort(labels), np.sort(tiny_dataset_5ch.labels[subset]))

    def test_validation(self, tiny_dataset_5ch):
        with pytest.raises(ValueError):
            BatchSampler(tiny_dataset_5ch, batch_size=0)
        with pytest.raises(ValueError):
            BatchSampler(tiny_dataset_5ch, batch_size=2, indices=np.array([], dtype=np.int64))


class TestSplits:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(5, 60), k=st.integers(2, 5))
    def test_kfold_partitions_exactly(self, n, k):
        if n < k:
            return
        folds = kfold_indices(n, k=k, seed=1)
        assert len(folds) == k
        all_val = np.concatenate([val for _, val in folds])
        np.testing.assert_array_equal(np.sort(all_val), np.arange(n))
        for train, val in folds:
            assert np.intersect1d(train, val).size == 0
            assert train.size + val.size == n

    def test_fold_sizes_balanced(self):
        folds = kfold_indices(23, k=5, seed=0)
        sizes = [val.size for _, val in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(3, k=5)
        with pytest.raises(ValueError):
            kfold_indices(10, k=1)

    def test_train_test_split(self):
        train, test = train_test_split_indices(50, test_fraction=0.2, seed=0)
        assert test.size == 10
        assert np.intersect1d(train, test).size == 0
        with pytest.raises(ValueError):
            train_test_split_indices(10, test_fraction=0.0)


class TestAugment:
    def test_dihedral_preserves_values(self, rng):
        patch = rng.normal(size=(3, 8, 8)).astype(np.float32)
        out = random_flip_rot(patch, rng)
        np.testing.assert_allclose(np.sort(out.reshape(-1)), np.sort(patch.reshape(-1)))

    def test_batch_augment_shape(self, rng):
        x = rng.normal(size=(4, 5, 8, 8)).astype(np.float32)
        out = augment_batch(x, rng=0)
        assert out.shape == x.shape

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValueError):
            random_flip_rot(rng.normal(size=(3, 4, 8)).astype(np.float32), rng)
        with pytest.raises(ValueError):
            augment_batch(rng.normal(size=(3, 4, 8)).astype(np.float32))
