"""Serving layer: micro-batching, plan replicas, bucketed cache, policy.

Covers the four contracts the serving tier rests on:

1. **Correctness** — per-request results routed through padded batch
   buckets are *bucket-deterministic* (a pure function of the image and
   the bucket size, bitwise independent of co-batched content and row
   position) and agree with the interpreted reference runtime within
   the compiled-path tolerance (rtol=1e-3 / atol=1e-4 — the two
   implementations share no kernel code, so bitwise equality across
   them is not a meaningful target; see ``tests/test_deploy_plan.py``).
2. **Safety** — concurrent execution uses exclusive replicas; direct
   concurrent misuse of one plan raises
   :class:`~repro.deploy.ConcurrentPlanError`; NaN-poisoned arenas
   under a concurrent load find any buffer-sharing bug.
3. **Liveness/ordering** — deadline flush, overload rejection, and
   FIFO drain of the micro-batcher.
4. **Performance invariants** — warm buckets mean zero new arena
   allocations in steady state (the mechanism behind the serving
   benchmark's zero-allocation assertion).
5. **Process mode** — shared-memory weight publication/attachment is
   zero-copy (``private_bytes == 0``), worker processes compute
   bitwise-identically to thread replicas for the same (image, bucket),
   dead workers respawn (and the pool degrades to in-process execution
   after repeated deaths), and fork inherits neither warm cache entries
   nor the template plan's run guard.
"""

import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.deploy import ConcurrentPlanError, load_runtime, plan_weight_arrays
from repro.deploy.plan import Arena
from repro.graph.trace import trace_model
from repro.nn import SearchableResNet18
from repro.onnxlite.export import export_model
from repro.parallel import ThreadPoolExecutorBackend, make_executor
from repro.serve import (
    BatchPolicy,
    MicroBatcher,
    PlanCache,
    PlanServer,
    ServerOverloaded,
    WorkerPool,
    attach_plan,
    bucket_for,
    clamp_replicas,
    plan_buckets,
    predicted_batch_ms,
    publish_plan,
    run_load,
    serial_baseline,
    suggest_batch_policy,
    suggest_max_batch_size,
)

ATOL = 1e-4
RTOL = 1e-3
HW = 24  # deployment tile used throughout (fast, merged-GEMM regime)


def _model(seed: int = 3) -> SearchableResNet18:
    return SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                              pool_choice=0, initial_output_feature=32, seed=seed)


@pytest.fixture(scope="module")
def runtime():
    return load_runtime(export_model(_model(), input_hw=(HW, HW)))


@pytest.fixture(scope="module")
def plan(runtime):
    return runtime.compile(poison=True)


def _images(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 5, HW, HW)).astype(np.float32)


# --------------------------------------------------------------------------
# micro-batcher
# --------------------------------------------------------------------------


class TestMicroBatcher:
    def test_full_batch_released_immediately(self):
        b = MicroBatcher(max_batch_size=4, max_queue_delay_ms=10_000, max_queue_depth=16)
        futs = [b.submit(i) for i in range(4)]
        t0 = time.monotonic()
        batch = b.next_batch()
        assert time.monotonic() - t0 < 1.0  # did not wait for the deadline
        assert [r.x for r in batch] == [0, 1, 2, 3]
        assert all(not f.done() for f in futs)

    def test_deadline_flushes_partial_batch(self):
        b = MicroBatcher(max_batch_size=8, max_queue_delay_ms=30, max_queue_depth=16)
        for i in range(3):
            b.submit(i)
        t0 = time.monotonic()
        batch = b.next_batch()
        waited = time.monotonic() - t0
        assert [r.x for r in batch] == [0, 1, 2]
        assert waited >= 0.02  # held for (close to) the deadline...
        assert waited < 5.0    # ...but not forever

    def test_overload_rejection_and_counters(self):
        b = MicroBatcher(max_batch_size=2, max_queue_delay_ms=1000, max_queue_depth=3)
        for i in range(3):
            b.submit(i)
        with pytest.raises(ServerOverloaded):
            b.submit(99)
        assert b.submitted == 3
        assert b.rejected == 1
        assert b.depth == 3
        # Consuming a batch frees capacity again.
        b.next_batch()
        b.submit(100)
        assert b.submitted == 4

    def test_drain_ordering_and_close_semantics(self):
        b = MicroBatcher(max_batch_size=4, max_queue_delay_ms=10_000, max_queue_depth=64)
        for i in range(10):
            b.submit(i)
        b.close()
        with pytest.raises(RuntimeError, match="closed"):
            b.submit(11)
        drained = []
        sizes = []
        while (batch := b.next_batch()) is not None:
            drained.extend(r.x for r in batch)
            sizes.append(len(batch))
        # FIFO across batches, full batches first, remainder flushed last.
        assert drained == list(range(10))
        assert sizes == [4, 4, 2]
        assert b.next_batch() is None  # stays terminal

    def test_consumer_wakes_on_late_submit(self):
        b = MicroBatcher(max_batch_size=1, max_queue_delay_ms=0, max_queue_depth=4)
        out = []
        t = threading.Thread(target=lambda: out.append(b.next_batch()))
        t.start()
        time.sleep(0.05)
        b.submit("x")
        t.join(timeout=5)
        assert not t.is_alive()
        assert [r.x for r in out[0]] == ["x"]


# --------------------------------------------------------------------------
# policy
# --------------------------------------------------------------------------


class TestBatchPolicy:
    def test_bucket_for_powers_of_two(self):
        assert [bucket_for(n, 16) for n in (1, 2, 3, 4, 5, 8, 9, 16)] == \
            [1, 2, 4, 4, 8, 8, 16, 16]
        # Non-pow2 cap clamps the top bucket.
        assert bucket_for(9, 12) == 12
        assert plan_buckets(12) == [1, 2, 4, 8, 12]
        assert plan_buckets(16) == [1, 2, 4, 8, 16]
        with pytest.raises(ValueError):
            bucket_for(0, 8)
        with pytest.raises(ValueError):
            bucket_for(9, 8)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=8, max_queue_depth=4)
        with pytest.raises(ValueError):
            BatchPolicy(replicas=0)
        p = BatchPolicy(max_batch_size=4).with_overrides(max_batch_size=2)
        assert p.max_batch_size == 2

    def test_suggest_max_batch_monotone_in_budget(self):
        graph = trace_model(_model(), input_hw=(HW, HW))
        sizes = [suggest_max_batch_size(graph, t) for t in (1.0, 10.0, 100.0, 1000.0)]
        assert sizes == sorted(sizes)
        assert sizes[0] >= 1
        assert all(s & (s - 1) == 0 for s in sizes)  # powers of two
        # Predicted latency grows with batch, so the chosen batch fits.
        for target, size in zip((10.0, 100.0, 1000.0), sizes[1:]):
            assert predicted_batch_ms(graph, size) <= target

    def test_suggest_batch_policy_respects_budget(self):
        graph = trace_model(_model(), input_hw=(HW, HW))
        # cpus injected: the 1-core CI box would otherwise clamp replicas.
        policy = suggest_batch_policy(graph, target_p99_ms=100.0, replicas=2,
                                      cpus=8)
        assert policy.replicas == 2
        assert policy.max_queue_depth >= policy.max_batch_size
        assert 0 < policy.max_queue_delay_ms <= 50.0
        with pytest.raises(ValueError):
            suggest_max_batch_size(graph, 0.0)

    def test_clamp_replicas_caps_to_core_count(self):
        assert clamp_replicas(2, cpus=8) == 2
        assert clamp_replicas(16, cpus=4) == 4
        assert clamp_replicas(3, cpus=3) == 3
        assert clamp_replicas(1) == 1  # never clamped below one replica
        with pytest.raises(ValueError):
            clamp_replicas(0)

    def test_suggest_batch_policy_core_aware_defaults(self):
        graph = trace_model(_model(), input_hw=(HW, HW))
        # Multi-replica defaults to process mode (threads share one GIL).
        p = suggest_batch_policy(graph, 100.0, replicas=4, cpus=8)
        assert p.worker_mode == "process" and p.replicas == 4
        # Single replica stays in-thread (process staging buys nothing).
        assert suggest_batch_policy(graph, 100.0, replicas=1,
                                    cpus=8).worker_mode == "thread"
        # replicas=None takes one per usable core; explicit mode wins.
        pn = suggest_batch_policy(graph, 100.0, replicas=None, cpus=6,
                                  worker_mode="thread")
        assert pn.replicas == 6 and pn.worker_mode == "thread"
        # Oversubscription is clamped, not honored.
        assert suggest_batch_policy(graph, 100.0, replicas=9,
                                    cpus=2).replicas == 2
        with pytest.raises(ValueError):
            BatchPolicy(worker_mode="fiber")


# --------------------------------------------------------------------------
# fingerprint / replicas / re-entrancy
# --------------------------------------------------------------------------


class TestPlanReplication:
    def test_fingerprint_stable_and_weight_sensitive(self):
        blob = export_model(_model(), input_hw=(HW, HW))
        fp_a = load_runtime(blob).fingerprint
        fp_b = load_runtime(blob).fingerprint
        fp_other = load_runtime(export_model(_model(seed=4), input_hw=(HW, HW))).fingerprint
        assert fp_a == fp_b
        assert fp_a != fp_other
        assert len(fp_a) == 64

    def test_replica_shares_fingerprint_not_arena(self, plan):
        replica = plan.replicate()
        assert replica.fingerprint == plan.fingerprint
        assert replica.arena is not plan.arena
        assert replica.arena.poison  # inherits the source plan's setting
        x = _images(2)
        np.testing.assert_array_equal(replica.run(x), plan.replicate().run(x))

    def test_replicas_share_weight_memory(self, plan):
        """N replicas must not multiply parameter storage."""
        a, b = plan.replicate(), plan.replicate()
        shared = 0
        for step_a, step_b in zip(a.steps, b.steps):
            cells_a = step_a.run.__closure__ or ()
            cells_b = step_b.run.__closure__ or ()
            for ca, cb in zip(cells_a, cells_b):
                va, vb = ca.cell_contents, cb.cell_contents
                if isinstance(va, np.ndarray) and isinstance(vb, np.ndarray):
                    assert va is vb, f"step {step_a.name} copied a weight array"
                    shared += 1
        assert shared > 0  # the check actually saw weight arrays

    def test_concurrent_run_raises_instead_of_corrupting(self, plan):
        replica = plan.replicate()
        x = _images(1)
        release = threading.Event()
        entered = threading.Event()
        original = replica.steps[0].run

        def stalled(env):
            entered.set()
            assert release.wait(timeout=10)
            return original(env)

        replica.steps[0].run = stalled
        try:
            results = []
            t = threading.Thread(target=lambda: results.append(replica.run(x)))
            t.start()
            assert entered.wait(timeout=10)
            with pytest.raises(ConcurrentPlanError, match="replicate"):
                replica.run(x)
            release.set()
            t.join(timeout=10)
            assert len(results) == 1
        finally:
            replica.steps[0].run = original
        # The guard released cleanly: the plan still runs (and agrees).
        np.testing.assert_array_equal(replica.run(x), results[0])


# --------------------------------------------------------------------------
# bucketed plan cache
# --------------------------------------------------------------------------


class TestPlanCache:
    def test_checkout_is_exclusive(self, plan):
        cache = PlanCache(max_batch_size=8)
        fp = cache.register(plan)
        a = cache.acquire(fp, 4)
        b = cache.acquire(fp, 4)
        assert a.plan is not b.plan
        cache.release(a)
        c = cache.acquire(fp, 4)
        assert c.plan is a.plan  # warm reuse
        assert cache.stats()["hits"] == 1
        with pytest.raises(KeyError):
            cache.acquire("no-such-fingerprint", 4)

    def test_warm_then_zero_allocations(self, plan):
        cache = PlanCache(max_batch_size=8)
        fp = cache.register(plan)
        cache.warm(fp)
        before = cache.arena_allocations()
        rng = np.random.default_rng(7)
        for _ in range(25):
            n = int(rng.integers(1, 9))
            entry = cache.acquire(fp, cache.bucket_for(n))
            entry.run_padded(_images(n, seed=int(rng.integers(1e6))))
            cache.release(entry)
        assert cache.arena_allocations() == before, \
            "steady-state serving must not allocate new arena buffers"
        assert cache.stats()["misses"] == len(plan_buckets(8))  # warmup only

    def test_run_padded_validates_size(self, plan):
        cache = PlanCache(max_batch_size=4)
        fp = cache.register(plan)
        entry = cache.acquire(fp, 2)
        with pytest.raises(ValueError):
            entry.run_padded(_images(3))
        cache.release(entry)


# --------------------------------------------------------------------------
# fuzzed per-request equivalence through padded buckets
# --------------------------------------------------------------------------


class TestBucketEquivalence:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                          max_size=5),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_varying_batch_sequences_match_reference(self, runtime, plan, sizes, seed):
        """Fuzz: random batch-size sequences through one replica.

        Every request's row must be (a) bitwise-equal to the same image
        run at the same row of a differently-composed batch of the same
        bucket (content independence — co-batched neighbours and zero
        padding leak nothing; row *position* may differ by BLAS panel
        alignment at the +-1 ulp level, which is why the contract is
        per-(image, bucket, row)), and (b) within the compiled-path
        tolerance of the interpreted runtime.
        """
        cache = PlanCache(max_batch_size=8)
        fp = cache.register(plan)
        cache.warm(fp)
        rng = np.random.default_rng(seed)
        for n in sizes:
            images = rng.standard_normal((n, 5, HW, HW)).astype(np.float32)
            bucket = cache.bucket_for(n)
            entry = cache.acquire(fp, bucket)
            out = entry.run_padded(images)
            assert out.shape[0] == n
            assert np.isfinite(out).all()  # poison never leaked through
            # (a) content independence: rerun image 0 at the same row of
            # a full batch of unrelated images in the same bucket.
            decoy = rng.standard_normal((bucket, 5, HW, HW)).astype(np.float32)
            decoy[0] = images[0]
            out_decoy = entry.plan.run(decoy)
            np.testing.assert_array_equal(
                out[0], out_decoy[0],
                err_msg="per-request result must depend only on "
                        "(image, bucket, row) — neighbours/padding leaked")
            cache.release(entry)
            # (b) interpreted-reference agreement, per request.
            ref = runtime.run(images)
            np.testing.assert_allclose(out, ref, rtol=RTOL, atol=ATOL)


# --------------------------------------------------------------------------
# the server
# --------------------------------------------------------------------------


class TestPlanServer:
    def test_results_routed_exactly(self, runtime, plan):
        """N threads x M requests: every caller gets *its own* answer."""
        policy = BatchPolicy(max_batch_size=4, max_queue_delay_ms=2.0,
                             max_queue_depth=256, replicas=3)
        images = _images(48, seed=11)
        refs = runtime.run(images)
        with PlanServer(plan, policy=policy) as server:
            def one(i: int) -> np.ndarray:
                return server.infer(images[i])

            with make_executor("thread", workers=12) as pool:
                outs = pool.map(one, list(range(48)))
        outs = np.stack(outs)
        assert np.isfinite(outs).all()  # poisoned arenas stayed private
        np.testing.assert_allclose(outs, refs, rtol=RTOL, atol=ATOL)
        # Routing is exact: each output is closest to its own reference
        # and the references are distinct.
        d = np.abs(outs[:, None, :] - refs[None, :, :]).sum(axis=2)
        assert (d.argmin(axis=1) == np.arange(48)).all()

    def test_input_validation_and_shapes(self, plan):
        with PlanServer(plan, warm=False) as server:
            img = _images(1)[0]
            assert server.infer(img).shape == (2,)
            assert server.infer(img[None]).shape == (2,)  # (1, C, H, W) ok
            with pytest.raises(ValueError, match="one image"):
                server.submit(_images(2))

    def test_drain_serves_queued_requests_on_close(self, plan):
        policy = BatchPolicy(max_batch_size=4, max_queue_delay_ms=50.0,
                             max_queue_depth=64, replicas=1)
        server = PlanServer(plan, policy=policy)
        futs = [server.submit(img) for img in _images(10, seed=5)]
        server.close()
        assert all(f.result(timeout=10).shape == (2,) for f in futs)
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(_images(1)[0])
        server.close()  # idempotent

    def test_load_generator_round_trip(self, plan):
        policy = BatchPolicy(max_batch_size=8, max_queue_delay_ms=2.0,
                             max_queue_depth=64, replicas=1)
        with PlanServer(plan, policy=policy) as server:
            report = run_load(server, duration_s=0.4, clients=8, seed=1)
        assert report.served > 0
        assert report.errors == 0
        assert report.throughput_ips > 0
        assert report.latency_ms_p50 <= report.latency_ms_p99
        payload = report.as_dict()
        assert set(payload) >= {"served", "rejected", "throughput_ips",
                                "latency_ms_p50", "latency_ms_p99"}
        assert "images/sec" in report.render()
        base = serial_baseline(plan.replicate(), duration_s=0.1)
        assert base.served > 0 and base.mean_batch_size == 1.0

    def test_open_loop_rate_limits_submissions(self, plan):
        policy = BatchPolicy(max_batch_size=4, max_queue_delay_ms=2.0,
                             max_queue_depth=32, replicas=1)
        with PlanServer(plan, policy=policy) as server:
            report = run_load(server, duration_s=0.5, clients=2,
                              arrival_rate_ips=40.0, seed=2)
        # ~20 images in 0.5s at 40 ips; generous bounds for slow CI.
        assert 1 <= report.served <= 40


# --------------------------------------------------------------------------
# shared-memory weight arenas
# --------------------------------------------------------------------------


class TestSharedWeights:
    def test_publish_attach_round_trip_is_zero_copy(self, plan):
        shared = publish_plan(plan)
        try:
            attached = attach_plan(shared.spec, poison=True)
            try:
                x = _images(4, seed=21)
                # Rebinding onto the segment views must not change a bit.
                np.testing.assert_array_equal(attached.plan.run(x),
                                              plan.replicate().run(x))
                res = attached.residency
                assert res["private_bytes"] == 0, \
                    "rebind copied parameter bytes out of the segment"
                assert res["shared_bytes"] > 0
                assert res["arrays"] > 0
                assert res["shared_bytes"] <= shared.nbytes
            finally:
                attached.close()
        finally:
            shared.close()

    def test_spec_pickles_and_views_are_read_only(self, plan):
        shared = publish_plan(plan)
        try:
            # The spec must survive the pipe to a spawn-started worker.
            spec = pickle.loads(pickle.dumps(shared.spec))
            assert spec.fingerprint == plan.fingerprint
            attached = attach_plan(spec, poison=True)
            try:
                arrays = [arr for _, _, arr in
                          plan_weight_arrays(attached.plan.blueprint.nodes)]
                assert arrays
                assert all(not arr.flags.writeable for arr in arrays), \
                    "a writable view could corrupt every sibling worker"
                with pytest.raises((ValueError, RuntimeError)):
                    arrays[0][...] = 0.0
            finally:
                attached.close()
        finally:
            shared.close()

    def test_close_is_idempotent_and_guards_buf(self, plan):
        shared = publish_plan(plan)
        shared.close()
        shared.close()  # idempotent
        with pytest.raises(ValueError):
            shared.buf  # noqa: B018 - the access itself is the assertion


# --------------------------------------------------------------------------
# process worker pool: death, respawn, degrade
# --------------------------------------------------------------------------


def _kill_worker(pool: WorkerPool) -> int:
    """SIGKILL the pool's (only) worker and wait until it is reaped."""
    handle = pool._all[0]
    victim = handle.pid
    os.kill(victim, signal.SIGKILL)
    handle.proc.join(timeout=10)
    assert not handle.proc.is_alive()
    return victim


class TestWorkerPool:
    def test_worker_death_respawns_and_requeues(self, plan):
        with WorkerPool(plan, workers=1, max_batch_size=4, poison=True) as pool:
            x = _images(3, seed=31)
            ref = pool.run_batch(x)
            assert ref.shape == (3, 2)
            victim = _kill_worker(pool)
            # The dead worker is discovered at checkout; the batch is
            # requeued onto the respawned replacement transparently.
            out = pool.run_batch(x)
            np.testing.assert_array_equal(out, ref)
            s = pool.stats()
            assert s["worker_deaths"] == 1
            assert s["worker_respawns"] == 1
            assert not s["degraded"]
            assert s["worker_pids"] and s["worker_pids"][0] != victim

    def test_repeated_deaths_degrade_to_in_process(self, plan):
        with WorkerPool(plan, workers=1, max_batch_size=4, max_deaths=0,
                        poison=True) as pool:
            x = _images(2, seed=32)
            ref = pool.run_batch(x)  # process path, bucket 2
            _kill_worker(pool)
            out = pool.run_batch(x)  # death exceeds budget -> degraded path
            s = pool.stats()
            assert s["degraded"] and pool.degraded
            assert s["worker_deaths"] == 1
            assert s["worker_respawns"] == 0
            # Degraded (in-process PlanCache) execution honors the same
            # per-(image, bucket) identity contract as the workers.
            np.testing.assert_array_equal(out, ref)
            # Serving keeps answering in degraded mode.
            np.testing.assert_array_equal(pool.run_batch(x), ref)

    def test_pool_validates_worker_count(self, plan):
        with pytest.raises(ValueError):
            WorkerPool(plan, workers=0, max_batch_size=4)


# --------------------------------------------------------------------------
# process-mode server: cross-mode identity + routing
# --------------------------------------------------------------------------


class TestProcessServer:
    def test_process_mode_bitwise_matches_thread_mode(self, plan):
        """Same (image, bucket) => identical bits across worker modes."""
        kw = dict(max_batch_size=4, max_queue_delay_ms=2.0, max_queue_depth=64,
                  replicas=1)
        images = _images(8, seed=41)
        # Serial infer keeps every batch at bucket 1 in both modes.
        with PlanServer(plan, policy=BatchPolicy(**kw), cpus=4) as server:
            thread_rows = np.stack([server.infer(img) for img in images])
        policy = BatchPolicy(**kw, worker_mode="process")
        with PlanServer(plan, policy=policy, cpus=4) as server:
            proc_rows = np.stack([server.infer(img) for img in images])
            stats = server.stats()
        np.testing.assert_array_equal(proc_rows, thread_rows)
        assert stats["worker_mode"] == "process"
        assert stats["batches_executed"] >= len(images)
        assert stats["shared_weight_bytes"] > 0
        assert stats["worker_private_weight_bytes"] == 0
        assert stats["worker_deaths"] == 0 and not stats["degraded"]

    def test_process_mode_results_routed_exactly(self, runtime, plan):
        policy = BatchPolicy(max_batch_size=4, max_queue_delay_ms=2.0,
                             max_queue_depth=256, replicas=2,
                             worker_mode="process")
        images = _images(24, seed=42)
        refs = runtime.run(images)
        with PlanServer(plan, policy=policy, cpus=2) as server:
            with make_executor("thread", workers=8) as pool:
                outs = pool.map(lambda i: server.infer(images[i]),
                                list(range(24)))
        outs = np.stack(outs)
        assert np.isfinite(outs).all()
        np.testing.assert_allclose(outs, refs, rtol=RTOL, atol=ATOL)
        d = np.abs(outs[:, None, :] - refs[None, :, :]).sum(axis=2)
        assert (d.argmin(axis=1) == np.arange(24)).all()

    def test_server_clamps_oversubscribed_replicas(self, plan):
        policy = BatchPolicy(max_batch_size=2, max_queue_depth=64, replicas=64)
        with PlanServer(plan, policy=policy, cpus=2, warm=False) as server:
            assert server.policy.replicas == 2  # clamped before any threads


# --------------------------------------------------------------------------
# fork safety
# --------------------------------------------------------------------------


class TestForkSafety:
    def test_workers_inherit_no_warm_cache_entries(self, plan):
        """Workers warm their *own* arenas; the parent cache stays cold.

        A busy parent (warm PlanCache) must not leak pooled entries or
        hit/miss counts across the fork: the process-mode server never
        touches its local cache unless the pool degrades.
        """
        parent_cache = PlanCache(max_batch_size=4)
        parent_cache.warm(parent_cache.register(plan))
        assert parent_cache.stats()["pooled_entries"] > 0
        policy = BatchPolicy(max_batch_size=4, max_queue_delay_ms=1.0,
                             max_queue_depth=16, replicas=1,
                             worker_mode="process")
        with PlanServer(plan, policy=policy, cpus=1) as server:
            assert server.infer(_images(1, seed=51)[0]).shape == (2,)
            stats = server.stats()
        assert stats["pooled_entries"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        # ...while each worker did warm its own arenas before serving.
        assert stats["worker_private_weight_bytes"] == 0

    def test_worker_warms_own_arenas_before_ready(self, plan):
        with WorkerPool(plan, workers=1, max_batch_size=4, poison=True) as pool:
            report = pool._all[0].report
            assert report["warm_allocations"] > 0
            assert report["private_bytes"] == 0

    def test_run_guard_is_per_process(self, plan):
        """The template plan's run guard must not gate worker processes."""
        with WorkerPool(plan, workers=1, max_batch_size=4, poison=True) as pool:
            x = _images(2, seed=52)
            ref = pool.run_batch(x)
            assert plan._run_guard.acquire(blocking=False)
            try:
                # Worker replicas rebind with fresh guards: holding the
                # parent's lock cannot deadlock or poison their runs.
                out = pool.run_batch(x)
            finally:
                plan._run_guard.release()
            np.testing.assert_array_equal(out, ref)


# --------------------------------------------------------------------------
# sorted arena free list (satellite)
# --------------------------------------------------------------------------


class TestArenaSmallestFit:
    def test_smallest_fit_and_counters(self):
        arena = Arena()
        views = [arena.acquire((n,)) for n in (64, 8, 32, 16)]
        assert arena.allocations == 4
        for v in views:
            arena.release(v)
        assert arena._free_sizes == sorted(arena._free_sizes)
        # Smallest fit: a request of 10 must take the 16-slot, not 64.
        # (Pool capacities are tracked in bytes: 16 float32 = 64 bytes.)
        v = arena.acquire((10,))
        assert arena._live[id(v)].size == 16 * 4
        assert arena.reuses == 1
        # Oversized request allocates fresh instead of misusing the pool.
        big = arena.acquire((100,))
        assert arena.allocations == 5
        arena.release(v)
        arena.release(big)
        assert arena._free_sizes == sorted(arena._free_sizes)

    def test_release_foreign_buffer_raises(self):
        arena = Arena()
        with pytest.raises(KeyError):
            arena.release(np.zeros(4, dtype=np.float32))


# --------------------------------------------------------------------------
# thread executor (satellite)
# --------------------------------------------------------------------------


class TestThreadExecutor:
    def test_ordered_map_and_reuse(self):
        with make_executor("thread", workers=4) as pool:
            assert isinstance(pool, ThreadPoolExecutorBackend)
            assert pool.map(lambda v: v * v, [3, 1, 2]) == [9, 1, 4]
            assert pool.map(len, []) == []
            # Shared heap: closures over local state just work.
            seen = []
            pool.map(seen.append, [1, 2, 3])
            assert sorted(seen) == [1, 2, 3]
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(len, ["x"])

    def test_map_resilient_captures_errors(self):
        with make_executor("thread") as pool:
            results = pool.map_resilient(lambda v: 1 // v, [1, 0])
        assert results[0].ok and results[0].value == 1
        assert not results[1].ok and results[1].error_type == "ZeroDivisionError"

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="thread"):
            make_executor("fiber")


# --------------------------------------------------------------------------
# runtime compiled= convenience (satellite)
# --------------------------------------------------------------------------


class TestRuntimeCompiledFlag:
    def test_compiled_flag_matches_interpreter_and_caches_plan(self):
        runtime = load_runtime(export_model(_model(), input_hw=(HW, HW)))
        x = _images(3, seed=9)
        ref = runtime.run(x)
        fast = runtime.run(x, compiled=True)
        np.testing.assert_allclose(fast, ref, rtol=RTOL, atol=ATOL)
        assert runtime._plan is not None
        plan_first = runtime._plan
        runtime.run(x, compiled=True)
        assert runtime._plan is plan_first  # compiled once, reused
