"""Graph IR, tracer, shape inference and FLOP counting."""

import numpy as np
import pytest

from repro.graph import Graph, Node, OpType, conv_out_hw, count_graph_flops, node_flops, pool_out_hw, trace_model
from repro.nn import SearchableResNet18, build_baseline_resnet18, count_parameters
from repro.tensor.tensor import Tensor


class TestShapes:
    def test_conv_out_hw(self):
        assert conv_out_hw((100, 100), 7, 2, 3) == (50, 50)
        assert conv_out_hw((100, 100), 3, 2, 1) == (50, 50)
        assert conv_out_hw((100, 100), 3, 1, 1) == (100, 100)
        with pytest.raises(ValueError):
            conv_out_hw((4, 4), 7, 1, 0)

    def test_pool_out_hw(self):
        assert pool_out_hw((50, 50), 3, 2) == (24, 24)
        assert pool_out_hw((50, 50), 2, 2) == (25, 25)
        with pytest.raises(ValueError):
            pool_out_hw((2, 2), 3, 1)


class TestGraphStructure:
    def _mini(self):
        g = Graph()
        a = g.add_node(Node("in", OpType.INPUT, (3, 8, 8), (3, 8, 8)))
        b = g.add_node(Node("conv", OpType.CONV, (3, 8, 8), (4, 8, 8),
                            attrs={"in_channels": 3, "out_channels": 4, "kernel": 3, "stride": 1, "padding": 1},
                            params=108))
        c = g.add_node(Node("out", OpType.OUTPUT, (4, 8, 8), (4, 8, 8)))
        g.add_edge(a, b)
        g.add_edge(b, c)
        return g

    def test_duplicate_names_rejected(self):
        g = self._mini()
        with pytest.raises(ValueError):
            g.add_node(Node("conv", OpType.RELU, (1,), (1,)))

    def test_edge_to_unknown_node_rejected(self):
        g = self._mini()
        with pytest.raises(KeyError):
            g.add_edge("conv", "ghost")

    def test_validate_passes_for_consistent_graph(self):
        self._mini().validate()

    def test_validate_rejects_shape_mismatch(self):
        g = self._mini()
        bad = g.add_node(Node("bad", OpType.RELU, (9, 9, 9), (9, 9, 9)))
        g.add_edge("conv", "bad")
        g.add_edge("bad", "out")
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_rejects_dangling(self):
        g = self._mini()
        g.add_node(Node("orphan", OpType.RELU, (1,), (1,)))
        with pytest.raises(ValueError):
            g.validate()

    def test_node_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Node("x", OpType.RELU, (0, 3), (1, 3))

    def test_topological_order_respects_edges(self):
        g = self._mini()
        order = [n.name for n in g.topological()]
        assert order.index("in") < order.index("conv") < order.index("out")


class TestTrace:
    def test_traced_params_equal_model_params(self):
        model = build_baseline_resnet18(in_channels=5)
        graph = trace_model(model, (100, 100))
        assert graph.total_params() == count_parameters(model)

    def test_no_pool_variant_has_no_maxpool_node(self):
        model = SearchableResNet18(kernel_size=3, padding=1, pool_choice=0, initial_output_feature=32)
        graph = trace_model(model, (64, 64))
        assert graph.ops(OpType.MAX_POOL) == []

    def test_residual_adds_have_two_producers(self):
        model = SearchableResNet18(kernel_size=3, padding=1, pool_choice=0, initial_output_feature=32)
        graph = trace_model(model, (64, 64))
        adds = graph.ops(OpType.ADD)
        assert len(adds) == 8  # 2 blocks x 4 stages
        for add in adds:
            assert len(graph.predecessors(add)) == 2

    def test_traced_shapes_match_real_forward(self):
        model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                                   pool_choice=1, kernel_size_pool=3, stride_pool=2,
                                   initial_output_feature=32)
        graph = trace_model(model, (64, 64))
        out_node = graph.ops(OpType.OUTPUT)[0]
        x = Tensor(np.zeros((1, 5, 64, 64), dtype=np.float32))
        model.eval()
        real = model(x)
        assert tuple(real.shape[1:]) == out_node.out_shape

    def test_trace_rejects_collapsing_input(self):
        model = build_baseline_resnet18(in_channels=5)
        # Stem leaves a 2x2 map; the 3x3/2 max pool then collapses it.
        with pytest.raises(ValueError):
            trace_model(model, (4, 4))


class TestFlops:
    def test_conv_flops_formula(self):
        node = Node("c", OpType.CONV, (3, 10, 10), (8, 10, 10),
                    attrs={"in_channels": 3, "out_channels": 8, "kernel": 3, "stride": 1, "padding": 1})
        assert node_flops(node) == 2 * 3 * 9 * 8 * 100

    def test_fc_flops(self):
        node = Node("f", OpType.FC, (128,), (2,), attrs={"in_features": 128, "out_features": 2})
        assert node_flops(node) == 2 * 128 * 2

    def test_io_nodes_free(self):
        assert node_flops(Node("i", OpType.INPUT, (3, 4, 4), (3, 4, 4))) == 0

    def test_baseline_total_in_expected_range(self):
        graph = trace_model(build_baseline_resnet18(in_channels=5), (100, 100))
        total = count_graph_flops(graph)
        # Hand-computed: ~0.70 GFLOPs for ResNet-18 at 100x100.
        assert 0.6e9 < total < 0.8e9

    def test_flops_scale_with_resolution(self):
        model = SearchableResNet18(kernel_size=3, padding=1, pool_choice=0, initial_output_feature=32)
        small = count_graph_flops(trace_model(model, (50, 50)))
        large = count_graph_flops(trace_model(model, (100, 100)))
        assert large / small == pytest.approx(4.0, rel=0.2)
