"""Acceptance tests for the obs consolidation (ISSUE 4 criteria).

- An 8-trial chaos-free smoke sweep with a JSONL sink yields spans
  covering >= 95% of the experiment wall-time, with worker fold spans
  parented to trial spans across process boundaries, and ``repro obs
  report`` renders the counters from the file alone.
- A chaos run through ``evaluate(configs, resilient=True)`` stitches
  worker "evaluate" spans to the caller's span.
- The deprecated evaluator shims warn but return bitwise-equal values.
"""

from __future__ import annotations

import os
import shutil
import warnings

import pytest

import repro.obs as obs
from repro.cli import main as cli_main
from repro.nas import (
    Experiment,
    FailureInjector,
    GridSearch,
    TrainingEvaluator,
    TrialStore,
)
from repro.nas.config import ModelConfig
from repro.nas.searchspace import DEFAULT_SPACE
from repro.obs import aggregate_metrics, read_events, render_report, span_coverage


@pytest.fixture()
def clean_obs():
    obs.shutdown(final_snapshot=False)
    obs.registry().reset()
    yield
    obs.shutdown(final_snapshot=False)
    obs.registry().reset()


def _tiny_evaluator(**overrides) -> TrainingEvaluator:
    kwargs = dict(samples_per_class=2, patch_size=24, epochs=1, k=2,
                  regions=["nebraska"], seed=0)
    kwargs.update(overrides)
    return TrainingEvaluator(**kwargs)


def _configs(n: int) -> list[ModelConfig]:
    return DEFAULT_SPACE.configs()[:n]


class TestSmokeSweepAcceptance:
    @pytest.fixture(scope="class")
    def sweep_log(self, tmp_path_factory):
        """Run the 8-trial smoke sweep once; several tests inspect it."""
        obs.shutdown(final_snapshot=False)
        obs.registry().reset()
        tmp = tmp_path_factory.mktemp("obs-smoke")
        log = tmp / "smoke_obs.jsonl"
        evaluator = _tiny_evaluator(executor="process", workers=2)
        obs.configure(jsonl_path=log, reset_metrics=True)
        try:
            experiment = Experiment(
                evaluator=evaluator,
                strategy=GridSearch(DEFAULT_SPACE),
                store=TrialStore(),
                failure_injector=FailureInjector.none(),
            )
            result = experiment.run(budget=8)
        finally:
            evaluator.close()
            obs.shutdown()
        assert result.launched == 8 and result.failed == 0
        artifact = os.environ.get("REPRO_OBS_ARTIFACT", "")
        if artifact:  # CI uploads the smoke sweep's metrics log
            shutil.copyfile(log, artifact)
        return log

    def test_span_coverage_at_least_95_percent(self, sweep_log):
        events = read_events(sweep_log)
        coverage = span_coverage(events, parent_name="experiment.run")
        assert coverage >= 0.95, f"span coverage {coverage:.1%} < 95%"

    def test_worker_fold_spans_parent_to_trial_spans(self, sweep_log):
        events = read_events(sweep_log)
        spans = [e for e in events if e["type"] == "span"]
        by_id = {e["span"]: e for e in spans}
        folds = [e for e in spans if e["name"] == "fold"]
        trials = [e for e in spans if e["name"] == "trial"]
        assert trials and folds
        main_pid = trials[0]["pid"]
        worker_folds = [e for e in folds if e["pid"] != main_pid]
        assert worker_folds, "no fold spans were recorded from pool workers"
        for fold in folds:
            parent = by_id.get(fold["parent"])
            assert parent is not None, "fold span has an unknown parent"
            assert parent["name"] == "trial"
            assert fold["trace"] == parent["trace"]

    def test_trial_spans_parent_to_experiment_run(self, sweep_log):
        events = read_events(sweep_log)
        spans = [e for e in events if e["type"] == "span"]
        by_id = {e["span"]: e for e in spans}
        (run,) = [e for e in spans if e["name"] == "experiment.run"]
        trials = [e for e in spans if e["name"] == "trial"]
        assert len(trials) == 8
        assert all(by_id[t["parent"]] is run for t in trials)

    def test_counters_recoverable_from_file_alone(self, sweep_log):
        agg = aggregate_metrics(read_events(sweep_log))
        counters = {c["name"]: c for c in agg["counters"]
                    if not c.get("labels")}
        labeled = {(c["name"], tuple(sorted(c.get("labels", {}).items()))): c["value"]
                   for c in agg["counters"]}
        assert labeled[("repro_trials_total", (("status", "ok"),))] == 8
        assert counters["repro_trial_attempts_total"]["value"] == 8
        hists = {h["name"] for h in agg["histograms"]}
        assert "repro_trial_duration_seconds" in hists
        assert "repro_train_fold_seconds" in hists
        fold_hist = next(h for h in agg["histograms"]
                         if h["name"] == "repro_train_fold_seconds")
        assert fold_hist["count"] == 16  # 8 trials x 2 folds

    def test_report_renders_from_file(self, sweep_log, capsys):
        exit_code = cli_main(["obs", "report", str(sweep_log)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "trace coverage of 'experiment.run'" in out
        assert "repro_trials_total" in out
        assert "repro_trial_duration_seconds" in out
        assert "fold < trial" in out

    def test_export_chrome_and_prometheus(self, sweep_log, tmp_path, capsys):
        trace_out = tmp_path / "trace.json"
        prom_out = tmp_path / "metrics.prom"
        assert cli_main(["obs", "export", str(sweep_log), "--format", "chrome",
                         "--out", str(trace_out)]) == 0
        assert cli_main(["obs", "export", str(sweep_log), "--format", "prom",
                         "--out", str(prom_out)]) == 0
        assert trace_out.stat().st_size > 0
        text = prom_out.read_text()
        assert "# TYPE repro_trials_total counter" in text


class TestChaosStitching:
    def test_resilient_batch_stitches_worker_spans(self, clean_obs, tmp_path):
        log = tmp_path / "chaos_obs.jsonl"
        obs.configure(jsonl_path=log, reset_metrics=True)
        configs = _configs(3)
        evaluator = _tiny_evaluator(executor="process", workers=2)
        try:
            with obs.span("chaos.batch") as parent:
                outcomes = evaluator.evaluate(configs, resilient=True)
            obs.flush()
        finally:
            evaluator.close()
            obs.shutdown()
        assert all(o.ok for o in outcomes)
        assert all(o.span_id for o in outcomes)  # worker span ids round-trip
        events = read_events(log)
        spans = [e for e in events if e["type"] == "span"]
        evals = [e for e in spans if e["name"] == "evaluate"]
        assert len(evals) == 3
        main_pid = os.getpid()
        assert any(e["pid"] != main_pid for e in evals)
        assert all(e["parent"] == parent.span_id for e in evals)
        assert all(e["trace"] == parent.trace_id for e in evals)
        assert {e["span"] for e in evals} == {o.span_id for o in outcomes}

    def test_faulty_trials_keep_outcome_envelopes(self, clean_obs):
        # An injected failure fails its own outcome while the rest of
        # the batch still returns results (serial resilient map).
        from dataclasses import replace as _dc_replace

        configs = _configs(1)

        class BoomEvaluator(TrainingEvaluator):
            def _dataset(self, channels):
                if channels == 7:
                    raise RuntimeError("injected dataset failure")
                return super()._dataset(channels)

        boom = BoomEvaluator(samples_per_class=2, patch_size=24, epochs=1, k=2,
                             regions=["nebraska"], seed=0)
        distinct = [configs[0], _dc_replace(configs[0], channels=7)]
        assert distinct[0].channels != 7
        outcomes = boom.evaluate(distinct, resilient=True)
        assert outcomes[0].ok and outcomes[0].result is not None
        assert not outcomes[1].ok and outcomes[1].result is None
        assert "injected dataset failure" in outcomes[1].error
        assert outcomes[1].config == distinct[1]
        with pytest.raises(RuntimeError, match="injected dataset failure"):
            outcomes[1].unwrap()


class TestDeprecatedShims:
    def test_evaluate_many_warns_and_matches(self):
        evaluator = _tiny_evaluator()
        configs = _configs(2)
        with pytest.warns(DeprecationWarning, match="evaluate_many\\(\\) is deprecated"):
            legacy = evaluator.evaluate_many(configs)
        modern = [o.unwrap() for o in evaluator.evaluate(configs)]
        assert legacy == modern  # bitwise-equal EvalResults

    def test_evaluate_many_resilient_warns_and_matches(self):
        evaluator = _tiny_evaluator()
        configs = _configs(2)
        with pytest.warns(DeprecationWarning,
                          match="evaluate_many_resilient\\(\\) is deprecated"):
            legacy = evaluator.evaluate_many_resilient(configs)
        modern = evaluator.evaluate(configs, resilient=True)
        assert [item.ok for item in legacy] == [o.ok for o in modern]
        assert [item.value for item in legacy] == [o.result for o in modern]

    def test_single_config_contract_unchanged(self):
        evaluator = _tiny_evaluator()
        config = _configs(1)[0]
        result = evaluator.evaluate(config)
        assert hasattr(result, "accuracy") and hasattr(result, "fold_accuracies")
        with pytest.raises(TypeError, match="resilient"):
            evaluator.evaluate(config, resilient=True)


class TestProcessServingObs:
    """PR 7: worker-process batch spans stitch into the parent trace.

    The serving :class:`~repro.serve.WorkerPool` captures
    :func:`repro.obs.propagated_context` at startup; every worker batch
    runs under :func:`repro.obs.adopt_context`, so its
    ``serve.worker.batch`` spans must land in the parent's JSONL with
    the parent trace/span ids, and per-pid metric snapshots must carry
    only the worker's own counts (fork-inherited counters are zeroed
    before the first worker-side increment).
    """

    def test_worker_batch_spans_and_counters_stitch_across_pids(
            self, clean_obs, tmp_path):
        import numpy as np

        from repro.deploy import load_runtime
        from repro.nn import SearchableResNet18
        from repro.onnxlite.export import export_model
        from repro.serve import BatchPolicy, PlanServer

        model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2,
                                   padding=1, pool_choice=0,
                                   initial_output_feature=32, seed=3)
        plan = load_runtime(export_model(model, input_hw=(24, 24))).compile()
        log = tmp_path / "serve_obs.jsonl"
        obs.configure(jsonl_path=log, reset_metrics=True)
        images = np.random.default_rng(0).standard_normal(
            (4, 5, 24, 24)).astype(np.float32)
        policy = BatchPolicy(max_batch_size=2, max_queue_delay_ms=1.0,
                             max_queue_depth=16, replicas=1,
                             worker_mode="process")
        try:
            with obs.span("serve.session") as parent:
                with PlanServer(plan, policy=policy, cpus=1) as server:
                    rows = [server.infer(img) for img in images]
            obs.flush()
        finally:
            obs.shutdown()
        assert all(r.shape == (2,) for r in rows)

        events = read_events(log)
        spans = [e for e in events if e["type"] == "span"]
        batches = [e for e in spans if e["name"] == "serve.worker.batch"]
        assert batches, "no worker batch spans reached the parent's sink"
        main_pid = os.getpid()
        # Spans were recorded by the worker process, not the parent...
        assert all(e["pid"] != main_pid for e in batches)
        # ...yet stitch into the parent's trace under the session span.
        assert all(e["trace"] == parent.trace_id for e in batches)
        assert all(e["parent"] == parent.span_id for e in batches)

        agg = aggregate_metrics(events)
        counters = {c["name"]: c["value"] for c in agg["counters"]
                    if not c.get("labels")}
        # Exactly one count per batch span: the worker's fork-inherited
        # registry was zeroed, so nothing from the parent double-counts.
        assert counters.get("repro_serve_worker_batches_total") == len(batches)
        assert counters.get("repro_serve_worker_deaths_total", 0) == 0
