"""Latency breakdown reports and the energy extension."""

import pytest

from repro.graph.trace import trace_model
from repro.latency import (
    DEVICE_PROFILES,
    breakdown_table,
    estimate_energy_mj,
    latency_breakdown,
)
from repro.latency.energy import ENERGY_MODELS
from repro.nn import SearchableResNet18, build_baseline_resnet18


def _graph(pool=1, f=64):
    model = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                               pool_choice=pool, kernel_size_pool=3, stride_pool=2,
                               initial_output_feature=f)
    return trace_model(model, (100, 100))


class TestBreakdown:
    def test_rows_sum_to_prediction(self):
        from repro.latency.predictors import LatencyPredictor

        graph = _graph()
        profile = DEVICE_PROFILES["cortexA76cpu"]
        rows = latency_breakdown(graph, profile)
        total = sum(r["ms"] for r in rows)
        assert total == pytest.approx(LatencyPredictor(profile).predict_graph(graph), rel=1e-6)

    def test_sorted_descending(self):
        rows = latency_breakdown(_graph(), DEVICE_PROFILES["myriadvpu"])
        costs = [r["ms"] for r in rows]
        assert costs == sorted(costs, reverse=True)

    def test_vpu_pool_tops_breakdown(self):
        rows = latency_breakdown(_graph(pool=1), DEVICE_PROFILES["myriadvpu"])
        assert rows[0]["type"] == "maxpool"

    def test_table_renders(self):
        text = breakdown_table(_graph(), device="adreno640gpu", top=5)
        assert "adreno640gpu" in text and "share" in text


class TestEnergy:
    def test_positive_and_scales_with_model(self):
        small = estimate_energy_mj(_graph(f=32))
        big = estimate_energy_mj(trace_model(build_baseline_resnet18(5), (100, 100)))
        assert 0 < small < big

    def test_all_devices_have_models(self):
        graph = _graph(f=32)
        for device in DEVICE_PROFILES:
            assert device in ENERGY_MODELS
            assert estimate_energy_mj(graph, device) > 0

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            estimate_energy_mj(_graph(f=32), "tpu")

    def test_dynamic_compute_dominates(self):
        # The un-pooled model runs ~4x the FLOPs; even against the VPU's
        # long pooled latency (idle energy), dynamic compute dominates.
        pooled = estimate_energy_mj(_graph(pool=1, f=32), "myriadvpu")
        unpooled = estimate_energy_mj(_graph(pool=0, f=32), "myriadvpu")
        assert unpooled > pooled

    def test_cpu_least_efficient_per_flop(self):
        graph = _graph(pool=0, f=64)
        assert estimate_energy_mj(graph, "cortexA76cpu") > estimate_energy_mj(graph, "adreno640gpu")
