"""Post-training quantization: primitives and model-level behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import SearchableResNet18, count_parameters
from repro.quant import (
    AffineQuantizer,
    fake_quantize_model,
    quantization_error,
    quantize_affine,
    quantize_state_dict,
    quantized_size_mb,
)

float_tensors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 200),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


class TestAffineQuantizer:
    def test_symmetric_zero_point_is_zero(self):
        quantizer = AffineQuantizer.fit(np.array([-2.0, 3.0]), symmetric=True)
        assert quantizer.zero_point == 0

    def test_roundtrip_error_bounded_by_half_scale(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        quantizer = AffineQuantizer.fit(values, symmetric=True)
        reconstructed = quantizer.roundtrip(values)
        assert np.abs(values - reconstructed).max() <= 0.5 * quantizer.scale + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(float_tensors)
    def test_codes_within_dtype_range(self, values):
        codes, quantizer = quantize_affine(values)
        assert codes.min() >= quantizer.qmin
        assert codes.max() <= quantizer.qmax
        assert codes.dtype == np.int8

    @settings(max_examples=30, deadline=None)
    @given(float_tensors)
    def test_roundtrip_idempotent(self, values):
        """Quantizing already-quantized values is exact."""
        quantizer = AffineQuantizer.fit(values, symmetric=True)
        once = quantizer.roundtrip(values)
        twice = quantizer.roundtrip(once)
        np.testing.assert_allclose(once, twice, atol=1e-6)

    def test_asymmetric_covers_skewed_range(self):
        values = np.linspace(10.0, 11.0, 100)
        quantizer = AffineQuantizer.fit(values, symmetric=False)
        reconstructed = quantizer.roundtrip(values)
        # Range extends to zero (TFLite convention) -> scale 11/255.
        assert np.abs(values - reconstructed).max() <= 0.5 * quantizer.scale + 1e-9
        # Symmetric wastes half the integer range on negatives.
        symmetric = AffineQuantizer.fit(values, symmetric=True)
        assert quantizer.scale < symmetric.scale

    def test_asymmetric_zero_exactly_representable(self):
        values = np.array([3.0, 9.0])
        quantizer = AffineQuantizer.fit(values, symmetric=False)
        assert quantizer.dequantize(np.array([quantizer.zero_point], dtype=np.int8))[0] == 0.0

    def test_int16_more_precise_than_int8(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=500)
        assert quantization_error(values, "int16") < quantization_error(values, "int8")

    def test_validation(self):
        with pytest.raises(ValueError):
            AffineQuantizer(scale=0.0, zero_point=0)
        with pytest.raises(ValueError):
            AffineQuantizer(scale=1.0, zero_point=0, dtype="int4")
        with pytest.raises(ValueError):
            AffineQuantizer.fit(np.zeros(0))

    def test_constant_tensor_safe(self):
        codes, quantizer = quantize_affine(np.zeros(10))
        np.testing.assert_array_equal(quantizer.dequantize(codes), np.zeros(10))


class TestModelQuantization:
    def _model(self):
        return SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                                  pool_choice=0, initial_output_feature=32, seed=0)

    def test_state_dict_quantization_targets_weights_only(self):
        model = self._model()
        state = model.state_dict()
        quantized, quantizers = quantize_state_dict(state)
        assert set(state) == set(quantized)
        # Conv/FC weights quantized; BN scale/shift and buffers untouched.
        assert "conv1.weight" in quantizers
        assert "bn1.weight" not in quantizers
        np.testing.assert_array_equal(quantized["bn1.weight"], state["bn1.weight"])

    def test_fake_quant_changes_weights_slightly(self):
        model = self._model()
        original = model.conv1.weight.data.copy()
        quantizers = fake_quantize_model(model)
        changed = model.conv1.weight.data
        assert not np.array_equal(original, changed)
        relative = np.abs(original - changed).max() / (np.abs(original).max() + 1e-12)
        assert relative < 0.01  # int8 error is sub-percent at the tensor scale
        assert "fc.weight" in quantizers

    def test_fake_quant_preserves_predictions_mostly(self):
        from repro.tensor.tensor import Tensor, no_grad

        model = self._model()
        model.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5, 32, 32)).astype(np.float32))
        with no_grad():
            before = model(x).data.copy()
        fake_quantize_model(model)
        with no_grad():
            after = model(x).data
        # Logits move, but by far less than their scale.
        assert np.abs(before - after).max() < 0.25 * (np.abs(before).max() + 1.0)

    def test_quantized_size_is_about_4x_smaller(self):
        model = self._model()
        fp32_mb = 4 * count_parameters(model) / 1e6
        int8_mb = quantized_size_mb(model)
        assert 3.5 < fp32_mb / int8_mb < 4.2

    def test_int16_size_between_int8_and_fp32(self):
        model = self._model()
        int8 = quantized_size_mb(model, "int8")
        int16 = quantized_size_mb(model, "int16")
        fp32 = 4 * count_parameters(model) / 1e6
        assert int8 < int16 < fp32
