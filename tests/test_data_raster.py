"""Raster container: geotransform math, windows, file roundtrips."""

import numpy as np
import pytest

from repro.data.raster import GeoTransform, Raster, load_raster, save_raster


class TestGeoTransform:
    def test_pixel_world_roundtrip(self):
        transform = GeoTransform(origin_x=500_000.0, origin_y=4_600_000.0,
                                 pixel_width=1.0, pixel_height=-1.0)
        x, y = transform.pixel_to_world(10, 20)
        assert (x, y) == (500_020.0, 4_599_990.0)
        row, col = transform.world_to_pixel(x, y)
        assert (row, col) == (10.0, 20.0)

    def test_shear_unsupported_inverse(self):
        transform = GeoTransform(shear_x=0.1)
        with pytest.raises(NotImplementedError):
            transform.world_to_pixel(0.0, 0.0)


class TestRaster:
    def _raster(self):
        rng = np.random.default_rng(0)
        return Raster(
            data=rng.normal(size=(3, 32, 32)),
            transform=GeoTransform(origin_x=100.0, origin_y=200.0),
            band_names=("dem", "red", "nir"),
        )

    def test_2d_promoted_to_single_band(self):
        raster = Raster(data=np.zeros((8, 8)))
        assert raster.bands == 1

    def test_band_lookup(self):
        raster = self._raster()
        np.testing.assert_array_equal(raster.band("red"), raster.data[1])
        with pytest.raises(KeyError):
            raster.band("swir")

    def test_band_name_count_checked(self):
        with pytest.raises(ValueError):
            Raster(data=np.zeros((2, 4, 4)), band_names=("one",))

    def test_window_extracts_and_shifts_origin(self):
        raster = self._raster()
        window = raster.window(4, 6, 8)
        assert window.shape == (8, 8)
        np.testing.assert_array_equal(window.data, raster.data[:, 4:12, 6:14])
        assert window.transform.origin_x == 106.0
        assert window.transform.origin_y == 196.0

    def test_window_bounds_checked(self):
        with pytest.raises(ValueError):
            self._raster().window(30, 30, 8)

    def test_file_roundtrip(self, tmp_path):
        raster = self._raster()
        path = tmp_path / "scene.rst"
        size = save_raster(raster, path)
        assert size == path.stat().st_size
        back = load_raster(path)
        np.testing.assert_array_equal(back.data, raster.data)
        assert back.transform == raster.transform
        assert back.crs == raster.crs
        assert back.band_names == raster.band_names

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rst"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ValueError):
            load_raster(path)

    def test_scene_to_raster_integration(self, tmp_path):
        from repro.data.regions import REGIONS
        from repro.data.scene_sampler import generate_region_scene

        rng = np.random.default_rng(1)
        scene = generate_region_scene(96, rng, REGIONS["illinois"].terrain)
        stack = scene.channel_stack(5)
        raster = Raster(data=stack, band_names=("dem", "red", "green", "blue", "nir"))
        save_raster(raster, tmp_path / "region.rst")
        back = load_raster(tmp_path / "region.rst")
        np.testing.assert_array_equal(back.band("dem"), stack[0])
