"""Memory estimators and the layer profiler."""

import numpy as np
import pytest

from repro.graph.trace import trace_model
from repro.memory import (
    activation_memory_bytes,
    parameter_memory_bytes,
    peak_inference_memory_bytes,
)
from repro.memory.estimator import memory_report
from repro.nn import SearchableResNet18, build_baseline_resnet18, count_parameters
from repro.profiling import LayerProfiler, profile_model, profile_table


def _winner():
    return SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                              pool_choice=0, initial_output_feature=32)


class TestMemoryEstimators:
    def test_parameter_bytes(self):
        model = _winner()
        graph = trace_model(model, (64, 64))
        assert parameter_memory_bytes(graph) == 4 * count_parameters(model)

    def test_activation_total_exceeds_peak(self):
        graph = trace_model(_winner(), (64, 64))
        assert activation_memory_bytes(graph) >= peak_inference_memory_bytes(graph)

    def test_peak_scales_with_batch(self):
        graph = trace_model(_winner(), (64, 64))
        assert peak_inference_memory_bytes(graph, batch=4) == 4 * peak_inference_memory_bytes(graph, batch=1)

    def test_peak_nontrivial_lower_bound(self):
        # The peak must hold at least the largest single tensor.
        graph = trace_model(_winner(), (64, 64))
        biggest = max(
            int(np.prod(node.out_shape)) for node in graph.nodes()
        )
        assert peak_inference_memory_bytes(graph) >= 4 * biggest

    def test_no_pool_variant_needs_more_activation_memory(self):
        pooled = SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                                    pool_choice=1, kernel_size_pool=3, stride_pool=2,
                                    initial_output_feature=32)
        g_pool = trace_model(pooled, (100, 100))
        g_nopool = trace_model(_winner(), (100, 100))
        assert peak_inference_memory_bytes(g_nopool) > peak_inference_memory_bytes(g_pool)

    def test_memory_report_keys(self):
        report = memory_report(_winner(), input_hw=(64, 64))
        assert set(report) == {"storage_mb", "parameter_bytes", "activation_bytes", "peak_inference_bytes"}
        assert report["storage_mb"] == pytest.approx(11.2, rel=0.01)


class TestProfiler:
    def test_stages_and_positive_times(self):
        profiles = profile_model(_winner(), batch=2, input_hw=(32, 32), repeats=1)
        names = [p.name for p in profiles]
        assert names == ["stem", "layer1", "layer2", "layer3", "layer4", "head"]
        assert all(p.seconds > 0 for p in profiles)

    def test_flops_attributed_to_stages(self):
        from repro.graph.flops import count_graph_flops

        model = _winner()
        profiles = profile_model(model, batch=2, input_hw=(32, 32), repeats=1)
        graph_total = count_graph_flops(trace_model(model, (32, 32)))
        assert sum(p.flops for p in profiles) == pytest.approx(2 * graph_total, rel=1e-6)

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            LayerProfiler(_winner()).run(np.zeros((1, 5, 32, 32), dtype=np.float32), repeats=0)

    def test_table_renders(self):
        profiles = profile_model(_winner(), batch=1, input_hw=(32, 32), repeats=1)
        text = profile_table(profiles)
        assert "stem" in text and "GFLOP/s" in text


class TestTrainingStepProfiler:
    def test_phase_split_and_workspace_counters(self):
        from repro.profiling import profile_training_step

        profile = profile_training_step(_winner(), batch=2, input_hw=(32, 32), steps=2)
        assert profile.forward_s > 0 and profile.backward_s > 0 and profile.optimizer_s > 0
        assert profile.total_s == pytest.approx(
            profile.forward_s + profile.backward_s + profile.optimizer_s
        )
        assert profile.images_per_s > 0
        # Step 2 repeats step 1's shapes: the pool recycles rather than grows.
        assert profile.workspace["hits"] > 0
        assert profile.workspace["misses"] > 0

    def test_workspaces_off_reports_zero_counters(self):
        from repro.profiling import profile_training_step

        profile = profile_training_step(_winner(), batch=2, input_hw=(32, 32),
                                        steps=1, workspaces=False)
        assert profile.workspace["hits"] == 0 and profile.workspace["misses"] == 0

    def test_steps_validation(self):
        from repro.profiling import profile_training_step

        with pytest.raises(ValueError):
            profile_training_step(_winner(), steps=0)

    def test_training_table_renders(self):
        from repro.profiling import profile_training_step, training_profile_table

        profile = profile_training_step(_winner(), batch=2, input_hw=(32, 32), steps=1)
        text = training_profile_table(profile)
        assert "forward" in text and "backward" in text and "optimizer" in text
