"""Terrain synthesis: DEM statistics, channels, roads, crossing signatures."""

import numpy as np
import pytest

from repro.data.terrain import (
    Scene,
    TerrainParams,
    channel_profile,
    generate_scene,
    road_profile,
    synthesize_dem,
)


@pytest.fixture()
def params():
    return TerrainParams()


class TestSynthesizeDem:
    def test_shape_dtype_finite(self, rng, params):
        dem = synthesize_dem(64, rng, params)
        assert dem.shape == (64, 64)
        assert dem.dtype == np.float32
        assert np.isfinite(dem).all()

    def test_relief_controls_amplitude(self, params):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        flat = synthesize_dem(64, rng_a, TerrainParams(relief=1.0, tilt=0.0))
        steep = synthesize_dem(64, rng_b, TerrainParams(relief=10.0, tilt=0.0))
        assert steep.max() - steep.min() == pytest.approx(10 * (flat.max() - flat.min()), rel=1e-4)

    def test_beta_controls_roughness(self):
        # Rough terrain (small beta) has more high-frequency energy.
        rough = synthesize_dem(128, np.random.default_rng(1), TerrainParams(beta=1.6, tilt=0.0))
        smooth = synthesize_dem(128, np.random.default_rng(1), TerrainParams(beta=3.0, tilt=0.0))
        gradient_energy = lambda d: float(np.abs(np.diff(d, axis=0)).mean())
        assert gradient_energy(rough) > gradient_energy(smooth)

    def test_deterministic_per_seed(self, params):
        a = synthesize_dem(32, np.random.default_rng(5), params)
        b = synthesize_dem(32, np.random.default_rng(5), params)
        np.testing.assert_array_equal(a, b)

    def test_too_small_rejected(self, rng, params):
        with pytest.raises(ValueError):
            synthesize_dem(4, rng, params)


class TestProfiles:
    def test_channel_depth_bounded_and_centered(self, rng, params):
        depth, path = channel_profile(64, rng, params)
        assert depth.shape == (64, 64)
        assert depth.max() <= params.channel_depth + 1e-5
        assert (path >= 0).all() and (path <= 63).all()
        # Depth is maximal at the centerline.
        col = 30
        center_row = int(round(path[col]))
        assert depth[center_row, col] >= 0.9 * depth[:, col].max()

    def test_road_height_bounded_with_plateau(self, rng, params):
        height, path = road_profile(64, rng, params)
        assert height.max() <= params.road_height + 1e-5
        assert (height >= 0).all()
        # Far from the road the embankment is exactly zero.
        assert (height == 0).sum() > 64 * 64 / 2


class TestGenerateScene:
    def test_positive_scene_contains_both_features(self, rng, params):
        scene = generate_scene(64, rng, params, crossing=True)
        assert scene.has_crossing
        assert scene.channel_mask.any()
        assert scene.road_mask.any()

    def test_negative_scene_never_has_both(self, params):
        for seed in range(12):
            scene = generate_scene(48, np.random.default_rng(seed), params, crossing=False)
            assert not (scene.channel_mask.any() and scene.road_mask.any())
            assert not scene.has_crossing

    def test_crossing_embankment_rises_above_channel(self, params):
        # Where road and channel overlap, the fill lifts the DEM relative
        # to the un-filled channel on either side (the culvert signature).
        for seed in range(8):
            rng = np.random.default_rng(seed)
            scene = generate_scene(64, rng, params, crossing=True)
            overlap = scene.channel_mask & scene.road_mask
            channel_only = scene.channel_mask & ~scene.road_mask
            if overlap.any() and channel_only.any():
                assert scene.dem[overlap].mean() > scene.dem[channel_only].mean()
                return
        pytest.fail("no crossing scene produced an overlap region in 8 seeds")

    def test_water_collects_in_channels_only(self, rng, params):
        scene = generate_scene(64, rng, params, crossing=True)
        if scene.water_mask.any():
            assert (scene.water_mask & ~scene.channel_mask).sum() == 0

    def test_masks_are_boolean(self, rng, params):
        scene = generate_scene(32, rng, params, crossing=True)
        for mask in (scene.channel_mask, scene.road_mask, scene.water_mask):
            assert mask.dtype == bool
