"""Quantized onnxlite export and deployment."""

import numpy as np
import pytest

from repro.deploy import load_runtime
from repro.nn import SearchableResNet18
from repro.onnxlite import export_model
from repro.onnxlite.reader import proto_from_bytes
from repro.onnxlite.schema import TensorProto
from repro.quant import export_quantized_model, quantized_model_size_mb
from repro.tensor.tensor import Tensor, no_grad


def _model(seed=0):
    return SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                              pool_choice=0, initial_output_feature=32, seed=seed)


class TestQuantizedTensorProto:
    def test_quantized_tensor_roundtrips_through_dequantize(self):
        codes = np.array([-128, 0, 127], dtype=np.int8)
        tensor = TensorProto("w", codes, scale=0.01, zero_point=0)
        assert tensor.quantized
        np.testing.assert_allclose(tensor.dequantized(), [-1.28, 0.0, 1.27], rtol=1e-6)

    def test_integer_data_requires_scale(self):
        with pytest.raises(ValueError):
            TensorProto("w", np.zeros(3, dtype=np.int8))

    def test_float_tensor_not_quantized(self):
        tensor = TensorProto("w", np.zeros(3))
        assert not tensor.quantized
        assert tensor.dequantized() is tensor.data


class TestQuantizedExport:
    def test_file_is_about_4x_smaller(self):
        model = _model()
        fp32 = len(export_model(model, input_hw=(64, 64)))
        int8 = len(export_quantized_model(model, input_hw=(64, 64)))
        assert 3.5 < fp32 / int8 < 4.3
        assert quantized_model_size_mb(model, (64, 64)) == pytest.approx(int8 / 1e6)

    def test_container_roundtrip_preserves_quantization(self):
        blob = export_quantized_model(_model(), input_hw=(64, 64))
        proto = proto_from_bytes(blob)
        assert proto.metadata["quantization"] == "int8"
        conv = proto.initializer("conv1.weight")
        assert conv.quantized and conv.dtype == "int8"
        bn = proto.initializer("bn1.weight")
        assert not bn.quantized and bn.dtype == "float32"

    def test_int16_export_in_between(self):
        model = _model()
        int8 = len(export_quantized_model(model, input_hw=(64, 64), dtype="int8"))
        int16 = len(export_quantized_model(model, input_hw=(64, 64), dtype="int16"))
        fp32 = len(export_model(model, input_hw=(64, 64)))
        assert int8 < int16 < fp32


class TestQuantizedDeployment:
    def test_runtime_runs_quantized_model_close_to_fp32(self):
        model = _model(seed=4)
        model.eval()
        x = np.random.default_rng(0).normal(size=(3, 5, 32, 32)).astype(np.float32)
        with no_grad():
            reference = model(Tensor(x)).data
        runtime = load_runtime(export_quantized_model(model, input_hw=(32, 32)))
        quantized_out = runtime.run(x)
        # int8 weight error perturbs logits slightly but not wildly.
        assert np.abs(quantized_out - reference).max() < 0.35 * (np.abs(reference).max() + 1.0)
        agreement = (quantized_out.argmax(axis=1) == reference.argmax(axis=1)).mean()
        assert agreement >= 2 / 3

    def test_quantized_file_roundtrip_via_disk(self, tmp_path):
        model = _model()
        path = tmp_path / "model_int8.onxl"
        export_quantized_model(model, input_hw=(32, 32), path=path)
        runtime = load_runtime(path)
        out = runtime.run(np.zeros((1, 5, 32, 32), dtype=np.float32))
        assert out.shape == (1, 2)
        assert np.isfinite(out).all()
