"""Tests for deterministic RNG management."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import SeedSequenceFactory, rng_from_seed, spawn_rngs, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, (2, 3)) == stable_hash("a", 1, (2, 3))

    def test_field_separator_prevents_concatenation_collisions(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_respects_bit_width(self):
        for bits in (8, 16, 32, 64, 128):
            value = stable_hash("x", bits=bits)
            assert 0 <= value < 2**bits

    def test_rejects_bad_bit_width(self):
        with pytest.raises(ValueError):
            stable_hash("x", bits=7)
        with pytest.raises(ValueError):
            stable_hash("x", bits=0)

    @given(st.integers(), st.integers())
    def test_distinct_inputs_rarely_collide(self, a, b):
        if a != b:
            assert stable_hash(a) != stable_hash(b)


class TestRngFromSeed:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert rng_from_seed(gen) is gen

    def test_same_seed_same_stream(self):
        a = rng_from_seed(42).random(5)
        b = rng_from_seed(42).random(5)
        np.testing.assert_array_equal(a, b)


class TestSpawnRngs:
    def test_count_and_independence(self):
        gens = spawn_rngs(7, 3)
        assert len(gens) == 3
        draws = [g.random(4) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(5, 2)]
        b = [g.random() for g in spawn_rngs(5, 2)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSeedSequenceFactory:
    def test_same_key_same_stream(self):
        f = SeedSequenceFactory(3)
        assert f.rng("trial", 1).random() == f.rng("trial", 1).random()

    def test_different_keys_differ(self):
        f = SeedSequenceFactory(3)
        assert f.seed_for("a") != f.seed_for("b")

    def test_key_order_independent_of_call_order(self):
        f = SeedSequenceFactory(9)
        first = f.seed_for("z")
        f.seed_for("a")
        assert f.seed_for("z") == first

    def test_rngs_helper_counts(self):
        f = SeedSequenceFactory(0)
        gens = f.rngs(4, "fold")
        assert len(gens) == 4
        assert gens[0].random() != gens[1].random()
