"""Fusion edge cases on hand-built IR graphs."""

import pytest

from repro.graph.ir import Graph, Node, OpType
from repro.latency.fusion import fuse_graph
from repro.latency.kernels import extract_kernels


def _chain(*ops: OpType) -> Graph:
    """A linear graph input -> ops... -> output with matching shapes."""
    g = Graph()
    shape = (4, 8, 8)
    prev = g.add_node(Node("input", OpType.INPUT, shape, shape))
    for i, op in enumerate(ops):
        attrs = {}
        params = 0
        if op is OpType.CONV:
            attrs = {"in_channels": 4, "out_channels": 4, "kernel": 3, "stride": 1, "padding": 1}
            params = 144
        node = g.add_node(Node(f"n{i}", op, shape, shape, attrs=attrs, params=params))
        g.add_edge(prev, node)
        prev = node
    out = g.add_node(Node("output", OpType.OUTPUT, shape, shape))
    g.add_edge(prev, out)
    return g


class TestFusionChains:
    def test_conv_bn_relu_fuses_to_one(self):
        fused = fuse_graph(_chain(OpType.CONV, OpType.BATCH_NORM, OpType.RELU))
        assert len(fused) == 1
        assert extract_kernels(_chain(OpType.CONV, OpType.BATCH_NORM, OpType.RELU))[0].kernel_type == "conv-bn-relu"

    def test_conv_relu_without_bn_still_fuses(self):
        fused = fuse_graph(_chain(OpType.CONV, OpType.RELU))
        assert len(fused) == 1
        kernels = extract_kernels(_chain(OpType.CONV, OpType.RELU))
        assert kernels[0].kernel_type == "conv-bn-relu"

    def test_bare_conv(self):
        kernels = extract_kernels(_chain(OpType.CONV))
        assert len(kernels) == 1
        assert kernels[0].kernel_type == "conv-bn"

    def test_standalone_bn_and_relu_unfused(self):
        fused = fuse_graph(_chain(OpType.BATCH_NORM, OpType.RELU, OpType.RELU))
        # BN leads; the first RELU cannot fold into a BN-led kernel.
        assert len(fused) == 3

    def test_conv_bn_bn_only_fuses_first(self):
        fused = fuse_graph(_chain(OpType.CONV, OpType.BATCH_NORM, OpType.BATCH_NORM))
        assert len(fused) == 2
        assert [n.op for n in fused[0].folded] == [OpType.BATCH_NORM]

    def test_fanout_blocks_fusion(self):
        """A conv whose output feeds two consumers cannot fold its BN."""
        g = Graph()
        shape = (4, 8, 8)
        inp = g.add_node(Node("input", OpType.INPUT, shape, shape))
        conv = g.add_node(Node("conv", OpType.CONV, shape, shape,
                               attrs={"in_channels": 4, "out_channels": 4, "kernel": 3,
                                      "stride": 1, "padding": 1}, params=144))
        bn = g.add_node(Node("bn", OpType.BATCH_NORM, shape, shape, attrs={"channels": 4}, params=8))
        add = g.add_node(Node("add", OpType.ADD, shape, shape))
        out = g.add_node(Node("output", OpType.OUTPUT, shape, shape))
        g.add_edge(inp, conv)
        g.add_edge(conv, bn)   # consumer 1
        g.add_edge(conv, add)  # consumer 2 (skip path)
        g.add_edge(bn, add)
        g.add_edge(add, out)
        fused = fuse_graph(g)
        names = {op.lead.name: op for op in fused}
        assert names["conv"].folded == []  # fan-out prevented fusion
        assert "bn" in names and "add" in names

    def test_add_without_relu(self):
        g = Graph()
        shape = (2, 4, 4)
        inp = g.add_node(Node("input", OpType.INPUT, shape, shape))
        r1 = g.add_node(Node("r1", OpType.RELU, shape, shape))
        r2 = g.add_node(Node("r2", OpType.RELU, shape, shape))
        add = g.add_node(Node("add", OpType.ADD, shape, shape))
        out = g.add_node(Node("output", OpType.OUTPUT, shape, shape))
        g.add_edge(inp, r1)
        g.add_edge(inp, r2)
        g.add_edge(r1, add)
        g.add_edge(r2, add)
        g.add_edge(add, out)
        kernels = extract_kernels(g)
        kinds = {k.name: k.kernel_type for k in kernels}
        assert kinds["add"] == "add"


class TestKernelFeatures:
    def test_weight_bytes_from_params(self):
        kernels = extract_kernels(_chain(OpType.CONV, OpType.BATCH_NORM))
        assert kernels[0].weight_bytes == (144 + 0) * 4  # conv + (bn has 0 here)

    def test_memory_bytes_composition(self):
        (kernel,) = extract_kernels(_chain(OpType.CONV))
        assert kernel.memory_bytes == kernel.input_bytes + kernel.output_bytes + kernel.weight_bytes
