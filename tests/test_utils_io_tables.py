"""Tests for structured IO and table rendering."""

import json

import numpy as np
import pytest

from repro.utils.io import (
    atomic_write_text,
    iter_jsonl,
    read_json,
    read_jsonl,
    write_csv,
    write_json,
    write_jsonl,
)
from repro.utils.tables import format_cell, render_table
from repro.utils.timing import Stopwatch, Timer, format_duration


class TestJsonIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.json"
        write_json(path, {"a": [1, 2], "b": "s"})
        assert read_json(path) == {"a": [1, 2], "b": "s"}

    def test_numpy_types_serialized(self, tmp_path):
        path = tmp_path / "np.json"
        write_json(path, {"i": np.int64(3), "f": np.float32(0.5), "arr": np.arange(3), "b": np.bool_(True)})
        data = read_json(path)
        assert data == {"i": 3, "f": 0.5, "arr": [0, 1, 2], "b": True}

    def test_atomic_write_replaces(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert list(tmp_path.iterdir()) == [path]  # no temp leftovers


class TestJsonl:
    def test_roundtrip_and_append(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert write_jsonl(path, [{"x": 1}, {"x": 2}]) == 2
        assert write_jsonl(path, [{"x": 3}], append=True) == 1
        assert [r["x"] for r in read_jsonl(path)] == [1, 2, 3]

    def test_iter_skips_blank_lines(self, tmp_path):
        path = tmp_path / "b.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert len(list(iter_jsonl(path))) == 2


class TestCsv:
    def test_fieldnames_inferred_in_order(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, [{"b": 1, "a": 2}, {"a": 3, "c": 4}])
        header = path.read_text().splitlines()[0]
        assert header == "b,a,c"

    def test_missing_fields_blank(self, tmp_path):
        path = tmp_path / "m.csv"
        write_csv(path, [{"a": 1}, {"b": 2}], fieldnames=["a", "b"])
        lines = path.read_text().splitlines()
        assert lines[1] == "1,"
        assert lines[2] == ",2"


class TestTables:
    def test_dict_rows(self):
        out = render_table([{"a": 1, "b": 2.5}], title="T")
        assert "T" in out and "a" in out and "2.50" in out

    def test_positional_rows_need_headers(self):
        with pytest.raises(ValueError):
            render_table([[1, 2]])

    def test_alignment_width(self):
        out = render_table([{"name": "x", "v": 100}, {"name": "longer", "v": 1}])
        lines = out.splitlines()
        assert len(lines[2]) >= len("longer")

    def test_format_cell_bool_not_float(self):
        assert format_cell(True) == "True"
        assert format_cell(1.234) == "1.23"


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_stopwatch_laps_and_counts(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("a"):
            pass
        assert sw.counts["a"] == 2
        assert sw.total() == pytest.approx(sw.laps["a"])

    def test_stopwatch_misuse_raises(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop("never-started")
        sw.start("x")
        with pytest.raises(RuntimeError):
            sw.start("x")

    def test_format_duration_units(self):
        assert format_duration(5e-7).endswith("us")
        assert format_duration(0.005).endswith("ms")
        assert format_duration(2.0) == "2.00s"
        assert "m" in format_duration(90)
        assert "h" in format_duration(7200)
        assert format_duration(-2.0).startswith("-")
