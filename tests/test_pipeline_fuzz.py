"""Property-based fuzzing of the config -> model -> IR -> objectives path.

For arbitrary grid configurations, the full measurement pipeline must be
internally consistent: trace parameters equal model parameters, the
latency is positive on every device, the exported container round-trips,
and wider/deeper variants cost monotonically more.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.flops import count_graph_flops
from repro.graph.trace import trace_model
from repro.latency.predictors import predict_all_devices
from repro.nas.config import ModelConfig
from repro.nn import build_model, count_parameters
from repro.onnxlite.export import export_model
from repro.onnxlite.reader import proto_from_bytes

config_strategy = st.builds(
    ModelConfig,
    channels=st.sampled_from((5, 7)),
    batch=st.sampled_from((8, 16, 32)),
    kernel_size=st.sampled_from((3, 7)),
    stride=st.sampled_from((1, 2)),
    padding=st.sampled_from((1, 2, 3)),
    pool_choice=st.sampled_from((0, 1)),
    kernel_size_pool=st.sampled_from((2, 3)),
    stride_pool=st.sampled_from((1, 2)),
    initial_output_feature=st.sampled_from((32, 48, 64)),
)

_slow = settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestPipelineConsistency:
    @_slow
    @given(config_strategy)
    def test_trace_matches_model(self, config):
        model = build_model(config, seed=0)
        graph = trace_model(model, input_hw=(64, 64))
        assert graph.total_params() == count_parameters(model)
        graph.validate()

    @_slow
    @given(config_strategy)
    def test_latency_positive_on_all_devices(self, config):
        model = build_model(config, seed=0)
        graph = trace_model(model, input_hw=(64, 64))
        summary = predict_all_devices(graph)
        assert all(v > 0 for v in summary.per_device_ms.values())
        assert summary.std_ms >= 0

    @_slow
    @given(config_strategy)
    def test_export_roundtrip(self, config):
        model = build_model(config, seed=0)
        blob = export_model(model, input_hw=(64, 64))
        proto = proto_from_bytes(blob)
        params = count_parameters(model)
        buffers = sum(int(np.asarray(b).size) for _, b in model.named_buffers())
        assert proto.parameter_count() == params + buffers

    @_slow
    @given(config_strategy)
    def test_width_monotonicity(self, config):
        """Doubling the initial feature width increases params and FLOPs."""
        if config.initial_output_feature != 32:
            return
        from dataclasses import replace

        wide = replace(config, initial_output_feature=64)
        narrow_model = build_model(config, seed=0)
        wide_model = build_model(wide, seed=0)
        assert count_parameters(wide_model) > count_parameters(narrow_model)
        g_narrow = trace_model(narrow_model, input_hw=(64, 64))
        g_wide = trace_model(wide_model, input_hw=(64, 64))
        assert count_graph_flops(g_wide) > count_graph_flops(g_narrow)
