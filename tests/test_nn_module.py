"""Module system: registration, traversal, state dicts, train/eval."""

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, Linear, Module, Parameter, ReLU, Sequential
from repro.tensor.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3, rng=0)
        self.act = ReLU()
        self.fc2 = Linear(3, 2, rng=1)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestRegistration:
    def test_parameters_collected_recursively(self):
        toy = Toy()
        names = dict(toy.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_buffers_collected(self):
        bn = BatchNorm2d(4)
        assert set(dict(bn.named_buffers())) == {"running_mean", "running_var"}

    def test_reassignment_replaces_registration(self):
        toy = Toy()
        toy.fc1 = Linear(4, 3, rng=2)
        assert len(list(toy.named_parameters())) == 4

    def test_parameter_attribute_registered(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))

        assert len(M().parameters()) == 1

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestTrainEval:
    def test_recursive_mode_switch(self):
        toy = Toy()
        toy.eval()
        assert all(not m.training for m in toy.modules())
        toy.train()
        assert all(m.training for m in toy.modules())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        b.load_state_dict(a.state_dict())
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        toy = Toy()
        state = toy.state_dict()
        state["fc1.weight"][:] = 99.0
        assert not np.any(toy.fc1.weight.data == 99.0)

    def test_missing_key_rejected(self):
        toy = Toy()
        state = toy.state_dict()
        del state["fc1.bias"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        toy = Toy()
        state = toy.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        toy = Toy()
        state = toy.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            toy.load_state_dict(state)

    def test_buffers_roundtrip(self):
        bn1, bn2 = BatchNorm2d(3), BatchNorm2d(3)
        bn1.running_mean[:] = 5.0
        bn2.load_state_dict(bn1.state_dict())
        np.testing.assert_array_equal(bn2.running_mean, 5.0 * np.ones(3))


class TestZeroGrad:
    def test_clears_all_grads(self):
        toy = Toy()
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        toy(x).sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestSequential:
    def test_order_and_access(self):
        seq = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        out = seq(Tensor(np.ones((1, 4), dtype=np.float32)))
        assert out.shape == (1, 2)

    def test_conv_in_sequential(self):
        seq = Sequential(Conv2d(2, 4, 3, padding=1, rng=0), ReLU())
        out = seq(Tensor(np.zeros((1, 2, 5, 5), dtype=np.float32)))
        assert out.shape == (1, 4, 5, 5)
