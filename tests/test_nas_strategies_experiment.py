"""Search strategies, failure injection and the experiment runner."""

import numpy as np
import pytest

from repro.nas import (
    Experiment,
    FailureInjector,
    GridSearch,
    RandomSearch,
    RegularizedEvolution,
    SurrogateEvaluator,
    TrialStore,
)
from repro.nas.experiment import measure_architecture
from repro.nas.searchspace import SearchSpace
from repro.nas.config import ModelConfig

SMALL_SPACE = SearchSpace(
    kernel_size=(3,), stride=(2,), padding=(1,), pool_choice=(0, 1),
    kernel_size_pool=(3,), stride_pool=(2,), initial_output_feature=(32,),
    channels=(5,), batches=(8, 16),
)


class TestGridSearch:
    def test_budget_respected(self):
        configs = list(GridSearch(SMALL_SPACE).propose(3))
        assert len(configs) == 3

    def test_full_grid(self):
        configs = list(GridSearch(SMALL_SPACE).propose(10_000))
        assert len(configs) == SMALL_SPACE.total_configurations() == 4


class TestRandomSearch:
    def test_no_duplicates(self):
        configs = list(RandomSearch(SMALL_SPACE, seed=0).propose(4))
        assert len({c.config_id() for c in configs}) == len(configs)

    def test_deterministic(self):
        a = [c.config_id() for c in RandomSearch(SMALL_SPACE, seed=1).propose(3)]
        b = [c.config_id() for c in RandomSearch(SMALL_SPACE, seed=1).propose(3)]
        assert a == b


class TestRegularizedEvolution:
    def test_improves_on_random_start(self):
        from repro.nas.searchspace import DEFAULT_SPACE

        evo = RegularizedEvolution(DEFAULT_SPACE, population_size=8, tournament_size=4, seed=0)
        evaluator = SurrogateEvaluator(noise_sigma=0.0)
        scores = []
        for config in evo.propose(60):
            score = evaluator.expected_accuracy(config)
            evo.observe(config, score)
            scores.append(score)
        assert max(scores[30:]) >= max(scores[:10])
        best_config, best_score = evo.best()
        assert best_score == max(s for _, s in evo._population)

    def test_population_ages_out(self):
        evo = RegularizedEvolution(SMALL_SPACE, population_size=3, tournament_size=2, seed=1)
        for i, config in enumerate(evo.propose(10)):
            evo.observe(config, float(i))
        assert len(evo._population) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RegularizedEvolution(SMALL_SPACE, population_size=1)
        with pytest.raises(ValueError):
            RegularizedEvolution(SMALL_SPACE, population_size=4, tournament_size=9)
        with pytest.raises(ValueError):
            RegularizedEvolution(SMALL_SPACE).best()


class TestFailureInjector:
    def test_paper_mode_counts(self):
        injector = FailureInjector.paper_mode()
        assert injector.total == 1728
        assert len(injector.failed_indices) == 11
        assert all(0 <= i < 1728 for i in injector.failed_indices)

    def test_deterministic_per_seed(self):
        assert FailureInjector.paper_mode(0).failed_indices == FailureInjector.paper_mode(0).failed_indices
        assert FailureInjector.paper_mode(0).failed_indices != FailureInjector.paper_mode(1).failed_indices

    def test_none_injector(self):
        injector = FailureInjector.none()
        assert not injector.fails(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureInjector(total=5, failures=9)


class TestMeasureArchitecture:
    def test_winner_metrics_match_paper_scale(self, winner_config):
        metrics = measure_architecture(winner_config)
        assert metrics.memory_mb == pytest.approx(11.18, rel=0.01)
        assert metrics.latency_ms == pytest.approx(8.2, rel=0.1)
        assert metrics.param_count == pytest.approx(2.8e6, rel=0.01)
        assert set(metrics.per_device_ms) == {"cortexA76cpu", "adreno640gpu", "adreno630gpu", "myriadvpu"}

    def test_baseline_metrics_match_paper_scale(self, baseline_config):
        metrics = measure_architecture(baseline_config)
        assert metrics.memory_mb == pytest.approx(44.7, rel=0.01)
        assert metrics.latency_ms == pytest.approx(31.9, rel=0.1)


class TestExperiment:
    def _experiment(self, **kw):
        defaults = dict(
            evaluator=SurrogateEvaluator(),
            strategy=GridSearch(SMALL_SPACE),
            input_hw=(48, 48),
        )
        defaults.update(kw)
        return Experiment(**defaults)

    def test_run_produces_complete_records(self):
        result = self._experiment().run(budget=4)
        assert result.launched == 4 and result.succeeded == 4
        for record in result.store:
            assert record.accuracy > 50
            assert record.latency_ms > 0
            assert record.memory_mb > 0
            assert len(record.fold_accuracies) == 5

    def test_architecture_cache_shares_metrics_across_batches(self):
        experiment = self._experiment(latency_jitter=0.0)
        result = experiment.run(budget=4)
        by_batch = {}
        for record in result.store:
            key = record.config.architecture_key()[1:]  # ignore channels slot
            by_batch.setdefault((record.config.pool_choice,), []).append(record.latency_ms)
        for values in by_batch.values():
            assert len(set(round(v, 9) for v in values)) == 1  # identical without jitter

    def test_latency_jitter_differentiates_trials(self):
        result = self._experiment(latency_jitter=0.01).run(budget=4)
        latencies = [r.latency_ms for r in result.store if r.config.pool_choice == 0]
        assert len(set(latencies)) == len(latencies)

    def test_failure_injection_recorded(self):
        injector = FailureInjector(total=4, failures=2, seed=0)
        result = self._experiment(failure_injector=injector).run(budget=4)
        assert result.failed == 2 and result.succeeded == 2
        failed = [r for r in result.store if not r.ok]
        assert all("injected" in r.error for r in failed)

    def test_store_persists_during_run(self, tmp_path):
        store = TrialStore(tmp_path / "trials.jsonl")
        self._experiment(store=store).run(budget=2)
        reloaded = TrialStore(tmp_path / "trials.jsonl")
        assert reloaded.load() == 2

    def test_progress_callback(self):
        seen = []
        exp = self._experiment(progress=lambda done, total, rec: seen.append((done, total)))
        exp.run(budget=3)
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            self._experiment().run(budget=0)
        with pytest.raises(ValueError):
            self._experiment(latency_jitter=-0.1)

    def test_resume_skips_completed_trials(self, tmp_path):
        path = tmp_path / "resume.jsonl"
        first = Experiment(
            evaluator=SurrogateEvaluator(),
            strategy=GridSearch(SMALL_SPACE),
            store=TrialStore(path),
            input_hw=(48, 48),
        )
        first.run(budget=2)  # partial sweep, then "interrupted"

        resumed_store = TrialStore(path)
        assert resumed_store.load() == 2
        second = Experiment(
            evaluator=SurrogateEvaluator(),
            strategy=GridSearch(SMALL_SPACE),
            store=resumed_store,
            input_hw=(48, 48),
            skip_existing=True,
        )
        result = second.run(budget=4)
        assert result.skipped == 2
        assert result.launched == 2  # only the remaining configs ran
        assert len(resumed_store) == 4
