"""Unit tests for the repro.obs observability layer.

Covers the metrics registry (identity, semantics, thread safety), the
disabled-mode zero-allocation fast path, spans and context propagation,
the JSONL sink round-trip, the Prometheus/Chrome exporters, the report
aggregation helpers, the progress-listener protocol and the executor
lifecycle errors introduced alongside the obs consolidation.
"""

from __future__ import annotations

import json
import threading
import tracemalloc

import pytest

import repro.obs as obs
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    InMemorySink,
    MetricsRegistry,
    ProgressFanout,
    ProgressListener,
    aggregate_metrics,
    as_listener,
    chrome_trace_events,
    metric_key,
    prometheus_text,
    read_events,
    span_coverage,
    span_tree_stats,
)
from repro.parallel.executor import SerialExecutor, make_executor


@pytest.fixture()
def clean_obs():
    """Guarantee the process-wide obs state is reset around a test."""
    obs.shutdown(final_snapshot=False)
    obs.registry().reset()
    yield
    obs.shutdown(final_snapshot=False)
    obs.registry().reset()


class TestMetricsRegistry:
    def test_metric_key_canonical_ordering(self):
        assert metric_key("m", {}) == "m"
        assert metric_key("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'

    def test_stable_identity(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("c", x="1") is reg.counter("c", x="1")
        assert reg.counter("c", x="1") is not reg.counter("c", x="2")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("m")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("m")

    def test_counter_gauge_histogram_semantics(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter_value("c") == 5
        reg.gauge("g").set(2.5)
        reg.gauge("g").add(0.5)
        assert reg.gauge("g").value == 3.0
        hist = reg.histogram("h", buckets=[1.0, 10.0])
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["counts"] == [1, 1, 1]  # one per bucket + overflow
        assert snap["count"] == 3 and snap["sum"] == pytest.approx(55.5)
        assert snap["min"] == 0.5 and snap["max"] == 50.0

    def test_default_buckets_are_log_spaced(self):
        assert len(DEFAULT_LATENCY_BUCKETS_S) == 25
        assert DEFAULT_LATENCY_BUCKETS_S[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BUCKETS_S[-1] == pytest.approx(10.0)
        ratios = [b / a for a, b in zip(DEFAULT_LATENCY_BUCKETS_S,
                                        DEFAULT_LATENCY_BUCKETS_S[1:])]
        # Edges are rounded to 10 decimals, so allow a loose tolerance.
        assert all(r == pytest.approx(10 ** 0.25, rel=1e-3) for r in ratios)

    def test_reset_keeps_identities(self):
        reg = MetricsRegistry(enabled=True)
        handle = reg.counter("c")
        handle.inc(7)
        reg.reset()
        assert handle.value == 0
        assert reg.counter("c") is handle

    def test_collectors_refresh_on_snapshot(self):
        reg = MetricsRegistry(enabled=True)
        gauge = reg.gauge("pull")
        state = {"v": 0}
        reg.add_collector(lambda: gauge.set(state["v"]))
        state["v"] = 42
        snap = reg.snapshot()
        assert snap["gauges"][0]["value"] == 42.0

    def test_broken_collector_does_not_break_snapshot(self):
        reg = MetricsRegistry(enabled=True)
        reg.add_collector(lambda: 1 / 0)
        reg.counter("c").inc()
        assert reg.snapshot()["counters"][0]["value"] == 1

    def test_thread_safety_under_concurrent_recording(self):
        # The process-pool executor records from its result threads while
        # the main thread records too; counters must not lose updates.
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("c")
        hist = reg.histogram("h", buckets=[0.5])

        def hammer():
            for _ in range(2000):
                counter.inc()
                hist.observe(0.1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 16000
        assert hist.count == 16000
        assert hist.snapshot()["counts"][0] == 16000

    def test_concurrent_recording_through_executor_map(self):
        # Same property exercised through the executor layer the sweeps
        # use: per-item callbacks recording into one shared registry.
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("mapped")
        with make_executor("serial") as ex:
            list(ex.map(lambda i: counter.inc() or i, list(range(64))))
        assert counter.value == 64


class TestDisabledFastPath:
    def test_disabled_instruments_record_nothing(self, clean_obs):
        counter = obs.counter("repro_test_disabled_total")
        counter.inc(5)
        obs.gauge("repro_test_disabled_gauge").set(3)
        obs.histogram("repro_test_disabled_seconds").observe(1.0)
        assert counter.value == 0
        assert obs.registry().counter_value("repro_test_disabled_total") == 0

    def test_disabled_hot_path_allocates_nothing(self, clean_obs):
        counter = obs.counter("repro_test_alloc_total")
        hist = obs.histogram("repro_test_alloc_seconds")
        counter.inc()  # warm any lazy state
        hist.observe(0.0)
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(500):
                counter.inc()
                hist.observe(0.001)
                obs.emit({"type": "noop"})
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = after.compare_to(before, "filename")
        grown = sum(
            s.size_diff for s in stats
            if "repro/obs/" in (s.traceback[0].filename if s.traceback else "")
        )
        assert grown == 0, f"disabled obs hot path allocated {grown} bytes"

    def test_disabled_span_is_shared_noop(self, clean_obs):
        a = obs.span("x", key=1)
        b = obs.span("y")
        assert a is b  # the shared no-op singleton
        with a as sp:
            assert obs.current_span() is None
            assert getattr(sp, "span_id", "") == ""

    def test_disabled_propagated_context_is_none(self, clean_obs):
        with obs.span("outer"):
            assert obs.propagated_context() is None


class TestSpans:
    def test_span_nesting_and_parenting(self, clean_obs, tmp_path):
        sink = InMemorySink()
        obs.configure(sinks=[sink])
        with obs.span("parent") as outer:
            with obs.span("child", k=1) as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        names = [e["name"] for e in sink.events if e["type"] == "span"]
        assert names == ["child", "parent"]  # children emit first (on exit)
        child = sink.spans("child")[0]
        assert child["attrs"] == {"k": 1}
        assert child["dur"] >= 0.0

    def test_span_records_exception_attr(self, clean_obs):
        sink = InMemorySink()
        obs.configure(sinks=[sink])
        with pytest.raises(ValueError):
            with obs.span("broken"):
                raise ValueError("boom")
        (event,) = sink.spans("broken")
        assert "ValueError: boom" in event["attrs"]["error"]

    def test_adopt_context_parents_remote_spans(self, clean_obs):
        sink = InMemorySink()
        obs.configure(sinks=[sink])
        with obs.span("local-parent"):
            ctx = obs.propagated_context()
        assert ctx is not None and ctx.trace_id
        with obs.adopt_context(ctx):
            with obs.span("remote-child"):
                pass
        (child,) = sink.spans("remote-child")
        assert child["trace"] == ctx.trace_id
        assert child["parent"] == ctx.span_id

    def test_adopt_none_context_is_noop(self, clean_obs):
        with obs.adopt_context(None):
            assert not obs.enabled()


class TestJsonlRoundTrip:
    def test_round_trip(self, clean_obs, tmp_path):
        path = tmp_path / "obs.jsonl"
        obs.configure(jsonl_path=path)
        obs.counter("repro_rt_total").inc(3)
        with obs.span("unit", idx=7):
            pass
        obs.shutdown()  # final metrics snapshot + flush
        events = read_events(path)
        spans = [e for e in events if e["type"] == "span"]
        metrics = [e for e in events if e["type"] == "metrics"]
        assert [s["name"] for s in spans] == ["unit"]
        assert spans[0]["attrs"] == {"idx": 7}
        assert len(metrics) == 1
        agg = aggregate_metrics(events)
        values = {c["name"]: c["value"] for c in agg["counters"]}
        assert values["repro_rt_total"] == 3

    def test_corrupt_lines_are_skipped(self, clean_obs, tmp_path):
        path = tmp_path / "obs.jsonl"
        obs.configure(jsonl_path=path)
        with obs.span("ok"):
            pass
        obs.shutdown()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{truncated\n")
        events = read_events(path)
        assert [e["name"] for e in events if e["type"] == "span"] == ["ok"]
        assert any(e["type"] == "corrupt" for e in events)

    def test_sum_across_pids_last_snapshot_per_pid(self):
        def snap(pid, value):
            return {
                "type": "metrics", "pid": pid, "ts": float(value),
                "metrics": {
                    "counters": [{"name": "c", "labels": {}, "value": value}],
                    "gauges": [], "histograms": [],
                },
            }
        # Cumulative snapshots: the stale pid-1 snapshot must be replaced
        # by its later one, then summed with pid-2's.
        events = [snap(1, 5), snap(2, 7), snap(1, 9)]
        agg = aggregate_metrics(events)
        (counter,) = agg["counters"]
        assert counter["value"] == 16


class TestExporters:
    def _sample_events(self):
        return [
            {"type": "span", "name": "trial", "trace": "t", "span": "a",
             "parent": "", "ts": 100.0, "dur": 0.5, "pid": 1, "tid": 1, "attrs": {}},
            {"type": "metrics", "pid": 1, "ts": 101.0, "metrics": {
                "counters": [{"name": "repro_x_total", "labels": {"k": "v"}, "value": 2}],
                "gauges": [{"name": "repro_g", "labels": {}, "value": 1.5}],
                "histograms": [{"name": "repro_h", "labels": {}, "buckets": [1.0],
                                "counts": [1, 0], "sum": 0.5, "count": 1,
                                "min": 0.5, "max": 0.5}],
            }},
        ]

    def test_prometheus_text_exposition(self):
        text = prometheus_text(self._sample_events()[1]["metrics"])
        assert '# TYPE repro_x_total counter' in text
        assert 'repro_x_total{k="v"} 2' in text
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert 'repro_h_sum 0.5' in text and 'repro_h_count 1' in text

    def test_chrome_trace_events(self):
        trace = chrome_trace_events(self._sample_events())
        (event,) = trace["traceEvents"]
        assert event["ph"] == "X" and event["name"] == "trial"
        assert event["ts"] == pytest.approx(100.0 * 1e6)
        assert event["dur"] == pytest.approx(0.5 * 1e6)


class TestReportHelpers:
    def _span(self, name, span, parent, ts, dur, pid=1):
        return {"type": "span", "name": name, "trace": "t", "span": span,
                "parent": parent, "ts": ts, "dur": dur, "pid": pid, "tid": 1,
                "attrs": {}}

    def test_span_tree_stats_groups_by_parent_name(self):
        events = [
            self._span("run", "r", "", 0.0, 10.0),
            self._span("trial", "a", "r", 0.0, 4.0),
            self._span("trial", "b", "r", 4.0, 6.0),
        ]
        rows = span_tree_stats(events)
        trial_row = next(r for r in rows if r["name"] == "trial")
        assert trial_row["count"] == 2
        assert trial_row["total_s"] == pytest.approx(10.0)
        assert trial_row["parent_name"] == "run"

    def test_span_coverage_unions_child_intervals(self):
        events = [
            self._span("run", "r", "", 0.0, 10.0),
            self._span("trial", "a", "r", 0.0, 6.0),
            self._span("trial", "b", "r", 4.0, 5.0),  # overlaps a
            self._span("grandchild", "c", "a", 0.0, 10.0),  # not direct: ignored
        ]
        assert span_coverage(events, parent_name="run") == pytest.approx(0.9)

    def test_span_coverage_without_parent_is_zero(self):
        assert span_coverage([], parent_name="run") == 0.0


class TestProgressListeners:
    def test_as_listener_normalization(self):
        assert isinstance(as_listener(None), ProgressListener)
        listener = ProgressListener()
        assert as_listener(listener) is listener
        calls = []
        legacy = as_listener(lambda done, total, record: calls.append(done))
        legacy.on_trial_end(1, 2, object())
        assert calls == [1]
        with pytest.raises(TypeError):
            as_listener(42)

    def test_duck_typed_partial_listener(self):
        class Partial:
            def __init__(self):
                self.ends = []

            def on_trial_end(self, done, total, record):
                self.ends.append(done)

        duck = Partial()
        wrapped = as_listener(duck)
        wrapped.on_trial_start(0, None)  # missing hook: no-op
        wrapped.on_trial_end(3, 8, None)
        wrapped.on_run_end(None)
        assert duck.ends == [3]

    def test_fanout_propagates_exceptions(self):
        # The chaos harness's interrupt_after simulates Ctrl-C by raising
        # from a progress hook; the fan-out must not swallow it.
        def bomb(done, total, record):
            raise KeyboardInterrupt

        fanout = ProgressFanout([bomb])
        with pytest.raises(KeyboardInterrupt):
            fanout.on_trial_end(1, 1, None)

    def test_obs_listener_counts_trials(self, clean_obs):
        obs.configure(sinks=[InMemorySink()])

        class Record:
            ok = True
            attempts = 2
            error_kind = ""
            duration_s = 0.25
            skipped_devices = ("cpu",)

        listener = obs.ObsProgressListener()
        listener.on_trial_end(1, 1, Record())
        reg = obs.registry()
        assert reg.counter_value("repro_trials_total", status="ok") == 1
        assert reg.counter_value("repro_trials_retried_total") == 1
        assert reg.counter_value("repro_trial_retries_total") == 1
        assert reg.counter_value("repro_trials_recovered_total") == 1
        assert reg.counter_value("repro_device_predictions_skipped_total") == 1


class TestExecutorLifecycle:
    def test_close_twice_raises(self):
        ex = make_executor("serial")
        ex.close()
        with pytest.raises(RuntimeError, match="close\\(\\) called twice"):
            ex.close()

    def test_use_after_close_raises(self):
        ex = make_executor("serial")
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(ex.map(abs, [1]))
        with pytest.raises(RuntimeError, match="closed"):
            ex.map_resilient(abs, [1])
        with pytest.raises(RuntimeError, match="closed"):
            with ex:
                pass

    def test_context_manager_single_use(self):
        with SerialExecutor() as ex:
            assert list(ex.map(abs, [-2])) == [2]
        assert ex.closed
        with pytest.raises(RuntimeError):
            list(ex.map(abs, [1]))

    def test_counter_instances_are_reused(self):
        # Instrument handles resolve through the singleton registry, so
        # the executor's module-level handles survive a registry reset.
        assert isinstance(obs.counter("repro_executor_pool_deaths_total"), Counter)
        assert obs.counter("repro_executor_pool_deaths_total") is obs.counter(
            "repro_executor_pool_deaths_total"
        )


class TestRunTelemetryRegistry:
    def test_telemetry_mirrors_counters_into_registry(self):
        from repro.nas.telemetry import RunTelemetry

        class Record:
            def __init__(self, ok, attempts=1, error_kind="", duration_s=0.1,
                         skipped_devices=()):
                self.ok = ok
                self.attempts = attempts
                self.error_kind = error_kind
                self.duration_s = duration_s
                self.skipped_devices = skipped_devices

        telemetry = RunTelemetry()
        telemetry.on_trial_end(1, 3, Record(ok=True, attempts=2))
        telemetry.on_trial_end(2, 3, Record(ok=False, error_kind="transient"))
        telemetry.on_trial_end(3, 3, Record(ok=True))
        reg = telemetry.registry
        assert reg.counter_value("repro_trials_total", status="ok") == 2
        assert reg.counter_value("repro_trials_total", status="failed") == 1
        assert reg.counter_value("repro_trials_failed_total", kind="transient") == 1
        assert reg.counter_value("repro_trials_recovered_total") == 1
        assert reg.histogram("repro_trial_duration_seconds").count == 3
        # legacy fields still track in lockstep
        assert telemetry.failures == 1 and telemetry.recovered_trials == 1

    def test_telemetry_registry_exports_to_prometheus(self):
        from repro.nas.telemetry import RunTelemetry

        telemetry = RunTelemetry()
        text = prometheus_text(telemetry.registry.snapshot())
        assert isinstance(text, str)


def test_jsonl_events_are_valid_json_lines(clean_obs, tmp_path):
    path = tmp_path / "obs.jsonl"
    obs.configure(jsonl_path=path)
    for i in range(5):
        with obs.span("line", i=i):
            pass
    obs.shutdown()
    with open(path, encoding="utf-8") as fh:
        parsed = [json.loads(line) for line in fh if line.strip()]
    assert sum(1 for e in parsed if e["type"] == "span") == 5
