"""Pareto machinery: dominance properties, fronts, metrics, analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.pareto import (
    ObjectiveSense,
    ParetoAnalysis,
    crowding_distance,
    dominates,
    hypervolume,
    knee_point_index,
    non_dominated_mask,
    non_dominated_mask_kung,
    normalize_minmax,
    pareto_front_indices,
)
from repro.pareto.dominance import to_minimization

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 60), st.integers(1, 4)),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestDominates:
    def test_strict_partial_order_basics(self):
        a, b = np.array([1.0, 1.0]), np.array([2.0, 2.0])
        assert dominates(a, b)
        assert not dominates(b, a)
        assert not dominates(a, a)  # irreflexive

    def test_incomparable(self):
        assert not dominates(np.array([1.0, 3.0]), np.array([2.0, 1.0]))
        assert not dominates(np.array([2.0, 1.0]), np.array([1.0, 3.0]))

    @settings(max_examples=40, deadline=None)
    @given(matrices)
    def test_antisymmetry(self, values):
        if values.shape[0] < 2:
            return
        a, b = values[0], values[1]
        assert not (dominates(a, b) and dominates(b, a))


class TestFrontExtraction:
    @settings(max_examples=40, deadline=None)
    @given(matrices)
    def test_naive_and_kung_agree(self, values):
        np.testing.assert_array_equal(non_dominated_mask(values), non_dominated_mask_kung(values))

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_front_is_mutually_non_dominated(self, values):
        mask = non_dominated_mask(values)
        front = values[mask]
        for i in range(len(front)):
            for j in range(len(front)):
                if i != j:
                    assert not dominates(front[i], front[j])

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_dominated_points_have_a_dominator_on_front(self, values):
        mask = non_dominated_mask(values)
        front = values[mask]
        for point in values[~mask]:
            assert any(dominates(f, point) for f in front)

    def test_duplicates_all_survive(self):
        values = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert non_dominated_mask(values).tolist() == [True, True, False]

    def test_chunking_does_not_change_result(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(300, 3))
        np.testing.assert_array_equal(
            non_dominated_mask(values, chunk=7), non_dominated_mask(values, chunk=1000)
        )

    def test_empty_input(self):
        assert non_dominated_mask_kung(np.zeros((0, 3))).size == 0


class TestSenses:
    def test_max_sense_flips(self):
        values = np.array([[90.0, 10.0], [80.0, 5.0]])
        senses = [ObjectiveSense.MAX, ObjectiveSense.MIN]
        idx = pareto_front_indices(values, senses)
        assert sorted(idx.tolist()) == [0, 1]  # trade-off: both survive
        values2 = np.array([[90.0, 5.0], [80.0, 10.0]])
        idx2 = pareto_front_indices(values2, senses)
        assert idx2.tolist() == [0]

    def test_to_minimization_validation(self):
        with pytest.raises(ValueError):
            to_minimization(np.zeros(3), [ObjectiveSense.MIN])
        with pytest.raises(ValueError):
            to_minimization(np.zeros((2, 3)), [ObjectiveSense.MIN])

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            pareto_front_indices(np.zeros((2, 2)), [ObjectiveSense.MIN] * 2, algorithm="magic")


class TestNormalize:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        out = normalize_minmax(rng.normal(size=(50, 3)) * 100)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_constant_column_maps_to_half(self):
        values = np.array([[1.0, 5.0], [2.0, 5.0]])
        out = normalize_minmax(values)
        np.testing.assert_allclose(out[:, 1], 0.5)


class TestHypervolume:
    def test_known_2d_value(self):
        points = np.array([[0.0, 0.5], [0.5, 0.0]])
        ref = np.array([1.0, 1.0])
        # Two overlapping rectangles: 2 * 0.5 - 0.25 = 0.75.
        assert hypervolume(points, ref) == pytest.approx(0.75)

    def test_known_3d_value(self):
        points = np.array([[0.0, 0.0, 0.0]])
        assert hypervolume(points, np.array([2.0, 3.0, 4.0])) == pytest.approx(24.0)

    def test_monotone_under_adding_points(self):
        rng = np.random.default_rng(1)
        points = rng.random((20, 3))
        ref = np.array([1.5, 1.5, 1.5])
        hv_small = hypervolume(points[:10], ref)
        hv_all = hypervolume(points, ref)
        assert hv_all >= hv_small - 1e-12

    def test_points_outside_reference_ignored(self):
        points = np.array([[2.0, 2.0]])
        assert hypervolume(points, np.array([1.0, 1.0])) == 0.0

    def test_bounded_by_box(self):
        rng = np.random.default_rng(2)
        points = rng.random((30, 3))
        ref = np.array([1.0, 1.0, 1.0])
        assert hypervolume(points, ref) <= 1.0

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            hypervolume(np.zeros((2, 4)), np.ones(4))
        with pytest.raises(ValueError):
            hypervolume(np.zeros((2, 2)), np.ones(3))


class TestCrowdingAndKnee:
    def test_boundary_points_infinite(self):
        points = np.array([[0.0, 1.0], [0.5, 0.5], [1.0, 0.0]])
        distance = crowding_distance(points)
        assert np.isinf(distance[0]) and np.isinf(distance[2])
        assert np.isfinite(distance[1])

    def test_small_fronts_all_infinite(self):
        assert np.isinf(crowding_distance(np.array([[1.0, 2.0]]))).all()

    def test_knee_prefers_balanced_point(self):
        points = np.array([[0.0, 1.0], [0.1, 0.1], [1.0, 0.0]])
        assert knee_point_index(points) == 1

    def test_knee_empty_rejected(self):
        with pytest.raises(ValueError):
            knee_point_index(np.zeros((0, 2)))


class TestParetoAnalysis:
    def _records(self):
        return [
            {"accuracy": 96.0, "latency_ms": 8.0, "memory_mb": 11.0},
            {"accuracy": 95.0, "latency_ms": 7.0, "memory_mb": 11.0},   # faster
            {"accuracy": 90.0, "latency_ms": 30.0, "memory_mb": 45.0},  # dominated
            {"accuracy": 97.0, "latency_ms": 40.0, "memory_mb": 10.0},  # acc+mem winner
        ]

    def test_front_extraction(self):
        analysis = ParetoAnalysis()
        front = analysis.front_records(self._records())
        accs = sorted(r["accuracy"] for r in front)
        assert accs == [95.0, 96.0, 97.0]

    def test_ranges(self):
        result = ParetoAnalysis().run(self._records())
        assert result.ranges()["accuracy"] == (90.0, 97.0)
        assert result.front_size() == 3

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            ParetoAnalysis().run([{"accuracy": 1.0}])

    def test_empty_records_raise(self):
        with pytest.raises(ValueError):
            ParetoAnalysis().run([])

    def test_knee_and_crowding_and_hypervolume(self):
        analysis = ParetoAnalysis()
        records = self._records()
        knee = analysis.knee_record(records)
        assert knee in records
        assert analysis.hypervolume(records) > 0
        crowd = analysis.crowding(records)
        assert crowd.shape == (3,)
