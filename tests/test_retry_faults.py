"""Error taxonomy, retry policy, deadlines and the fault-injection harness."""

import os
import time

import pytest

from repro.faults import (
    Fault,
    FaultKind,
    FaultPlan,
    InjectedTransientError,
    KillSwitch,
    corrupt_store_tail,
    interrupt_after,
)
from repro.nas.failures import FailureInjector
from repro.nas.retry import (
    Deadline,
    ErrorKind,
    PermanentTrialError,
    RetryPolicy,
    TransientTrialError,
    TrialDeadlineExceeded,
    classify_error,
    current_deadline,
    deadline_scope,
    run_with_retry,
)


class TestClassifyError:
    @pytest.mark.parametrize("exc,kind", [
        (TransientTrialError("flake"), ErrorKind.TRANSIENT),
        (TimeoutError(), ErrorKind.TRANSIENT),
        (ConnectionResetError(), ErrorKind.TRANSIENT),
        (BrokenPipeError(), ErrorKind.TRANSIENT),
        (EOFError(), ErrorKind.TRANSIENT),
        (PermanentTrialError("bad"), ErrorKind.PERMANENT),
        (FloatingPointError("overflow"), ErrorKind.PERMANENT),
        (ValueError("bad config"), ErrorKind.PERMANENT),
        (RuntimeError("unexpected"), ErrorKind.PERMANENT),
        (TrialDeadlineExceeded("late"), ErrorKind.DEADLINE),
        (KeyboardInterrupt(), ErrorKind.FATAL),
        (MemoryError(), ErrorKind.FATAL),
        (SystemExit(1), ErrorKind.FATAL),
    ])
    def test_taxonomy(self, exc, kind):
        assert classify_error(exc) is kind

    def test_broken_process_pool_is_transient(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_error(BrokenProcessPool("dead")) is ErrorKind.TRANSIENT


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline(None)
        assert d.remaining() == float("inf") and not d.expired
        d.check()  # no raise

    def test_expiry_and_check(self):
        t = [0.0]
        d = Deadline(1.0, clock=lambda: t[0])
        assert not d.expired and d.remaining() == 1.0
        t[0] = 2.0
        assert d.expired and d.remaining() == 0.0
        with pytest.raises(TrialDeadlineExceeded, match="deadline"):
            d.check("unit test")

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0)

    def test_scope_stack(self):
        assert current_deadline() is None
        outer, inner = Deadline(10.0), Deadline(5.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_scope_none_is_noop(self):
        with deadline_scope(None):
            assert current_deadline() is None


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0)

    def test_delay_deterministic_and_backed_off(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff=2.0, jitter=0.1, seed=3)
        d1, d2 = policy.delay_for("trial-7", 1), policy.delay_for("trial-7", 2)
        assert d1 == policy.delay_for("trial-7", 1)  # same key+attempt -> same delay
        assert d2 > d1  # exponential growth dominates the 10% jitter
        assert policy.delay_for("trial-8", 1) != d1  # keyed per trial
        assert 0.09 <= d1 <= 0.11

    def test_zero_base_is_zero(self):
        assert RetryPolicy(base_delay_s=0.0).delay_for("k", 3) == 0.0

    def test_none_policy(self):
        policy = RetryPolicy.none(deadline_s=5.0)
        assert policy.max_attempts == 1 and policy.deadline_s == 5.0


class TestRunWithRetry:
    def _policy(self, **kw):
        kw.setdefault("base_delay_s", 0.0)
        return RetryPolicy(**kw)

    def test_success_first_try(self):
        out = run_with_retry(lambda a: "ok", self._policy())
        assert out.ok and out.value == "ok" and out.attempts == 1 and out.error == ""

    def test_transient_recovers(self):
        def fn(attempt):
            if attempt < 3:
                raise TransientTrialError("flake")
            return attempt

        out = run_with_retry(fn, self._policy(max_attempts=3))
        assert out.ok and out.value == 3 and out.attempts == 3
        assert out.attempt_errors == ["TransientTrialError: flake"] * 2

    def test_transient_exhausts_attempts(self):
        def fn(attempt):
            raise TransientTrialError("always")

        out = run_with_retry(fn, self._policy(max_attempts=2))
        assert not out.ok and out.attempts == 2 and out.error_kind == "transient"

    def test_permanent_not_retried(self):
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise FloatingPointError("nan")

        out = run_with_retry(fn, self._policy(max_attempts=5))
        assert not out.ok and calls == [1]
        assert out.error_kind == "permanent"
        assert "FloatingPointError" in out.error and "FloatingPointError" in out.traceback

    def test_fatal_propagates(self):
        def fn(attempt):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_with_retry(fn, self._policy())

    def test_deadline_stops_retries(self):
        slept = []

        def fn(attempt):
            raise TransientTrialError("flake")

        policy = RetryPolicy(max_attempts=10, base_delay_s=10.0, jitter=0.0,
                             deadline_s=0.05, sleep=slept.append)
        out = run_with_retry(fn, policy)
        assert not out.ok and out.error_kind == "deadline"
        assert slept == []  # the 10s backoff would overshoot the deadline

    def test_deadline_visible_inside_attempt(self):
        def fn(attempt):
            assert current_deadline() is not None
            return current_deadline().limit_s

        out = run_with_retry(fn, self._policy(deadline_s=9.0))
        assert out.ok and out.value == 9.0

    def test_backoff_sleeps_are_deterministic(self):
        slept = []

        def fn(attempt):
            raise TransientTrialError("flake")

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.1, seed=11,
                             sleep=slept.append)
        run_with_retry(fn, policy, key="t0")
        first = list(slept)
        slept.clear()
        run_with_retry(fn, policy, key="t0")
        assert slept == first and len(first) == 2


class TestFaultPlan:
    def test_chaos_deterministic_and_disjoint(self):
        a = FaultPlan.chaos(total=50, transients=3, failures=2, spikes=1, hangs=1, seed=9)
        b = FaultPlan.chaos(total=50, transients=3, failures=2, spikes=1, hangs=1, seed=9)
        kinds = [a.trials_with(k) for k in FaultKind]
        assert kinds == [b.trials_with(k) for k in FaultKind]
        flat = [t for ids in kinds for t in ids]
        assert len(flat) == len(set(flat)) == 7  # disjoint trial sets
        assert a.trials_with(FaultKind.TRANSIENT) != FaultPlan.chaos(
            total=50, transients=3, failures=2, spikes=1, hangs=1, seed=10
        ).trials_with(FaultKind.TRANSIENT)

    def test_chaos_overcommit_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.chaos(total=3, transients=2, failures=2)

    def test_paper_mode_matches_legacy_injector(self):
        for seed in (0, 1, 5):
            assert (FaultPlan.paper_mode(seed).failed_indices
                    == FailureInjector.paper_mode(seed).failed_indices)

    def test_transient_heals_after_n_attempts(self):
        plan = FaultPlan([Fault(FaultKind.TRANSIENT, trial_id=4, attempts=2)])
        for attempt in (1, 2):
            with pytest.raises(InjectedTransientError):
                plan.on_attempt(4, attempt)
        plan.on_attempt(4, 3)  # healed
        plan.on_attempt(5, 1)  # unscheduled trial untouched
        assert plan.counters["transient"] == 2

    def test_fails_only_for_trial_failures(self):
        plan = FaultPlan([Fault(FaultKind.TRIAL_FAILURE, 1), Fault(FaultKind.TRANSIENT, 2)])
        assert plan.fails(1) and not plan.fails(2) and not plan.fails(0)
        assert plan.failed_indices == frozenset({1})

    def test_hang_trips_the_deadline(self):
        plan = FaultPlan([Fault(FaultKind.HANG, 0, delay_s=5.0)])
        t0 = time.monotonic()
        with deadline_scope(Deadline(0.02)):
            with pytest.raises(TrialDeadlineExceeded):
                plan.on_attempt(0, 1)
        assert time.monotonic() - t0 < 1.0  # bounded by the deadline, not the cap

    def test_hang_without_deadline_is_capped(self):
        plan = FaultPlan([Fault(FaultKind.HANG, 0, delay_s=0.02)])
        t0 = time.monotonic()
        plan.on_attempt(0, 1)  # returns after the cap
        assert 0.01 < time.monotonic() - t0 < 1.0

    def test_latency_spike_sleeps(self):
        plan = FaultPlan([Fault(FaultKind.LATENCY_SPIKE, 0, delay_s=0.02)])
        t0 = time.monotonic()
        plan.on_attempt(0, 1)
        assert time.monotonic() - t0 >= 0.015
        assert plan.counters["latency_spike"] == 1

    def test_describe(self):
        plan = FaultPlan.chaos(total=10, transients=1, seed=2)
        assert "transient=1" in plan.describe()
        assert FaultPlan.none().describe() == "FaultPlan(none, seed=0)"


class TestKillSwitch:
    def test_acquire_exactly_once(self, tmp_path):
        latch = KillSwitch(tmp_path / "kill.latch")
        assert latch.acquire()
        assert not latch.acquire()
        assert not KillSwitch(tmp_path / "kill.latch").acquire()  # cross-instance

    def test_fire_once_noop_after_acquired(self, tmp_path):
        latch = KillSwitch(tmp_path / "kill.latch")
        assert latch.acquire()
        latch.fire_once()  # must NOT os._exit the test process


class TestCorruptStoreTail:
    def _store(self, tmp_path, n=3):
        tmp_path.mkdir(parents=True, exist_ok=True)
        path = tmp_path / "trials.jsonl"
        path.write_text("".join('{"trial_id": %d}\n' % i for i in range(n)))
        return path

    def test_truncate_removes_tail_newline(self, tmp_path):
        path = self._store(tmp_path)
        info = corrupt_store_tail(path, mode="truncate", seed=0)
        raw = path.read_bytes()
        assert not raw.endswith(b"\n") and info["mode"] == "truncate"
        assert raw.count(b"\n") == 2  # two intact records remain

    def test_truncate_deterministic(self, tmp_path):
        a = self._store(tmp_path / "a")
        b = self._store(tmp_path / "b")
        corrupt_store_tail(a, mode="truncate", seed=5)
        corrupt_store_tail(b, mode="truncate", seed=5)
        assert a.read_bytes() == b.read_bytes()

    def test_garbage_mode(self, tmp_path):
        path = self._store(tmp_path)
        corrupt_store_tail(path, mode="garbage", seed=1)
        lines = path.read_bytes().rstrip(b"\n").split(b"\n")
        assert len(lines) == 3
        import json

        with pytest.raises(Exception):
            json.loads(lines[-1])

    def test_partial_append_mode(self, tmp_path):
        path = self._store(tmp_path)
        before = path.read_bytes()
        corrupt_store_tail(path, mode="partial-append", seed=2)
        after = path.read_bytes()
        assert after.startswith(before) and not after.endswith(b"\n")

    def test_bad_mode_and_empty_file(self, tmp_path):
        path = self._store(tmp_path)
        with pytest.raises(ValueError):
            corrupt_store_tail(path, mode="nuke")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            corrupt_store_tail(empty)


class TestInterruptAfter:
    def test_raises_at_threshold(self):
        cb = interrupt_after(2)
        cb(1, 10, None)
        with pytest.raises(KeyboardInterrupt):
            cb(2, 10, None)

    def test_custom_exception_and_validation(self):
        cb = interrupt_after(1, exc_type=SystemExit)
        with pytest.raises(SystemExit):
            cb(1, 5, None)
        with pytest.raises(ValueError):
            interrupt_after(0)
