"""Trial records and the JSONL store."""

import pytest

from repro.nas.config import ModelConfig
from repro.nas.storage import TrialStore
from repro.nas.trial import TrialRecord, TrialStatus


def _record(trial_id=0, accuracy=95.0, **config_kw):
    cfg = dict(channels=5, batch=8, kernel_size=3, stride=2, padding=1,
               pool_choice=0, kernel_size_pool=3, stride_pool=2, initial_output_feature=32)
    cfg.update(config_kw)
    return TrialRecord(
        trial_id=trial_id,
        config=ModelConfig(**cfg),
        accuracy=accuracy,
        fold_accuracies=(accuracy - 1, accuracy + 1),
        latency_ms=8.2,
        lat_std=4.5,
        per_device_ms={"cortexA76cpu": 15.0, "myriadvpu": 5.0},
        memory_mb=11.2,
        param_count=2_800_000,
        flops=700_000_000,
    )


class TestTrialRecord:
    def test_dict_roundtrip(self):
        rec = _record()
        back = TrialRecord.from_dict(rec.to_dict())
        assert back.config == rec.config
        assert back.accuracy == rec.accuracy
        assert back.per_device_ms == rec.per_device_ms
        assert back.status is TrialStatus.OK

    def test_failed_record(self):
        rec = TrialRecord(trial_id=1, config=_record().config, status=TrialStatus.FAILED, error="boom")
        assert not rec.ok
        assert TrialRecord.from_dict(rec.to_dict()).error == "boom"

    def test_objectives_and_analysis_record(self):
        rec = _record()
        assert set(rec.objectives()) == {"accuracy", "latency_ms", "memory_mb"}
        flat = rec.as_analysis_record()
        assert flat["kernel_size"] == 3 and flat["trial_id"] == 0 and flat["lat_std"] == 4.5


class TestTrialStore:
    def test_add_find_best(self):
        store = TrialStore()
        store.extend([_record(0, 90.0, batch=8), _record(1, 95.0, batch=16)])
        assert len(store) == 2
        assert store.best_by_accuracy().trial_id == 1
        assert store.find(_record(0, batch=8).config).accuracy == 90.0
        assert store.find(_record(0, batch=32).config) is None

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        store = TrialStore(path)
        store.add(_record(0))
        store.add(_record(1, batch=16))
        restored = TrialStore(path)
        assert restored.load() == 2
        assert restored.records()[1].config.batch == 16

    def test_ok_only_filter(self):
        store = TrialStore()
        store.add(_record(0))
        store.add(TrialRecord(trial_id=1, config=_record(0, batch=16).config, status=TrialStatus.FAILED))
        assert len(store.records(ok_only=True)) == 1
        assert len(store.analysis_records()) == 1

    def test_best_of_empty_raises(self):
        with pytest.raises(ValueError):
            TrialStore().best_by_accuracy()

    def test_load_without_path_raises(self):
        with pytest.raises(ValueError):
            TrialStore().load()

    def test_load_missing_file_is_zero(self, tmp_path):
        assert TrialStore(tmp_path / "none.jsonl").load() == 0
