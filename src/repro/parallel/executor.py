"""Execution backends for embarrassingly parallel trial workloads.

The experiment runner maps an evaluation function over many independent
configurations — the structure the paper's Discussion proposes scaling
across GPUs.  Here the same interface runs serially (default on one core)
or over a process pool; tasks must be picklable top-level callables.
"""

from __future__ import annotations

import concurrent.futures
import math
import os
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["Executor", "SerialExecutor", "ProcessPoolExecutorBackend", "make_executor"]

T = TypeVar("T")
R = TypeVar("R")


class Executor:
    """Interface: ordered map over independent tasks."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (no-op by default)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process sequential execution (deterministic, zero overhead)."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class ProcessPoolExecutorBackend(Executor):
    """Multi-process execution via :mod:`concurrent.futures`.

    ``chunksize`` amortizes IPC overhead for cheap tasks; results are
    returned in input order regardless of completion order.
    """

    def __init__(self, workers: int | None = None, chunksize: int | None = 1) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.workers = workers or max(os.cpu_count() or 1, 1)
        #: ``None`` selects an automatic chunk size per :meth:`map` call:
        #: ``max(1, len(items) // (4 * workers))`` — ~4 chunks per worker,
        #: amortizing IPC for cheap trials while keeping load balance.
        self.chunksize = chunksize
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _effective_chunksize(self, n_items: int) -> int:
        """Chunk size actually used for a map over ``n_items`` tasks.

        Never returns less than 1 (empty/near-empty sweeps used to be
        able to produce degenerate sizes) and never more than
        ``ceil(n_items / workers)`` — an oversized explicit chunksize on
        a tiny sweep would otherwise ship every task to one worker and
        serialize the whole map.
        """
        if n_items <= 0:
            return 1
        spread_cap = max(1, math.ceil(n_items / self.workers))
        if self.chunksize is not None:
            return min(self.chunksize, spread_cap)
        return min(max(1, n_items // (4 * self.workers)), spread_cap)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if not items:
            return []  # avoid spinning up workers for an empty sweep
        pool = self._ensure_pool()
        return list(pool.map(fn, items, chunksize=self._effective_chunksize(len(items))))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(
    kind: str = "serial", workers: int | None = None, chunksize: int | None = None
) -> Executor:
    """Factory: ``"serial"`` or ``"process"``.

    Parameters
    ----------
    kind:
        Backend name.
    workers:
        Process count for the ``"process"`` backend (default: CPU count).
    chunksize:
        Tasks shipped per IPC round trip for the ``"process"`` backend.
        ``None`` (the default) picks ``max(1, len(items) // (4 * workers))``
        per map call — ~4 chunks per worker, amortizing pickling overhead
        for cheap trials; pass ``1`` for maximal load balancing of
        expensive tasks.  Ignored by the serial backend.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ProcessPoolExecutorBackend(workers=workers, chunksize=chunksize)
    raise ValueError(f"unknown executor kind {kind!r}; use 'serial' or 'process'")
