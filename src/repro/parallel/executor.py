"""Execution backends for embarrassingly parallel trial workloads.

The experiment runner maps an evaluation function over many independent
configurations — the structure the paper's Discussion proposes scaling
across GPUs.  Here the same interface runs serially (default on one core)
or over a process pool; tasks must be picklable top-level callables.

Two failure models are supported:

- :meth:`Executor.map` — fail-fast: the first task exception propagates
  (the pre-existing contract).  The process backend now additionally
  survives a dead pool: after ``BrokenProcessPool`` the broken pool is
  discarded so the *next* map respawns workers instead of failing
  forever.
- :meth:`Executor.map_resilient` — per-item isolation: every item yields
  a :class:`MapItemResult` (ok/value or error), one poisoned task cannot
  sink the whole map, killed workers are respawned and their in-flight
  items requeued, and after ``max_pool_deaths`` consecutive pool deaths
  the backend degrades to serial execution for the remainder.
"""

from __future__ import annotations

import concurrent.futures
import math
import os
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.obs import config as _obs

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutorBackend",
    "ProcessPoolExecutorBackend",
    "MapItemResult",
    "available_cpus",
    "make_executor",
]

T = TypeVar("T")
R = TypeVar("R")

#: Errors that must never be swallowed by resilient maps.
_FATAL = (KeyboardInterrupt, SystemExit, GeneratorExit, MemoryError)

# Cached observability handles (no-ops until ``repro.obs.configure``).
_QUEUE_DEPTH = _obs.gauge("repro_executor_queue_depth")
_POOL_DEATHS = _obs.counter("repro_executor_pool_deaths_total")
_REQUEUED = _obs.counter("repro_executor_requeued_items_total")
_DEGRADED = _obs.counter("repro_executor_degraded_total")


@dataclass
class MapItemResult:
    """Outcome of one item of a resilient map.

    ``attempts`` counts executions of the item itself (task exceptions);
    ``requeues`` counts times the item was in flight when a worker pool
    died and had to be resubmitted.
    """

    index: int
    ok: bool
    value: Any = None
    error: str = ""
    error_type: str = ""
    attempts: int = 1
    requeues: int = 0

    def unwrap(self) -> Any:
        """The value, or raise ``RuntimeError`` if the item failed."""
        if not self.ok:
            raise RuntimeError(f"item {self.index} failed: {self.error_type}: {self.error}")
        return self.value


def _run_item_serial(fn: Callable[[T], R], index: int, item: T, retries: int) -> MapItemResult:
    """Run one item in-process, capturing non-fatal exceptions."""
    result = MapItemResult(index=index, ok=False)
    for attempt in range(1, retries + 2):
        result.attempts = attempt
        try:
            result.value = fn(item)
            result.ok = True
            result.error = result.error_type = ""
            return result
        except _FATAL:
            raise
        except BaseException as exc:  # noqa: BLE001 - captured per item
            result.error = str(exc)
            result.error_type = type(exc).__name__
    return result


class Executor:
    """Interface: ordered map over independent tasks.

    Lifecycle: an executor is open from construction until the single
    permitted :meth:`close` (called directly or by ``with``-block exit).
    Mapping on a closed executor, or closing twice, raises a clear
    ``RuntimeError`` instead of surfacing a raw pool error — create a
    fresh executor via :func:`make_executor` instead of reusing one.
    """

    _closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} is closed; executors are single-use — "
                f"create a new one with make_executor() instead of reusing it"
            )

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order."""
        raise NotImplementedError

    def map_resilient(
        self, fn: Callable[[T], R], items: Sequence[T], retries: int = 0
    ) -> list[MapItemResult]:
        """Per-item fault-isolated map: one result per item, input order.

        Task exceptions are captured into :class:`MapItemResult` instead
        of propagating (fatal errors — ``KeyboardInterrupt``,
        ``MemoryError`` — still raise).  ``retries`` re-runs a failing
        item up to that many extra times before recording the error.
        """
        self._ensure_open()
        return [_run_item_serial(fn, i, item, retries) for i, item in enumerate(items)]

    def _release(self) -> None:
        """Free backend resources (hook for subclasses)."""

    def close(self) -> None:
        """Release resources.  A second close raises ``RuntimeError``."""
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__}.close() called twice — executors close "
                f"exactly once (the context manager already closes on exit)"
            )
        self._closed = True
        self._release()

    def __enter__(self) -> "Executor":
        self._ensure_open()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process sequential execution (deterministic, zero overhead)."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        self._ensure_open()
        return [fn(item) for item in items]


class ThreadPoolExecutorBackend(Executor):
    """Multi-thread execution via :mod:`concurrent.futures`.

    Threads share the process heap — no pickling, no spawn cost — which
    makes this the right backend for I/O- or wait-bound tasks (e.g. the
    serving load generator's closed-loop clients, which spend their time
    blocked on inference futures) and for GIL-releasing NumPy work.
    CPU-bound pure-Python tasks should keep using the process backend.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers or max(os.cpu_count() or 1, 1)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-thread"
            )
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        self._ensure_open()
        items = list(items)
        if not items:
            return []
        _QUEUE_DEPTH.set(len(items))
        try:
            return list(self._ensure_pool().map(fn, items))
        finally:
            _QUEUE_DEPTH.set(0)

    def _release(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessPoolExecutorBackend(Executor):
    """Multi-process execution via :mod:`concurrent.futures`.

    ``chunksize`` amortizes IPC overhead for cheap tasks; results are
    returned in input order regardless of completion order.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunksize: int | None = 1,
        max_pool_deaths: int = 3,
        max_requeues: int = 2,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if max_pool_deaths < 1:
            raise ValueError(f"max_pool_deaths must be >= 1, got {max_pool_deaths}")
        if max_requeues < 0:
            raise ValueError(f"max_requeues must be >= 0, got {max_requeues}")
        self.workers = workers or max(os.cpu_count() or 1, 1)
        #: ``None`` selects an automatic chunk size per :meth:`map` call:
        #: ``max(1, len(items) // (4 * workers))`` — ~4 chunks per worker,
        #: amortizing IPC for cheap trials while keeping load balance.
        self.chunksize = chunksize
        #: Consecutive ``BrokenProcessPool`` deaths tolerated by
        #: :meth:`map_resilient` before degrading to serial execution.
        self.max_pool_deaths = max_pool_deaths
        #: Times one item may be requeued after pool deaths before it is
        #: recorded as failed (guards against a deterministic worker
        #: killer respawning pools forever).
        self.max_requeues = max_requeues
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        #: Lifetime resilience counters (see :attr:`stats`).
        self.pool_deaths = 0
        self.requeued_items = 0
        self.degraded = False
        self._consecutive_deaths = 0

    @property
    def stats(self) -> dict[str, int | bool]:
        """Resilience counters: pool deaths, requeues, degraded flag."""
        return {
            "pool_deaths": self.pool_deaths,
            "requeued_items": self.requeued_items,
            "degraded": self.degraded,
        }

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _effective_chunksize(self, n_items: int) -> int:
        """Chunk size actually used for a map over ``n_items`` tasks.

        Never returns less than 1 (empty/near-empty sweeps used to be
        able to produce degenerate sizes) and never more than
        ``ceil(n_items / workers)`` — an oversized explicit chunksize on
        a tiny sweep would otherwise ship every task to one worker and
        serialize the whole map.
        """
        if n_items <= 0:
            return 1
        spread_cap = max(1, math.ceil(n_items / self.workers))
        if self.chunksize is not None:
            return min(self.chunksize, spread_cap)
        return min(max(1, n_items // (4 * self.workers)), spread_cap)

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool so the next map respawns workers."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _record_pool_death(self) -> None:
        self.pool_deaths += 1
        self._consecutive_deaths += 1
        _POOL_DEATHS.inc()
        self._discard_pool()
        if self._consecutive_deaths >= self.max_pool_deaths:
            if not self.degraded:
                _DEGRADED.inc()
            self.degraded = True

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        self._ensure_open()
        if not items:
            return []  # avoid spinning up workers for an empty sweep
        if self.degraded:  # too many pool deaths: honest serial fallback
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        _QUEUE_DEPTH.set(len(items))
        try:
            results = list(pool.map(fn, items, chunksize=self._effective_chunksize(len(items))))
        except BrokenProcessPool:
            # A dead worker poisons the whole pool object.  Discard it so
            # subsequent maps respawn instead of failing forever, then
            # re-raise: plain map is fail-fast by contract.
            self._record_pool_death()
            raise
        finally:
            _QUEUE_DEPTH.set(0)
        self._consecutive_deaths = 0
        return results

    def map_resilient(
        self, fn: Callable[[T], R], items: Sequence[T], retries: int = 0
    ) -> list[MapItemResult]:
        """Fault-isolated map over a (respawnable) process pool.

        - a task exception fails only its own item (with up to
          ``retries`` in-pool re-runs);
        - ``BrokenProcessPool`` respawns the pool and requeues every item
          that was still in flight (each at most :attr:`max_requeues`
          times — a deterministic worker killer cannot loop forever);
        - after :attr:`max_pool_deaths` *consecutive* pool deaths the
          remaining items run serially in this process (degraded mode,
          reported via :attr:`stats`).
        """
        self._ensure_open()
        if not items:
            return []
        results: dict[int, MapItemResult] = {}
        pending: list[int] = list(range(len(items)))
        requeues = {i: 0 for i in pending}
        attempts = {i: 0 for i in pending}
        while pending:
            _QUEUE_DEPTH.set(len(pending))
            if self.degraded:
                for i in pending:
                    result = _run_item_serial(fn, i, items[i], retries)
                    result.attempts += attempts[i]
                    result.requeues = requeues[i]
                    results[i] = result
                pending = []
                break
            pool = self._ensure_pool()
            futures = {pool.submit(fn, items[i]): i for i in pending}
            broken = False
            still_pending: list[int] = []
            for future in concurrent.futures.as_completed(futures):
                i = futures[future]
                try:
                    value = future.result()
                except _FATAL:
                    raise
                except BrokenProcessPool:
                    # This item was in flight (or queued) when a worker
                    # died; decide between requeue and giving up.
                    broken = True
                    requeues[i] += 1
                    if requeues[i] > self.max_requeues:
                        results[i] = MapItemResult(
                            index=i,
                            ok=False,
                            error=(
                                f"worker pool died {requeues[i]} times while this item "
                                "was in flight; giving up on it"
                            ),
                            error_type="BrokenProcessPool",
                            attempts=attempts[i] + 1,
                            requeues=requeues[i],
                        )
                    else:
                        still_pending.append(i)
                except BaseException as exc:  # noqa: BLE001 - per-item capture
                    attempts[i] += 1
                    if attempts[i] <= retries:
                        still_pending.append(i)
                    else:
                        results[i] = MapItemResult(
                            index=i,
                            ok=False,
                            error=str(exc),
                            error_type=type(exc).__name__,
                            attempts=attempts[i],
                            requeues=requeues[i],
                        )
                else:
                    attempts[i] += 1
                    results[i] = MapItemResult(
                        index=i, ok=True, value=value, attempts=attempts[i], requeues=requeues[i]
                    )
            if broken:
                self._record_pool_death()
                self.requeued_items += len(still_pending)
                _REQUEUED.inc(len(still_pending))
            else:
                self._consecutive_deaths = 0
            pending = sorted(still_pending)
        _QUEUE_DEPTH.set(0)
        return [results[i] for i in range(len(items))]

    def _release(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware, >= 1).

    ``os.cpu_count()`` reports the machine; under cgroup/affinity limits
    (CI runners, containers) ``sched_getaffinity`` is the honest number.
    Sizing worker pools past this only adds context-switch overhead —
    the serving policy clamps replicas against it (see
    :func:`repro.serve.clamp_replicas`).
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux / restricted platforms
        return max(1, os.cpu_count() or 1)


def make_executor(
    kind: str = "serial", workers: int | None = None, chunksize: int | None = None
) -> Executor:
    """Factory: ``"serial"``, ``"thread"``, or ``"process"``.

    Parameters
    ----------
    kind:
        Backend name.
    workers:
        Worker count for the ``"thread"``/``"process"`` backends
        (default: CPU count).
    chunksize:
        Tasks shipped per IPC round trip for the ``"process"`` backend.
        ``None`` (the default) picks ``max(1, len(items) // (4 * workers))``
        per map call — ~4 chunks per worker, amortizing pickling overhead
        for cheap trials; pass ``1`` for maximal load balancing of
        expensive tasks.  Ignored by the serial backend.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadPoolExecutorBackend(workers=workers)
    if kind == "process":
        return ProcessPoolExecutorBackend(workers=workers, chunksize=chunksize)
    raise ValueError(
        f"unknown executor kind {kind!r}; use 'serial', 'thread', or 'process'"
    )
