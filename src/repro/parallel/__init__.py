"""Parallel trial execution (the paper Discussion's multi-GPU NAS, as
multi-process CPU parallelism).

- :mod:`~repro.parallel.executor` — a uniform ``map``-style interface with
  serial and process-pool backends;
- :mod:`~repro.parallel.partition` — deterministic work partitioning;
- :mod:`~repro.parallel.scheduler` — longest-processing-time-first static
  load balancing for heterogeneous trial costs.
"""

from repro.parallel.executor import (
    Executor,
    MapItemResult,
    ProcessPoolExecutorBackend,
    SerialExecutor,
    ThreadPoolExecutorBackend,
    available_cpus,
    make_executor,
)
from repro.parallel.partition import chunk_evenly, chunk_fixed
from repro.parallel.scheduler import lpt_schedule, pick_steal_victim

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutorBackend",
    "ProcessPoolExecutorBackend",
    "MapItemResult",
    "available_cpus",
    "make_executor",
    "chunk_evenly",
    "chunk_fixed",
    "lpt_schedule",
    "pick_steal_victim",
]
