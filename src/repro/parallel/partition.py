"""Deterministic work partitioning."""

from __future__ import annotations

from typing import Sequence, TypeVar

__all__ = ["chunk_evenly", "chunk_fixed"]

T = TypeVar("T")


def chunk_evenly(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split ``items`` into ``parts`` contiguous chunks of near-equal size.

    Sizes differ by at most one; earlier chunks get the extra items.
    Empty chunks are produced when ``parts > len(items)``.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    n = len(items)
    base, extra = divmod(n, parts)
    chunks: list[list[T]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def chunk_fixed(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into chunks of a fixed size (last may be smaller)."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]
