"""Static load balancing for heterogeneous trial costs.

Trial cost varies by an order of magnitude across the search space (a
stride-1 f=64 model trains ~16x slower than a stride-2 f=32 one), so
round-robin assignment leaves workers idle.  Longest-processing-time-first
(LPT) is the classic 4/3-approximation for makespan on identical machines.
"""

from __future__ import annotations

import heapq
from typing import Sequence

__all__ = ["lpt_schedule"]


def lpt_schedule(costs: Sequence[float], workers: int) -> list[list[int]]:
    """Assign task indices to workers, minimizing the estimated makespan.

    Parameters
    ----------
    costs:
        Estimated cost per task (any non-negative unit).
    workers:
        Number of identical workers.

    Returns
    -------
    list[list[int]]
        ``workers`` lists of task indices; every index appears exactly once.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    for i, cost in enumerate(costs):
        if cost < 0:
            raise ValueError(f"task {i} has negative cost {cost}")
    assignments: list[list[int]] = [[] for _ in range(workers)]
    # Heap of (accumulated load, worker index).
    heap: list[tuple[float, int]] = [(0.0, w) for w in range(workers)]
    heapq.heapify(heap)
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    for task in order:
        load, worker = heapq.heappop(heap)
        assignments[worker].append(task)
        heapq.heappush(heap, (load + costs[task], worker))
    return assignments
