"""Load balancing for heterogeneous trial costs.

Trial cost varies by an order of magnitude across the search space (a
stride-1 f=64 model trains ~16x slower than a stride-2 f=32 one), so
round-robin assignment leaves workers idle.  Two complementary policies
live here:

- :func:`lpt_schedule` — *static*: longest-processing-time-first, the
  classic 4/3-approximation for makespan on identical machines, used
  when every cost is known up front.
- :func:`pick_steal_victim` — *dynamic*: the work-stealing victim rule
  of the distributed sweep fabric (:mod:`repro.nas.fabric`).  An idle
  worker whose home queue drained steals from the longest pending
  queue; stealing from the longest queue is the standard heuristic that
  minimizes expected makespan when per-task costs are unknown.
"""

from __future__ import annotations

import heapq
from typing import Container, Sequence

__all__ = ["lpt_schedule", "pick_steal_victim"]


def lpt_schedule(costs: Sequence[float], workers: int) -> list[list[int]]:
    """Assign task indices to workers, minimizing the estimated makespan.

    Parameters
    ----------
    costs:
        Estimated cost per task (any non-negative unit).
    workers:
        Number of identical workers.

    Returns
    -------
    list[list[int]]
        ``workers`` lists of task indices; every index appears exactly once.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    for i, cost in enumerate(costs):
        if cost < 0:
            raise ValueError(f"task {i} has negative cost {cost}")
    assignments: list[list[int]] = [[] for _ in range(workers)]
    # Heap of (accumulated load, worker index).
    heap: list[tuple[float, int]] = [(0.0, w) for w in range(workers)]
    heapq.heapify(heap)
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    for task in order:
        load, worker = heapq.heappop(heap)
        assignments[worker].append(task)
        heapq.heappush(heap, (load + costs[task], worker))
    return assignments


def pick_steal_victim(
    queue_sizes: Sequence[int], exclude: Container[int] = ()
) -> int | None:
    """Index of the longest non-empty queue, or ``None`` when all are empty.

    Ties break toward the lowest index, making victim selection fully
    deterministic for a given queue state.  ``exclude`` skips queues the
    caller must not steal from (typically the thief's own home queue,
    already known to be empty).
    """
    best: int | None = None
    best_size = 0
    for idx, size in enumerate(queue_sizes):
        if idx in exclude or size <= 0:
            continue
        if size > best_size:
            best, best_size = idx, size
    return best
