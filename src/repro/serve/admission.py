"""SLO-aware admission control: per-tenant token buckets + priority classes.

A single global ``max_queue_depth`` protects the server but not the
tenants sharing it — one chatty client can starve everyone else out of
the queue.  Admission control moves the gate per tenant: each tenant
owns a :class:`TokenBucket` (sustained rate + burst) and a default
priority class, declared in an :class:`AdmissionPolicy` and enforced by
the :class:`AdmissionController` that
:meth:`repro.serve.MicroBatcher.submit_request` consults before
enqueueing.  The global depth limit stays as the physical backstop —
buckets bound *fairness*, the queue bound *memory*.

Buckets are classic leaky token buckets on the batcher's injectable
clock: ``burst`` tokens of capacity refilled at ``rate_per_s``, one
token per admitted request.  A tenant without a declared quota gets the
policy's ``default`` quota; ``rate_per_s=None`` means unlimited (the
bucket always admits), so an empty :class:`AdmissionPolicy` changes
nothing but the per-tenant accounting.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

import repro.obs as obs

from repro.serve.batcher import ServerOverloaded

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "TenantOverloaded",
    "TenantQuota",
    "TokenBucket",
]


class TenantOverloaded(ServerOverloaded):
    """A tenant's token bucket is empty.

    Subclasses :class:`~repro.serve.ServerOverloaded` so existing
    backpressure handling (load generators, clients backing off) treats
    per-tenant rejection exactly like global overload.
    """


@dataclass(frozen=True)
class TenantQuota:
    """Admission quota for one tenant.

    Parameters
    ----------
    rate_per_s:
        Sustained admission rate (tokens/second).  ``None`` = unlimited.
    burst:
        Bucket capacity: how many requests may arrive back-to-back
        before the rate limit bites.
    priority:
        Default priority class for the tenant's requests (higher is
        served first); a request's explicit
        :attr:`~repro.serve.ServeRequest.priority` overrides it.
    """

    rate_per_s: float | None = None
    burst: int = 64
    priority: int = 0

    def __post_init__(self) -> None:
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0 or None, got {self.rate_per_s}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")

    def as_dict(self) -> dict:
        return {"rate_per_s": self.rate_per_s, "burst": self.burst,
                "priority": self.priority}


@dataclass(frozen=True)
class AdmissionPolicy:
    """Declarative admission config: per-tenant quotas + a default.

    Tenants not present in ``tenants`` fall back to ``default`` (which
    itself defaults to an unlimited-rate quota, so turning admission on
    only starts *enforcing* once quotas are declared).
    """

    tenants: Mapping[str, TenantQuota] = field(default_factory=dict)
    default: TenantQuota = field(default_factory=TenantQuota)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.tenants.get(tenant, self.default)

    def as_dict(self) -> dict:
        return {
            "default": self.default.as_dict(),
            "tenants": {name: q.as_dict() for name, q in sorted(self.tenants.items())},
        }


class TokenBucket:
    """Thread-safe token bucket on an injectable monotonic clock."""

    def __init__(
        self,
        rate_per_s: float | None,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.capacity = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def try_take(self, n: int = 1) -> bool:
        """Take ``n`` tokens if available; False (no debt) otherwise."""
        if self.rate_per_s is None:
            return True
        with self._lock:
            now = self._clock()
            elapsed = now - self._refilled_at
            if elapsed > 0:
                self._tokens = min(self.capacity, self._tokens + elapsed * self.rate_per_s)
                self._refilled_at = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current (un-refilled) token count — diagnostics only."""
        return self.capacity if self.rate_per_s is None else self._tokens


class AdmissionController:
    """Runtime enforcement of an :class:`AdmissionPolicy`.

    One controller may be shared by several batchers (the
    :class:`~repro.serve.fleet.FleetServer` shares one across all its
    per-model queues, so a tenant's quota spans the whole fleet).
    Thread-safe; per-tenant buckets are created lazily on first sight.
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or AdmissionPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted: dict[str, int] = {}
        self.rejected: dict[str, int] = {}
        # obs handles cached per tenant (labels are dynamic).
        self._obs: dict[str, tuple] = {}

    def _tenant_state(self, tenant: str) -> tuple[TokenBucket, tuple]:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                quota = self.policy.quota_for(tenant)
                bucket = TokenBucket(quota.rate_per_s, quota.burst, clock=self._clock)
                self._buckets[tenant] = bucket
                self.admitted[tenant] = 0
                self.rejected[tenant] = 0
                self._obs[tenant] = (
                    obs.counter("repro_serve_admitted_total", tenant=tenant),
                    obs.counter("repro_serve_admission_rejected_total", tenant=tenant),
                )
            return bucket, self._obs[tenant]

    def admit(self, tenant: str) -> None:
        """Charge one request to ``tenant``; raises :class:`TenantOverloaded`."""
        bucket, (admitted_c, rejected_c) = self._tenant_state(tenant)
        if bucket.try_take():
            with self._lock:
                self.admitted[tenant] += 1
            admitted_c.inc()
            return
        with self._lock:
            self.rejected[tenant] += 1
        rejected_c.inc()
        raise TenantOverloaded(
            f"tenant {tenant!r} is over its admission quota "
            f"({bucket.rate_per_s}/s, burst {int(bucket.capacity)}); back off and retry"
        )

    def priority_for(self, tenant: str) -> int:
        """The tenant's default priority class."""
        return self.policy.quota_for(tenant).priority

    def stats(self) -> dict:
        """Per-tenant admitted/rejected counts (JSON-ready)."""
        with self._lock:
            return {
                "admitted": dict(self.admitted),
                "rejected": dict(self.rejected),
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AdmissionController(tenants={len(self._buckets)}, "
                f"admitted={sum(self.admitted.values())}, "
                f"rejected={sum(self.rejected.values())})")
