"""Process worker pool: plan replicas in workers over shared weights.

The execution backend behind ``BatchPolicy(worker_mode="process")``.
Each worker process attaches the segment published by
:func:`repro.serve.shm.publish_plan`, rebinds a private plan replica
onto zero-copy weight views, pre-runs every batch bucket (warm arenas),
and then serves batches shipped through a per-worker **staging ring**:
one pinned shared-memory (input, output) slab per
:func:`~repro.serve.plan_buckets` bucket, so a batch round trip moves
only a tiny ``("run", bucket, n, seq)`` control message over the pipe —
images and logits travel through shared memory, never pickle.

Fault handling follows the :mod:`repro.nas.retry` taxonomy, mirroring
``Executor.map_resilient``: a dead worker (EOF/broken pipe — classified
``TRANSIENT``) is respawned and its in-flight batch requeued onto a
healthy worker; after ``max_deaths`` total deaths the pool *degrades*
to in-process execution (a local :class:`~repro.serve.PlanCache`), so
serving keeps answering even when forking is broken.  Exceptions
*raised inside* a healthy worker's plan are routed back to the caller,
not treated as deaths.

BLAS oversubscription: each worker pins its BLAS pool to
``blas_threads`` (default 1) — N workers x M BLAS threads would
otherwise thrash a machine with N*M runnable threads.  Env vars cover
spawn-started workers; an ``openblas_set_num_threads`` ctypes call
covers fork-started ones, where the already-loaded BLAS ignores the
environment.

Observability stitches across pids with the PR 4 machinery: the pool
captures :func:`repro.obs.propagated_context` at startup and every
worker batch runs under :func:`repro.obs.adopt_context`, so worker
spans join the parent trace and fork-inherited counters are zeroed
before the worker's first own count (per-pid snapshot sums stay exact).
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import queue
import threading
import time
from multiprocessing import shared_memory

import numpy as np

import repro.obs as obs

from repro.deploy.plan import InferencePlan
from repro.nas.retry import ErrorKind, classify_error
from repro.serve.cache import PlanCache
from repro.serve.policy import bucket_for, plan_buckets
from repro.serve.shm import (
    PlanSpec,
    attach_plan,
    publish_plan,
    quiet_close,
    untrack_attached,
)

__all__ = ["WorkerDied", "WorkerPool", "WorkerTaskError"]

# Cached observability handles (no-ops until ``repro.obs.configure``).
_DEATHS = obs.counter("repro_serve_worker_deaths_total")
_RESPAWNS = obs.counter("repro_serve_worker_respawns_total")
_DEGRADED = obs.counter("repro_serve_worker_degraded_total")
_W_BATCHES = obs.counter("repro_serve_worker_batches_total")

_BLAS_ENV = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

_ALIGN = 64


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class WorkerDied(RuntimeError):
    """The worker process died mid-protocol (transient; pool respawns)."""


class WorkerTaskError(RuntimeError):
    """A worker's plan raised; carries the remote type and message."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


@contextlib.contextmanager
def _blas_env(threads: int):
    """Pin BLAS thread env vars around a child start; restore after.

    Spawn-started children read these at import; the parent's own
    (already initialized) BLAS is unaffected either way.
    """
    saved = {var: os.environ.get(var) for var in _BLAS_ENV}
    for var in _BLAS_ENV:
        os.environ[var] = str(threads)
    try:
        yield
    finally:
        for var, old in saved.items():
            if old is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = old


def _limit_loaded_blas(threads: int) -> None:
    """Best-effort cap on an *already-loaded* OpenBLAS (fork workers).

    Fork children inherit the parent's initialized BLAS thread pool, so
    env vars are too late; call its control symbol directly if we can
    find the mapped library.  Silently a no-op for other BLAS builds.
    """
    try:
        import ctypes

        seen: set[str] = set()
        with open("/proc/self/maps", "r", encoding="utf-8") as fh:
            for line in fh:
                path = line.rstrip("\n").partition("/")[2]
                if not path:
                    continue
                path = "/" + path
                if path in seen or "openblas" not in os.path.basename(path).lower():
                    continue
                seen.add(path)
                lib = ctypes.CDLL(path)
                for sym in ("openblas_set_num_threads", "openblas_set_num_threads64_"):
                    fn = getattr(lib, sym, None)
                    if fn is not None:
                        fn(int(threads))
                        break
    except Exception:  # noqa: BLE001 - strictly best-effort
        pass


def _staging_layout(
    buckets: list[int], input_shape: tuple[int, ...], out_shape: tuple[int, ...]
) -> tuple[dict[int, tuple[int, int]], int]:
    """Per-bucket (input_offset, output_offset) slabs and total bytes."""
    offsets: dict[int, tuple[int, int]] = {}
    offset = 0
    in_elems = int(np.prod(input_shape, dtype=np.int64))
    out_elems = int(np.prod(out_shape, dtype=np.int64))
    for b in buckets:
        in_off = _aligned(offset)
        out_off = _aligned(in_off + 4 * b * in_elems)
        offsets[b] = (in_off, out_off)
        offset = out_off + 4 * b * out_elems
    return offsets, max(_aligned(offset), 1)


def _staging_views(
    shm: shared_memory.SharedMemory,
    layout: dict[int, tuple[int, int]],
    input_shape: tuple[int, ...],
    out_shape: tuple[int, ...],
) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
    ins: dict[int, np.ndarray] = {}
    outs: dict[int, np.ndarray] = {}
    for b, (in_off, out_off) in layout.items():
        n_in = b * int(np.prod(input_shape, dtype=np.int64))
        n_out = b * int(np.prod(out_shape, dtype=np.int64))
        ins[b] = np.frombuffer(shm.buf, dtype=np.float32, count=n_in,
                               offset=in_off).reshape((b, *input_shape))
        outs[b] = np.frombuffer(shm.buf, dtype=np.float32, count=n_out,
                                offset=out_off).reshape((b, *out_shape))
    return ins, outs


def _worker_main(
    spec: PlanSpec,
    staging_name: str,
    layout: dict[int, tuple[int, int]],
    out_shape: tuple[int, ...],
    conn,
    ctx,  # obs SpanContext | None
    blas_threads: int,
    poison: bool,
) -> None:
    """Worker process entry point (top-level so spawn can import it)."""
    _limit_loaded_blas(blas_threads)
    attached = None
    staging = None
    try:
        attached = attach_plan(spec, poison=poison)
        plan = attached.plan
        staging = shared_memory.SharedMemory(name=staging_name)
        untrack_attached(staging, spec.tracker_pid)
        ins, outs = _staging_views(staging, layout, spec.input_shape, out_shape)
        # Warm every bucket before reporting ready: arenas allocate here,
        # once, so steady-state batches run allocation-free.
        for b in sorted(ins):
            outs[b][...] = plan.run(ins[b])
        warm_allocations = plan.arena.allocations
        conn.send((
            "ready",
            os.getpid(),
            {**attached.residency, "warm_allocations": warm_allocations},
        ))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _tag, bucket, n, seq = msg
            try:
                with obs.adopt_context(ctx):
                    with obs.span("serve.worker.batch", bucket=bucket, n=n):
                        out = plan.run(ins[bucket])
                        outs[bucket][:n] = out[:n]
                        _W_BATCHES.inc()
                conn.send(("ok", seq))
            except BaseException as exc:  # noqa: BLE001 - routed to the caller
                conn.send(("err", seq, type(exc).__name__, str(exc)))
    except (EOFError, BrokenPipeError, ConnectionResetError, KeyboardInterrupt):
        pass  # parent went away / interrupted: exit quietly
    finally:
        if attached is not None:
            attached.close()
        if staging is not None:
            quiet_close(staging)
        with contextlib.suppress(Exception):
            conn.close()


class _WorkerHandle:
    """Parent-side endpoint of one worker: process, pipe, staging views."""

    def __init__(
        self,
        mp_ctx,
        spec: PlanSpec,
        buckets: list[int],
        input_shape: tuple[int, ...],
        out_shape: tuple[int, ...],
        obs_ctx,
        blas_threads: int,
        poison: bool,
        start_timeout_s: float,
    ) -> None:
        layout, total = _staging_layout(buckets, input_shape, out_shape)
        self.staging = shared_memory.SharedMemory(create=True, size=total)
        self.conn, child_conn = mp_ctx.Pipe(duplex=True)
        self.ins, self.outs = _staging_views(self.staging, layout,
                                             input_shape, out_shape)
        with _blas_env(blas_threads):
            self.proc = mp_ctx.Process(
                target=_worker_main,
                args=(spec, self.staging.name, layout, out_shape, child_conn,
                      obs_ctx, blas_threads, poison),
                daemon=True,
                name="repro-serve-worker",
            )
            self.proc.start()
        child_conn.close()
        self.seq = 0
        try:
            if not self.conn.poll(start_timeout_s):
                raise WorkerDied(
                    f"worker failed to become ready within {start_timeout_s}s")
            msg = self.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            self.close(join_timeout_s=1.0)
            raise WorkerDied("worker died during startup") from exc
        except WorkerDied:
            self.close(join_timeout_s=1.0)
            raise
        if msg[0] != "ready":
            self.close(join_timeout_s=1.0)
            raise WorkerDied(f"unexpected startup message {msg[0]!r}")
        self.pid = msg[1]
        self.report: dict[str, int] = msg[2]

    def run(self, images, bucket: int, n: int) -> np.ndarray:
        """Ship one batch; returns a private copy of the first n rows."""
        staged = self.ins[bucket]
        for i in range(n):
            staged[i] = images[i]
        self.seq += 1
        try:
            self.conn.send(("run", bucket, n, self.seq))
            while True:
                msg = self.conn.recv()
                if msg[1] != self.seq:  # stale reply from a requeued batch
                    continue
                if msg[0] == "ok":
                    return self.outs[bucket][:n].copy()
                raise WorkerTaskError(msg[2], msg[3])
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise WorkerDied(f"worker pid {self.pid} died mid-batch") from exc

    def alive(self) -> bool:
        return self.proc.is_alive()

    def close(self, join_timeout_s: float = 5.0) -> None:
        with contextlib.suppress(Exception):
            if self.proc.is_alive():
                self.conn.send(("stop",))
        with contextlib.suppress(Exception):
            self.proc.join(timeout=join_timeout_s)
        if self.proc.is_alive():
            with contextlib.suppress(Exception):
                self.proc.terminate()
                self.proc.join(timeout=join_timeout_s)
        with contextlib.suppress(Exception):
            self.conn.close()
        # Staging views hold buffer exports; drop them before closing.
        self.ins = {}
        self.outs = {}
        with contextlib.suppress(FileNotFoundError):
            self.staging.unlink()
        quiet_close(self.staging)


class WorkerPool:
    """Checkout pool of process workers serving batches over shared memory.

    Parameters
    ----------
    plan:
        Compiled template; its weight table is published once
        (:func:`repro.serve.shm.publish_plan`) and shared by every
        worker, respawns included.
    workers:
        Worker process count (clamp against
        :func:`repro.parallel.available_cpus` before calling — the pool
        starts exactly what it is asked for).
    max_batch_size:
        Sizes the per-worker staging rings to the same
        :func:`~repro.serve.plan_buckets` set the :class:`PlanCache`
        uses, so any bucket the batcher forms has a pinned slab waiting.
    mp_context:
        ``"fork"``/``"spawn"``/``"forkserver"``; default is the
        platform default (fork on Linux — worker startup in
        milliseconds, weights shared page-for-page even before the
        explicit segment).
    blas_threads:
        Per-worker BLAS thread cap (default 1; see module docstring).
    max_deaths:
        Total worker deaths tolerated before the pool degrades to
        in-process execution.
    max_requeues:
        How many times one batch may be requeued onto a fresh worker
        before its failure propagates to the caller.
    """

    def __init__(
        self,
        plan: InferencePlan,
        workers: int,
        max_batch_size: int,
        *,
        mp_context: str | None = None,
        blas_threads: int = 1,
        max_deaths: int = 3,
        max_requeues: int = 2,
        start_timeout_s: float = 60.0,
        poison: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._plan = plan
        self._buckets = plan_buckets(max_batch_size)
        self.max_batch_size = max_batch_size
        self._input_shape = tuple(plan.input_shape)
        self._out_shape = tuple(plan.shapes[plan.final_output])
        self._mp_ctx = multiprocessing.get_context(mp_context)
        self._blas_threads = blas_threads
        self._max_deaths = max_deaths
        self._max_requeues = max_requeues
        self._start_timeout_s = start_timeout_s
        self._poison = poison
        self._obs_ctx = obs.propagated_context()
        self._published = publish_plan(plan)
        self._idle: "queue.Queue[_WorkerHandle]" = queue.Queue()
        self._all: list[_WorkerHandle] = []
        self._lock = threading.Lock()
        self._closed = False
        self.deaths = 0
        self.respawns = 0
        self.degraded = False
        self._fallback: PlanCache | None = None
        try:
            for _ in range(workers):
                handle = self._spawn()
                self._all.append(handle)
                self._idle.put(handle)
        except BaseException:
            self.close()
            raise
        self.workers = workers

    # -- internals -------------------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        return _WorkerHandle(
            self._mp_ctx, self._published.spec, self._buckets,
            self._input_shape, self._out_shape, self._obs_ctx,
            self._blas_threads, self._poison, self._start_timeout_s,
        )

    def _note_death(self, handle: _WorkerHandle, exc: BaseException) -> None:
        kind = classify_error(exc)
        if kind is ErrorKind.FATAL:
            raise exc
        handle.close(join_timeout_s=1.0)
        with self._lock:
            self.deaths += 1
            deaths = self.deaths
            with contextlib.suppress(ValueError):
                self._all.remove(handle)
        _DEATHS.inc()
        if deaths > self._max_deaths:
            self._degrade()
            return
        # Respawn a replacement so capacity recovers; if the respawn
        # itself fails the pool degrades rather than looping forever.
        try:
            replacement = self._spawn()
        except (WorkerDied, OSError):
            self._degrade()
            return
        with self._lock:
            if self._closed:
                replacement.close(join_timeout_s=1.0)
                return
            self._all.append(replacement)
        self._idle.put(replacement)
        self.respawns += 1
        _RESPAWNS.inc()

    def _degrade(self) -> None:
        with self._lock:
            if self.degraded:
                return
            self.degraded = True
            self._fallback = PlanCache(max_batch_size=self.max_batch_size)
            self._fallback.register(self._plan)
        _DEGRADED.inc()

    def _run_degraded(self, images, bucket: int) -> np.ndarray:
        cache = self._fallback
        assert cache is not None
        entry = cache.acquire(self._plan.fingerprint, bucket)
        try:
            return entry.run_padded(images).copy()
        finally:
            cache.release(entry)

    # -- request path ----------------------------------------------------------

    def run_batch(self, images) -> np.ndarray:
        """Run ``n <= max_batch_size`` images on some worker; returns rows.

        Thread-safe (callers are the server's dispatcher threads): each
        call checks a worker out exclusively, mirroring the
        :class:`PlanCache` checkout contract, so plan re-entrancy is
        structurally impossible.  Worker death here respawns and
        requeues; repeated deaths degrade to in-process execution.
        """
        n = len(images)
        bucket = bucket_for(n, self.max_batch_size)
        attempts = 0
        while True:
            if self.degraded:
                return self._run_degraded(images, bucket)
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            try:
                handle = self._idle.get(timeout=1.0)
            except queue.Empty:
                continue  # re-check degraded/closed, then keep waiting
            try:
                out = handle.run(images, bucket, n)
            except WorkerDied as exc:
                attempts += 1
                self._note_death(handle, exc)
                if attempts > self._max_requeues and not self.degraded:
                    raise
                continue  # requeue the same batch on another worker
            except BaseException:
                # Worker is healthy; the *plan* raised. Return the
                # worker before routing the failure to the caller.
                self._idle.put(handle)
                raise
            self._idle.put(handle)
            return out

    # -- lifecycle / stats -----------------------------------------------------

    def stats(self) -> dict:
        """Counters for reports: deaths/respawns/degraded + weight bytes."""
        with self._lock:
            handles = list(self._all)
        reports = [h.report for h in handles if hasattr(h, "report")]
        return {
            "workers": len(handles),
            "worker_pids": [h.pid for h in handles if hasattr(h, "pid")],
            "worker_deaths": self.deaths,
            "worker_respawns": self.respawns,
            "degraded": self.degraded,
            "shared_weight_bytes": self._published.nbytes,
            "worker_private_weight_bytes": sum(
                r.get("private_bytes", 0) for r in reports),
        }

    def close(self, timeout: float | None = 30.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._all)
            self._all = []
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in handles:
            left = 5.0 if deadline is None else max(0.1, deadline - time.monotonic())
            handle.close(join_timeout_s=left)
        self._published.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"WorkerPool(workers={getattr(self, 'workers', 0)}, "
                f"deaths={self.deaths}, degraded={self.degraded})")
