"""The serving tier: micro-batcher + plan replicas + bucketed cache.

:class:`PlanServer` wires the pieces of :mod:`repro.serve` into a
throughput-oriented inference server over one compiled model:

.. code-block:: text

    submit(img) ──► MicroBatcher (bounded FIFO, deadline flush)
                        │ batches (≤ max_batch_size)
          worker 0 ◄────┼────► worker N-1          (policy.replicas)
                        │
                 PlanCache.acquire(fingerprint, bucket)
                        │  pad → InferencePlan.run → slice
                 future.set_result(row)

Each worker owns whatever replica it checked out for the batch's
bucket, so plans are never shared between threads
(:class:`~repro.deploy.ConcurrentPlanError` guards direct misuse) and
the weights exist once regardless of replica count.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

import repro.obs as obs

from repro.deploy.plan import InferencePlan
from repro.serve.batcher import MicroBatcher, Request
from repro.serve.cache import PlanCache
from repro.serve.policy import BatchPolicy, clamp_replicas
from repro.serve.workers import WorkerPool

__all__ = ["PlanServer"]

# Cached observability handles (no-ops until ``repro.obs.configure``).
_SERVED = obs.counter("repro_serve_requests_served_total")
_BATCHES = obs.counter("repro_serve_batches_total")
_BATCH_SIZE = obs.histogram("repro_serve_batch_size")
_QUEUE_WAIT = obs.histogram("repro_serve_queue_wait_seconds")
_E2E = obs.histogram("repro_serve_e2e_latency_seconds")


class PlanServer:
    """Concurrent micro-batching inference server over a compiled plan.

    Parameters
    ----------
    plan:
        The compiled template (:func:`repro.deploy.compile_plan` /
        :meth:`OnnxliteRuntime.compile`); replicas are stamped from it.
    policy:
        Batching knobs (see :class:`~repro.serve.BatchPolicy`; consider
        :func:`~repro.serve.suggest_batch_policy` to seed them from the
        device latency predictors).
    warm:
        Pre-build and pre-run one replica per (worker, bucket) so the
        steady state performs zero arena allocations from the first
        request (the default; disable for tests that count misses).
        In process mode workers always warm their own arenas; the
        parent-side cache stays cold unless the pool degrades.
    cpus:
        Usable core count override for replica clamping (defaults to
        :func:`repro.parallel.available_cpus`; see
        :func:`~repro.serve.clamp_replicas`).

    ``policy.worker_mode="process"`` swaps the execution backend: the
    same dispatcher threads pull batches, but each batch ships to a
    :class:`~repro.serve.WorkerPool` worker process over shared-memory
    staging rings, with the weight table published once into a
    shared-memory segment (:mod:`repro.serve.shm`).  Results are
    bitwise-identical to thread mode for the same (image, bucket).

    Use as a context manager, or call :meth:`close` — shutdown drains
    queued requests before workers exit.
    """

    def __init__(
        self,
        plan: InferencePlan,
        policy: BatchPolicy | None = None,
        warm: bool = True,
        cpus: int | None = None,
    ) -> None:
        policy = policy or BatchPolicy()
        # Oversubscription never adds throughput; clamp (with an obs
        # warning) rather than silently time-slicing cores.  ``cpus``
        # overrides detection for deterministic tests.
        effective = clamp_replicas(policy.replicas, cpus=cpus)
        if effective != policy.replicas:
            policy = policy.with_overrides(replicas=effective)
        self.policy = policy
        self.plan = plan
        self.batcher = MicroBatcher(
            max_batch_size=self.policy.max_batch_size,
            max_queue_delay_ms=self.policy.max_queue_delay_ms,
            max_queue_depth=self.policy.max_queue_depth,
        )
        self.cache = PlanCache(max_batch_size=self.policy.max_batch_size)
        self.fingerprint = self.cache.register(plan)
        self._input_shape = plan.input_shape
        self._closed = False
        self._close_lock = threading.Lock()
        self._batches_executed = 0
        self._count_lock = threading.Lock()
        # Process mode: start workers (which fork) BEFORE any dispatcher
        # threads exist, each attaching the shared weight segment and
        # warming its own arenas; the local cache stays cold — it only
        # fills if the pool ever degrades to in-process execution.
        self.pool: WorkerPool | None = None
        if self.policy.worker_mode == "process":
            self.pool = WorkerPool(
                plan,
                workers=self.policy.replicas,
                max_batch_size=self.policy.max_batch_size,
            )
        elif warm:
            self.cache.warm(self.fingerprint, replicas=self.policy.replicas)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(self.policy.replicas)
        ]
        for t in self._workers:
            t.start()

    # -- request path ----------------------------------------------------------

    def submit(self, x: np.ndarray) -> Future:
        """Queue one image; returns a future of its logits row.

        Accepts ``(C, H, W)`` or ``(1, C, H, W)`` float-convertible
        arrays matching the plan's compiled spatial shape.  Raises
        :class:`~repro.serve.ServerOverloaded` under backpressure.
        """
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 4 and x.shape[0] == 1:
            x = x[0]
        if x.shape != self._input_shape:
            raise ValueError(
                f"expected one image of shape {self._input_shape}, got {x.shape}"
            )
        return self.batcher.submit(x)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Synchronous convenience: submit one image and wait."""
        return self.submit(x).result()

    # -- worker loop -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: list[Request]) -> None:
        n = len(batch)
        started = time.monotonic()
        images = [r.x for r in batch]
        if self.pool is not None:
            try:
                out = self.pool.run_batch(images)
            except BaseException as exc:  # route the failure, don't kill the worker
                for r in batch:
                    r.future.set_exception(exc)
                return
        else:
            bucket = self.cache.bucket_for(n)
            entry = self.cache.acquire(self.fingerprint, bucket)
            try:
                out = entry.run_padded(images)
            except BaseException as exc:  # route the failure, don't kill the worker
                self.cache.release(entry)
                for r in batch:
                    r.future.set_exception(exc)
                return
            self.cache.release(entry)
        done = time.monotonic()
        with self._count_lock:
            self._batches_executed += 1
        _BATCHES.inc()
        _SERVED.inc(n)
        _BATCH_SIZE.observe(n)
        for i, r in enumerate(batch):
            _QUEUE_WAIT.observe(started - r.enqueued_at)
            _E2E.observe(done - r.enqueued_at)
            # Each future gets an independent copy so callers can't
            # alias each other through the shared output block.
            r.future.set_result(out[i].copy())

    # -- lifecycle -------------------------------------------------------------

    def close(self, timeout: float | None = 30.0) -> None:
        """Graceful drain: stop intake, serve the queue, join workers."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.batcher.close()
        for t in self._workers:
            t.join(timeout=timeout)
        # Dispatchers are drained; no batch is in flight on the pool.
        if self.pool is not None:
            self.pool.close(timeout=timeout)

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def batches_executed(self) -> int:
        """Batches completed so far (thread and process mode alike)."""
        with self._count_lock:
            return self._batches_executed

    def stats(self) -> dict[str, int]:
        """Counters for reports: submitted/rejected plus cache/pool stats."""
        out = {
            "submitted": self.batcher.submitted,
            "rejected": self.batcher.rejected,
            "batches_executed": self.batches_executed,
            "worker_mode": self.policy.worker_mode,
            **self.cache.stats(),
        }
        if self.pool is not None:
            out.update(self.pool.stats())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PlanServer(model={self.plan.name!r}, replicas={self.policy.replicas}, "
                f"mode={self.policy.worker_mode!r}, "
                f"max_batch={self.policy.max_batch_size}, closed={self._closed})")
