"""The serving tier: micro-batcher + plan replicas + bucketed cache.

:class:`PlanServer` wires the pieces of :mod:`repro.serve` into a
throughput-oriented inference server over one compiled model:

.. code-block:: text

    submit(img) ──► MicroBatcher (priority/FIFO, deadline flush,
                        │          per-tenant admission)
                        │ batches (≤ max_batch_size)
          worker 0 ◄────┼────► worker N-1          (policy.replicas)
                        │
                 PlanCache.acquire(fingerprint, bucket)
                        │  pad → InferencePlan.run → slice
                 future.set_result(row | ServeResponse)

Each worker owns whatever replica it checked out for the batch's
bucket, so plans are never shared between threads
(:class:`~repro.deploy.ConcurrentPlanError` guards direct misuse) and
the weights exist once regardless of replica count.

Construction takes one :class:`~repro.serve.ServeConfig`; the legacy
``PlanServer(plan, policy=..., warm=..., cpus=...)`` spelling keeps
working through a deprecation shim that ticks the
``repro_serve_deprecated_api_total`` obs counter instead of spamming
warnings.  The canonical request object is
:class:`~repro.serve.ServeRequest` via :meth:`PlanServer.submit_request`;
``submit(ndarray)``/``infer`` remain as documented thin adapters.

For multi-model routing over a shared cache, see
:class:`repro.serve.FleetServer`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

import repro.obs as obs

from repro.deploy.plan import InferencePlan
from repro.serve.admission import AdmissionController
from repro.serve.batcher import MicroBatcher, Request, ServeRequest, complete_batch
from repro.serve.cache import PlanCache
from repro.serve.config import ServeConfig
from repro.serve.policy import BatchPolicy, clamp_replicas
from repro.serve.workers import WorkerPool

__all__ = ["PlanServer"]

# Cached observability handles (no-ops until ``repro.obs.configure``).
_SERVED = obs.counter("repro_serve_requests_served_total")
_BATCHES = obs.counter("repro_serve_batches_total")
_BATCH_SIZE = obs.histogram("repro_serve_batch_size")
_QUEUE_WAIT = obs.histogram("repro_serve_queue_wait_seconds")
_E2E = obs.histogram("repro_serve_e2e_latency_seconds")
_DEPRECATED = obs.counter("repro_serve_deprecated_api_total", api="PlanServer.__init__")


class PlanServer:
    """Concurrent micro-batching inference server over a compiled plan.

    Parameters
    ----------
    plan:
        The compiled template (:func:`repro.deploy.compile_plan` /
        :meth:`OnnxliteRuntime.compile`); replicas are stamped from it.
    config:
        The consolidated :class:`~repro.serve.ServeConfig` — batching
        policy, warm, CPU budget, and optional per-tenant admission.
        The server stores the *effective* config (after replica
        clamping) as ``self.config``.
    policy, warm, cpus:
        Deprecated constructor spelling, kept as a shim: equivalent to
        ``config=ServeConfig(policy=..., warm=..., cpus=...)``.  Each
        use ticks the ``repro_serve_deprecated_api_total`` obs counter
        (label ``api="PlanServer.__init__"``).  Mixing them with
        ``config=`` raises ``ValueError``.

    ``policy.worker_mode="process"`` swaps the execution backend: the
    same dispatcher threads pull batches, but each batch ships to a
    :class:`~repro.serve.WorkerPool` worker process over shared-memory
    staging rings, with the weight table published once into a
    shared-memory segment (:mod:`repro.serve.shm`).  Results are
    bitwise-identical to thread mode for the same (image, bucket).

    Use as a context manager, or call :meth:`close` — shutdown drains
    queued requests before workers exit.
    """

    def __init__(
        self,
        plan: InferencePlan,
        policy: BatchPolicy | None = None,
        warm: bool | None = None,
        cpus: int | None = None,
        *,
        config: ServeConfig | None = None,
    ) -> None:
        legacy = policy is not None or warm is not None or cpus is not None
        if config is not None and legacy:
            raise ValueError(
                "pass either config=ServeConfig(...) or the legacy "
                "policy/warm/cpus arguments, not both"
            )
        if config is None:
            if legacy:
                _DEPRECATED.inc()
            config = ServeConfig(
                policy=policy or BatchPolicy(),
                warm=True if warm is None else warm,
                cpus=cpus,
            )
        # Oversubscription never adds throughput; clamp (with an obs
        # warning) rather than silently time-slicing cores.  ``cpus``
        # overrides detection for deterministic tests.
        effective = clamp_replicas(config.policy.replicas, cpus=config.cpus)
        if effective != config.policy.replicas:
            config = config.with_overrides(
                policy=config.policy.with_overrides(replicas=effective)
            )
        self.config = config
        self.policy = config.policy
        self.plan = plan
        self.admission = (
            AdmissionController(config.admission) if config.admission else None
        )
        self.batcher = MicroBatcher(
            max_batch_size=self.policy.max_batch_size,
            max_queue_delay_ms=self.policy.max_queue_delay_ms,
            max_queue_depth=self.policy.max_queue_depth,
            admission=self.admission,
        )
        self.cache = PlanCache(max_batch_size=self.policy.max_batch_size)
        self.fingerprint = self.cache.register(plan)
        self._input_shape = plan.input_shape
        self._closed = False
        self._close_lock = threading.Lock()
        self._batches_executed = 0
        self._count_lock = threading.Lock()
        # Process mode: start workers (which fork) BEFORE any dispatcher
        # threads exist, each attaching the shared weight segment and
        # warming its own arenas; the local cache stays cold — it only
        # fills if the pool ever degrades to in-process execution.
        self.pool: WorkerPool | None = None
        if self.policy.worker_mode == "process":
            self.pool = WorkerPool(
                plan,
                workers=self.policy.replicas,
                max_batch_size=self.policy.max_batch_size,
            )
        elif config.warm:
            self.cache.warm(self.fingerprint, replicas=self.policy.replicas)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(self.policy.replicas)
        ]
        for t in self._workers:
            t.start()

    # -- request path ----------------------------------------------------------

    def _validate_image(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 4 and x.shape[0] == 1:
            x = x[0]
        if x.shape != self._input_shape:
            raise ValueError(
                f"expected one image of shape {self._input_shape}, got {x.shape}"
            )
        return x

    def submit(self, x: np.ndarray) -> Future:
        """Queue one image; returns a future of its logits row.

        Thin adapter over the :class:`~repro.serve.ServeRequest` path —
        equivalent to ``submit_request(ServeRequest(image=x))`` except
        the future resolves to the bare row (the pre-request-object
        contract).  Accepts ``(C, H, W)`` or ``(1, C, H, W)``
        float-convertible arrays matching the plan's compiled spatial
        shape.  Raises :class:`~repro.serve.ServerOverloaded` under
        backpressure.
        """
        return self.batcher.submit(self._validate_image(x))

    def submit_request(self, request: ServeRequest) -> Future:
        """Queue one :class:`~repro.serve.ServeRequest`.

        The future resolves to a :class:`~repro.serve.ServeResponse`
        with queue/exec timings and SLO attainment; ``deadline_ms``
        expiry fails it fast with
        :class:`~repro.serve.DeadlineExceeded`.  Model hints and
        budgets are accepted but ignored here — a single-model server
        has nothing to route; use :class:`repro.serve.FleetServer` for
        that.
        """
        request.image = self._validate_image(request.image)
        return self.batcher.submit_request(request, wants_response=True)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Synchronous convenience adapter: submit one image and wait."""
        return self.submit(x).result()

    # -- worker loop -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: list[Request]) -> None:
        n = len(batch)
        started = time.monotonic()
        images = [r.x for r in batch]
        if self.pool is not None:
            try:
                out = self.pool.run_batch(images)
            except BaseException as exc:  # route the failure, don't kill the worker
                for r in batch:
                    r.future.set_exception(exc)
                return
        else:
            bucket = self.cache.bucket_for(n)
            entry = self.cache.acquire(self.fingerprint, bucket)
            try:
                out = entry.run_padded(images)
            except BaseException as exc:  # route the failure, don't kill the worker
                self.cache.release(entry)
                for r in batch:
                    r.future.set_exception(exc)
                return
            self.cache.release(entry)
        done = time.monotonic()
        with self._count_lock:
            self._batches_executed += 1
        _BATCHES.inc()
        _SERVED.inc(n)
        _BATCH_SIZE.observe(n)
        for r in batch:
            _QUEUE_WAIT.observe(started - r.enqueued_at)
            _E2E.observe(done - r.enqueued_at)
        # Each future gets an independent copy so callers can't alias
        # each other through the shared output block.
        complete_batch(batch, out, model=self.plan.name, started=started, finished=done)

    # -- lifecycle -------------------------------------------------------------

    def close(self, timeout: float | None = 30.0) -> None:
        """Graceful drain: stop intake, serve the queue, join workers."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.batcher.close()
        for t in self._workers:
            t.join(timeout=timeout)
        # Dispatchers are drained; no batch is in flight on the pool.
        if self.pool is not None:
            self.pool.close(timeout=timeout)

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def batches_executed(self) -> int:
        """Batches completed so far (thread and process mode alike)."""
        with self._count_lock:
            return self._batches_executed

    def stats(self) -> dict[str, int]:
        """Counters for reports: submitted/rejected plus cache/pool stats."""
        out = {
            "submitted": self.batcher.submitted,
            "rejected": self.batcher.rejected,
            "expired": self.batcher.expired,
            "batches_executed": self.batches_executed,
            "worker_mode": self.policy.worker_mode,
            **self.cache.stats(),
        }
        if self.pool is not None:
            out.update(self.pool.stats())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PlanServer(model={self.plan.name!r}, replicas={self.policy.replicas}, "
                f"mode={self.policy.worker_mode!r}, "
                f"max_batch={self.policy.max_batch_size}, closed={self._closed})")
