"""Consolidated server construction config.

:class:`ServeConfig` is the one object that describes how a server is
put together — batching policy, cache warming, CPU budget, per-tenant
admission, and (for the fleet) autoscaling.  Both
:class:`repro.serve.PlanServer` and :class:`repro.serve.FleetServer`
take it as their single ``config=`` argument; the legacy
``PlanServer(plan, policy=..., warm=..., cpus=...)`` spelling still
works through a deprecation shim that ticks the
``repro_serve_deprecated_api_total`` obs counter (no warnings spam —
grep the metrics instead).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.serve.admission import AdmissionPolicy
from repro.serve.policy import BatchPolicy

__all__ = ["AutoscalerConfig", "ServeConfig"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Replica autoscaling bounds and triggers (fleet only).

    The autoscaler is tick-driven (:meth:`repro.serve.FleetServer.scale_tick`),
    deciding per model from `repro.obs`-visible signals:

    - scale **up** by one replica when queue depth exceeds
      ``scale_up_depth`` (default ``2 * max_batch_size``) or the rolling
      p99 exceeds ``scale_up_p99_ms``;
    - scale **down** by one replica after ``scale_down_idle_ticks``
      consecutive ticks with no queued work and no batches executed.

    ``background=True`` runs ticks on a daemon thread every
    ``interval_s``; the default leaves ticking to the caller so tests
    and benchmarks stay deterministic.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    scale_up_depth: int | None = None  # None -> 2 * policy.max_batch_size
    scale_up_p99_ms: float | None = None  # None -> depth trigger only
    scale_down_idle_ticks: int = 3
    interval_s: float = 0.25
    background: bool = False

    def __post_init__(self) -> None:
        if self.min_replicas < 0:
            raise ValueError(f"min_replicas must be >= 0, got {self.min_replicas}")
        if self.max_replicas < max(1, self.min_replicas):
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"max(1, min_replicas) ({max(1, self.min_replicas)})"
            )
        if self.scale_down_idle_ticks < 1:
            raise ValueError(
                f"scale_down_idle_ticks must be >= 1, got {self.scale_down_idle_ticks}"
            )
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ServeConfig:
    """Everything a server needs to construct itself.

    Parameters
    ----------
    policy:
        Batching/replica policy (per model, for the fleet).
    warm:
        Pre-build replicas and pre-touch arenas at startup so steady
        state allocates nothing.
    cpus:
        Logical-CPU budget for replica clamping; ``None`` = detect.
    admission:
        Per-tenant token buckets + priority classes; ``None`` disables
        admission control (global queue depth still applies).
    autoscaler:
        Fleet replica autoscaling; ``None`` pins ``policy.replicas``.
    """

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    warm: bool = True
    cpus: int | None = None
    admission: AdmissionPolicy | None = None
    autoscaler: AutoscalerConfig | None = None

    def with_overrides(self, **kwargs) -> "ServeConfig":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def as_dict(self) -> dict:
        """JSON-ready view (printed into benchmark ``extra_info``)."""
        return {
            "policy": self.policy.as_dict(),
            "warm": self.warm,
            "cpus": self.cpus,
            "admission": self.admission.as_dict() if self.admission else None,
            "autoscaler": self.autoscaler.as_dict() if self.autoscaler else None,
        }
