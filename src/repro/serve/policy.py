"""Batching policy: static knobs + latency-predictor-informed seeding.

The micro-batcher's behaviour is governed by three knobs bundled in
:class:`BatchPolicy`.  They can be set by hand, but the point of a
hardware-aware NAS repro is that we already *predict* batched device
latency (:func:`repro.latency.predictors.batch_latency_ms`, the paper's
nn-Meter-style predictors) — :func:`suggest_batch_policy` closes that
loop by picking the largest power-of-two batch whose predicted latency
still fits a target p99 budget, so the serving tier ships with a batch
size consistent with the same device model the search optimized against.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass, replace

import repro.obs as obs

from repro.graph.ir import Graph
from repro.latency.devices import DEVICE_PROFILES, DeviceProfile
from repro.latency.predictors import batch_latency_ms
from repro.parallel.executor import available_cpus

__all__ = [
    "BatchPolicy",
    "bucket_for",
    "clamp_replicas",
    "plan_buckets",
    "predicted_batch_ms",
    "suggest_batch_policy",
    "suggest_max_batch_size",
]

_LOG = logging.getLogger(__name__)

#: Incremented whenever a replica request is clamped to the core count
#: (oversubscription would only add context switching, never throughput).
_CLAMPED = obs.counter("repro_serve_replicas_clamped_total")

#: Hard cap on the batch dimension a policy will ever suggest; beyond
#: this the im2col column matrices outgrow every profiled cache anyway.
MAX_BATCH_CAP = 64


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs governing one :class:`~repro.serve.MicroBatcher`.

    Parameters
    ----------
    max_batch_size:
        Coalesce at most this many requests into one plan invocation.
    max_queue_delay_ms:
        How long the oldest queued request may wait for companions
        before the batcher flushes a partial batch.  This bounds the
        batching contribution to tail latency.
    max_queue_depth:
        Backpressure high-water mark: :meth:`MicroBatcher.submit`
        raises :class:`~repro.serve.ServerOverloaded` once this many
        requests are already queued, shedding load instead of growing
        an unbounded queue.
    replicas:
        Plan replicas (worker threads or processes) executing batches
        concurrently.  :class:`~repro.serve.PlanServer` clamps this to
        the usable core count at startup (see :func:`clamp_replicas`).
    worker_mode:
        ``"thread"`` (default) runs replicas as threads sharing weight
        arrays by reference; ``"process"`` runs them as worker
        processes over shared-memory weight arenas
        (:mod:`repro.serve.workers`), escaping the GIL on multi-core
        machines.  Results are bitwise-identical between the two modes
        for the same ``(image, bucket)`` inputs.
    """

    max_batch_size: int = 8
    max_queue_delay_ms: float = 2.0
    max_queue_depth: int = 128
    replicas: int = 1
    worker_mode: str = "thread"

    def __post_init__(self) -> None:
        if self.worker_mode not in ("thread", "process"):
            raise ValueError(
                f"worker_mode must be 'thread' or 'process', got {self.worker_mode!r}"
            )
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_queue_delay_ms < 0:
            raise ValueError(
                f"max_queue_delay_ms must be >= 0, got {self.max_queue_delay_ms}"
            )
        if self.max_queue_depth < self.max_batch_size:
            raise ValueError(
                f"max_queue_depth ({self.max_queue_depth}) must be >= "
                f"max_batch_size ({self.max_batch_size}) or full batches can "
                f"never form"
            )
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")

    def with_overrides(self, **kw) -> "BatchPolicy":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **kw)

    def as_dict(self) -> dict:
        """JSON-ready view (benchmark payloads, ServeConfig.as_dict)."""
        return {
            "max_batch_size": self.max_batch_size,
            "max_queue_delay_ms": self.max_queue_delay_ms,
            "max_queue_depth": self.max_queue_depth,
            "replicas": self.replicas,
            "worker_mode": self.worker_mode,
        }


def clamp_replicas(replicas: int, cpus: int | None = None) -> int:
    """Clamp a replica request to the usable core count, warning loudly.

    More plan replicas than cores never adds throughput — thread
    replicas time-slice one GIL and process workers time-slice the
    cores — so oversubscription is clamped rather than honored.  The
    clamp is observable: a ``repro_serve_replicas_clamped_total``
    counter tick plus a log warning, never silent.

    ``cpus`` overrides the detected :func:`repro.parallel.available_cpus`
    (deterministic tests; capacity planning for a different box).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    limit = available_cpus() if cpus is None else max(1, int(cpus))
    if replicas <= limit:
        return replicas
    _CLAMPED.inc()
    _LOG.warning(
        "replicas=%d oversubscribes the %d usable core(s); clamping to %d",
        replicas, limit, limit,
    )
    return limit


def bucket_for(n: int, max_batch_size: int) -> int:
    """The power-of-two arena bucket a batch of ``n`` requests runs in.

    Partial batches are padded up to the bucket size so the warm plan
    cache sees a tiny, fixed set of batch shapes — without bucketing,
    every distinct partial-batch size would thrash the arenas with a
    fresh allocation pattern.  The bucket never exceeds
    ``max_batch_size`` (itself not required to be a power of two: a
    policy of 12 yields buckets 1, 2, 4, 8, 12).
    """
    if n < 1:
        raise ValueError(f"batch must be >= 1, got {n}")
    if n > max_batch_size:
        raise ValueError(f"batch {n} exceeds max_batch_size {max_batch_size}")
    bucket = 1
    while bucket < n:
        bucket *= 2
    return min(bucket, max_batch_size)


def plan_buckets(max_batch_size: int) -> list[int]:
    """All buckets :func:`bucket_for` can produce under a policy."""
    buckets: list[int] = []
    b = 1
    while b < max_batch_size:
        buckets.append(b)
        b *= 2
    buckets.append(max_batch_size)
    return buckets


def predicted_batch_ms(
    graph: Graph,
    batch: int,
    profiles: dict[str, DeviceProfile] | None = None,
) -> float:
    """Mean predicted batched latency across device profiles (ms).

    Uses the paper's 4-device aggregation (mean over
    :data:`~repro.latency.devices.DEVICE_PROFILES`) unless a specific
    profile subset is given.
    """
    profiles = DEVICE_PROFILES if profiles is None else profiles
    if not profiles:
        raise ValueError("need at least one device profile")
    return sum(batch_latency_ms(graph, batch, p) for p in profiles.values()) / len(profiles)


def suggest_max_batch_size(
    graph: Graph,
    target_p99_ms: float,
    profiles: dict[str, DeviceProfile] | None = None,
    cap: int = MAX_BATCH_CAP,
) -> int:
    """Largest power-of-two batch whose predicted latency fits the budget.

    Returns at least 1 even when a single image already misses the
    target (serving a request slowly beats not serving it at all; the
    caller can inspect :func:`predicted_batch_ms` to warn).
    """
    if target_p99_ms <= 0:
        raise ValueError(f"target_p99_ms must be > 0, got {target_p99_ms}")
    best = 1
    b = 2
    while b <= cap:
        if predicted_batch_ms(graph, b, profiles) > target_p99_ms:
            break
        best = b
        b *= 2
    return best


def suggest_batch_policy(
    graph: Graph,
    target_p99_ms: float,
    profiles: dict[str, DeviceProfile] | None = None,
    replicas: int | None = 1,
    cap: int = MAX_BATCH_CAP,
    cpus: int | None = None,
    worker_mode: str | None = None,
) -> BatchPolicy:
    """Seed a :class:`BatchPolicy` from the device latency predictors.

    - ``max_batch_size`` — :func:`suggest_max_batch_size` against the
      p99 budget;
    - ``max_queue_delay_ms`` — half the *headroom* left in the budget
      after the chosen batch's predicted execution time (clamped to
      [0.25 ms, target/2]), so queueing plus execution stays inside the
      target even when the batch fills slowly;
    - ``max_queue_depth`` — four full batches per replica, enough to
      keep workers fed through arrival jitter without letting queue
      wait dominate the p99;
    - ``replicas`` — clamped to the usable core count
      (:func:`clamp_replicas`); pass ``None`` to take one replica per
      usable core;
    - ``worker_mode`` — defaulted core-count-aware: ``"process"`` when
      more than one replica runs (the GIL would serialize thread
      replicas), ``"thread"`` for a single replica where process
      staging buys nothing.  ``cpus`` overrides detection for
      deterministic tests.
    """
    cores = available_cpus() if cpus is None else max(1, int(cpus))
    replicas = cores if replicas is None else replicas
    replicas = clamp_replicas(replicas, cpus=cores)
    if worker_mode is None:
        worker_mode = "process" if replicas > 1 else "thread"
    max_batch = suggest_max_batch_size(graph, target_p99_ms, profiles, cap=cap)
    headroom = target_p99_ms - predicted_batch_ms(graph, max_batch, profiles)
    delay = min(max(headroom / 2.0, 0.25), target_p99_ms / 2.0)
    depth = max(4 * max_batch * replicas, max_batch)
    return BatchPolicy(
        max_batch_size=max_batch,
        max_queue_delay_ms=delay,
        max_queue_depth=depth,
        replicas=replicas,
        worker_mode=worker_mode,
    )
