"""Load generation and throughput reporting for the serving tier.

Two modes over one :class:`~repro.serve.PlanServer`:

- **closed loop** (default) — each client submits, waits for its result,
  and immediately submits again; concurrency equals the client count.
  This is how the CI benchmark measures peak sustainable throughput.
- **open loop** — clients pace submissions to an aggregate arrival rate
  (images/sec) regardless of completions, which surfaces queueing and
  backpressure behaviour (rejections past the high-water mark).

:func:`serial_baseline` measures the same model single-image,
single-stream through :meth:`InferencePlan.run` — the reference the
acceptance criterion's >= 2x throughput ratio is taken against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.deploy.plan import InferencePlan
from repro.parallel.executor import ThreadPoolExecutorBackend
from repro.serve.batcher import DeadlineExceeded, ServeRequest, ServerOverloaded
from repro.serve.fleet import FleetServer
from repro.serve.server import PlanServer

__all__ = [
    "FleetLoadReport",
    "LoadReport",
    "TenantLoad",
    "run_fleet_load",
    "run_load",
    "serial_baseline",
]


def _percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return float("nan")
    return float(np.percentile(np.asarray(latencies), q))


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    duration_s: float
    clients: int
    served: int
    rejected: int
    errors: int
    throughput_ips: float
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p99: float
    #: Mean effective batch size observed by the server's workers
    #: (served images / executed batches); 0 when untracked.
    mean_batch_size: float = 0.0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready payload (what ``serve-bench --json`` emits)."""
        return {
            "duration_s": round(self.duration_s, 4),
            "clients": self.clients,
            "served": self.served,
            "rejected": self.rejected,
            "errors": self.errors,
            "throughput_ips": round(self.throughput_ips, 2),
            "latency_ms_mean": round(self.latency_ms_mean, 3),
            "latency_ms_p50": round(self.latency_ms_p50, 3),
            "latency_ms_p99": round(self.latency_ms_p99, 3),
            "mean_batch_size": round(self.mean_batch_size, 2),
            **self.extra,
        }

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"load run: {self.duration_s:.2f}s, {self.clients} client(s)",
            f"  served      {self.served}  ({self.throughput_ips:.1f} images/sec)",
            f"  rejected    {self.rejected}",
            f"  errors      {self.errors}",
            f"  latency ms  mean {self.latency_ms_mean:.2f}  "
            f"p50 {self.latency_ms_p50:.2f}  p99 {self.latency_ms_p99:.2f}",
        ]
        if self.mean_batch_size:
            lines.append(f"  mean batch  {self.mean_batch_size:.2f}")
        for key, value in self.extra.items():
            lines.append(f"  {key}  {value}")
        return "\n".join(lines)


def run_load(
    server: PlanServer,
    duration_s: float = 2.0,
    clients: int = 8,
    arrival_rate_ips: float | None = None,
    seed: int = 0,
    image: np.ndarray | None = None,
) -> LoadReport:
    """Drive a server with concurrent clients and measure the outcome.

    Parameters
    ----------
    server:
        A running :class:`~repro.serve.PlanServer` (left open on return).
    duration_s:
        Wall-clock run length; in-flight requests at the deadline are
        still awaited (they count toward latency, not throughput).
    clients:
        Concurrent client threads (the closed-loop concurrency level).
    arrival_rate_ips:
        ``None`` for closed-loop; otherwise the *aggregate* open-loop
        arrival rate in images/sec, split evenly across clients.
        Overload rejections are counted and backed off, not retried.
    seed:
        Seeds the per-client input images (distinct per client).
    image:
        Fixed input image to use instead of random per-client data.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    shape = server.plan.input_shape
    # Executed-batch delta gives the mean effective batch size; the
    # server counts batches directly in both worker modes (the plan
    # cache only sees thread-mode checkouts).
    batches_before = server.batches_executed

    def client(idx: int) -> tuple[list[float], int, int]:
        rng = np.random.default_rng(seed + idx)
        x = image if image is not None else rng.standard_normal(shape).astype(np.float32)
        period = clients / arrival_rate_ips if arrival_rate_ips else 0.0
        latencies: list[float] = []
        rejected = errors = 0
        deadline = time.monotonic() + duration_s
        next_send = time.monotonic()
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            if period:
                if now < next_send:
                    time.sleep(min(next_send - now, deadline - now))
                    continue
                next_send += period
            t0 = time.monotonic()
            try:
                fut = server.submit(x)
            except ServerOverloaded:
                rejected += 1
                time.sleep(min(0.001, duration_s / 100))
                continue
            if period:
                # Open loop: detach — account the future on completion.
                fut.add_done_callback(
                    lambda f, t0=t0: latencies.append(time.monotonic() - t0)
                    if f.exception() is None
                    else None
                )
                continue
            try:
                fut.result()
                latencies.append(time.monotonic() - t0)
            except Exception:
                errors += 1
        return latencies, rejected, errors

    started = time.monotonic()
    with ThreadPoolExecutorBackend(workers=clients) as pool:
        outcomes = pool.map(client, list(range(clients)))
    # Let any detached open-loop futures settle before reading counters.
    if arrival_rate_ips:
        time.sleep(0.05)
    elapsed = time.monotonic() - started

    latencies = [lat for lats, _, _ in outcomes for lat in lats]
    rejected = sum(r for _, r, _ in outcomes)
    errors = sum(e for _, _, e in outcomes)
    served = len(latencies)
    batches = server.batches_executed - batches_before
    latencies_ms = [1e3 * v for v in latencies]
    return LoadReport(
        duration_s=elapsed,
        clients=clients,
        served=served,
        rejected=rejected,
        errors=errors,
        throughput_ips=served / elapsed if elapsed > 0 else 0.0,
        latency_ms_mean=float(np.mean(latencies_ms)) if latencies_ms else float("nan"),
        latency_ms_p50=_percentile(latencies_ms, 50),
        latency_ms_p99=_percentile(latencies_ms, 99),
        mean_batch_size=(served / batches) if batches else 0.0,
    )


def serial_baseline(
    plan: InferencePlan,
    duration_s: float = 1.0,
    seed: int = 0,
    image: np.ndarray | None = None,
) -> LoadReport:
    """Single-stream, single-image reference: loop ``plan.run`` for a while."""
    shape = plan.input_shape
    rng = np.random.default_rng(seed)
    x = image if image is not None else rng.standard_normal(shape).astype(np.float32)
    x1 = x[None]
    latencies: list[float] = []
    deadline = time.monotonic() + duration_s
    started = time.monotonic()
    while time.monotonic() < deadline:
        t0 = time.monotonic()
        plan.run(x1)
        latencies.append(time.monotonic() - t0)
    elapsed = time.monotonic() - started
    latencies_ms = [1e3 * v for v in latencies]
    return LoadReport(
        duration_s=elapsed,
        clients=1,
        served=len(latencies),
        rejected=0,
        errors=0,
        throughput_ips=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_ms_mean=float(np.mean(latencies_ms)) if latencies_ms else float("nan"),
        latency_ms_p50=_percentile(latencies_ms, 50),
        latency_ms_p99=_percentile(latencies_ms, 99),
        mean_batch_size=1.0,
    )


# -- multi-tenant fleet load ---------------------------------------------------


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's traffic profile for :func:`run_fleet_load`.

    Every field except ``name``/``clients`` maps onto the
    :class:`~repro.serve.ServeRequest` the tenant's clients submit:
    a wall-clock SLO (``deadline_ms``), a device-predicted routing
    budget (``budget_ms`` against ``device``), an accuracy floor, an
    explicit priority class, or a pinned ``model`` hint.
    ``arrival_rate_ips`` switches the tenant open-loop (aggregate rate
    across its clients); ``None`` is closed-loop.
    """

    name: str
    clients: int = 4
    arrival_rate_ips: float | None = None
    deadline_ms: float | None = None
    budget_ms: float | None = None
    accuracy_floor: float = 0.0
    priority: int | None = None
    device: str | None = None
    model: str | None = None


@dataclass
class FleetLoadReport:
    """Aggregate outcome of one multi-tenant fleet load run."""

    duration_s: float
    served: int
    rejected: int
    expired: int
    errors: int
    throughput_ips: float
    slo_attained: int
    slo_missed: int
    #: attained / (attained + missed + expired) over SLO-carrying
    #: requests; 1.0 when no request declared a deadline.
    slo_attainment: float
    #: Every routed request's predicted latency fit its declared budget.
    all_routes_fit_budget: bool
    per_tenant: dict = field(default_factory=dict)
    per_model: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready payload (what ``serve-bench --fleet --json`` emits)."""
        return {
            "duration_s": round(self.duration_s, 4),
            "served": self.served,
            "rejected": self.rejected,
            "expired": self.expired,
            "errors": self.errors,
            "throughput_ips": round(self.throughput_ips, 2),
            "slo_attained": self.slo_attained,
            "slo_missed": self.slo_missed,
            "slo_attainment": round(self.slo_attainment, 4),
            "all_routes_fit_budget": self.all_routes_fit_budget,
            "per_tenant": self.per_tenant,
            "per_model": self.per_model,
            **self.extra,
        }

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"fleet load run: {self.duration_s:.2f}s",
            f"  served      {self.served}  ({self.throughput_ips:.1f} images/sec)",
            f"  rejected    {self.rejected}   expired {self.expired}   "
            f"errors {self.errors}",
            f"  SLO         {self.slo_attained} attained / {self.slo_missed} missed "
            f"({100 * self.slo_attainment:.1f}% attainment)",
            f"  budgets     {'all routes fit' if self.all_routes_fit_budget else 'BUDGET MISSES'}",
        ]
        for tenant, stats in sorted(self.per_tenant.items()):
            lines.append(
                f"  tenant {tenant:<12} served {stats['served']:<6} "
                f"rejected {stats['rejected']:<5} expired {stats['expired']:<5} "
                f"p99 {stats['latency_ms_p99']:.2f} ms"
            )
        for model, count in sorted(self.per_model.items()):
            lines.append(f"  model  {model:<12} routed {count}")
        return "\n".join(lines)


def run_fleet_load(
    fleet: FleetServer,
    tenants: list[TenantLoad],
    duration_s: float = 2.0,
    seed: int = 0,
    image: np.ndarray | None = None,
) -> FleetLoadReport:
    """Drive a fleet with per-tenant client pools and measure the outcome.

    Each tenant runs ``tenant.clients`` closed-loop client threads (or
    open-loop at ``arrival_rate_ips``) submitting
    :class:`~repro.serve.ServeRequest` objects built from its profile.
    Per-response telemetry is folded into per-tenant latency/SLO stats
    and per-model routing counts; admission/overload rejections and
    deadline expiries are counted, not retried.  The fleet is left open
    on return.
    """
    if not tenants:
        raise ValueError("need at least one TenantLoad")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    shape = fleet._input_shape
    if shape is None:
        raise RuntimeError("fleet has no registered models")

    jobs = [(t, c) for t in tenants for c in range(t.clients)]

    def client(job_idx: int) -> dict:
        tenant, client_idx = jobs[job_idx]
        rng = np.random.default_rng(seed + 7919 * job_idx)
        x = image if image is not None else rng.standard_normal(shape).astype(np.float32)
        period = (
            tenant.clients / tenant.arrival_rate_ips
            if tenant.arrival_rate_ips
            else 0.0
        )
        latencies: list[float] = []
        rejected = expired = errors = attained = missed = 0
        routed: dict[str, int] = {}
        fits = True
        deadline = time.monotonic() + duration_s
        next_send = time.monotonic()
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            if period:
                if now < next_send:
                    time.sleep(min(next_send - now, deadline - now))
                    continue
                next_send += period
            req = ServeRequest(
                image=x,
                tenant=tenant.name,
                priority=tenant.priority,
                deadline_ms=tenant.deadline_ms,
                budget_ms=tenant.budget_ms,
                model=tenant.model,
                device=tenant.device,
                accuracy_floor=tenant.accuracy_floor,
            )
            t0 = time.monotonic()
            try:
                fut = fleet.submit(req)
            except ServerOverloaded:
                rejected += 1
                time.sleep(min(0.001, duration_s / 100))
                continue
            try:
                resp = fut.result()
            except DeadlineExceeded:
                expired += 1
                continue
            except Exception:
                errors += 1
                continue
            latencies.append(time.monotonic() - t0)
            routed[resp.model] = routed.get(resp.model, 0) + 1
            if resp.deadline_met is True:
                attained += 1
            elif resp.deadline_met is False:
                missed += 1
            budget = tenant.budget_ms if tenant.budget_ms is not None else tenant.deadline_ms
            if (
                budget is not None
                and resp.predicted_ms is not None
                and resp.predicted_ms > budget
            ):
                fits = False
        return {
            "tenant": tenant.name,
            "latencies": latencies,
            "rejected": rejected,
            "expired": expired,
            "errors": errors,
            "attained": attained,
            "missed": missed,
            "routed": routed,
            "fits": fits,
        }

    started = time.monotonic()
    with ThreadPoolExecutorBackend(workers=len(jobs)) as pool:
        outcomes = pool.map(client, list(range(len(jobs))))
    elapsed = time.monotonic() - started

    per_tenant: dict[str, dict] = {}
    per_model: dict[str, int] = {}
    total_lat: list[float] = []
    rejected = expired = errors = attained = missed = 0
    fits = True
    for out in outcomes:
        name = out["tenant"]
        stats = per_tenant.setdefault(name, {
            "served": 0, "rejected": 0, "expired": 0, "errors": 0,
            "slo_attained": 0, "slo_missed": 0, "_lat": [],
        })
        stats["served"] += len(out["latencies"])
        stats["rejected"] += out["rejected"]
        stats["expired"] += out["expired"]
        stats["errors"] += out["errors"]
        stats["slo_attained"] += out["attained"]
        stats["slo_missed"] += out["missed"]
        stats["_lat"].extend(out["latencies"])
        for model, count in out["routed"].items():
            per_model[model] = per_model.get(model, 0) + count
        total_lat.extend(out["latencies"])
        rejected += out["rejected"]
        expired += out["expired"]
        errors += out["errors"]
        attained += out["attained"]
        missed += out["missed"]
        fits = fits and out["fits"]
    for stats in per_tenant.values():
        lat_ms = [1e3 * v for v in stats.pop("_lat")]
        stats["latency_ms_mean"] = (
            float(np.mean(lat_ms)) if lat_ms else float("nan")
        )
        stats["latency_ms_p50"] = _percentile(lat_ms, 50)
        stats["latency_ms_p99"] = _percentile(lat_ms, 99)
        slo_total = stats["slo_attained"] + stats["slo_missed"] + stats["expired"]
        stats["slo_attainment"] = (
            stats["slo_attained"] / slo_total if slo_total else 1.0
        )
    served = len(total_lat)
    slo_total = attained + missed + expired
    return FleetLoadReport(
        duration_s=elapsed,
        served=served,
        rejected=rejected,
        expired=expired,
        errors=errors,
        throughput_ips=served / elapsed if elapsed > 0 else 0.0,
        slo_attained=attained,
        slo_missed=missed,
        slo_attainment=attained / slo_total if slo_total else 1.0,
        all_routes_fit_budget=fits,
        per_tenant=per_tenant,
        per_model=per_model,
    )
