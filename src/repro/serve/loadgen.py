"""Load generation and throughput reporting for the serving tier.

Two modes over one :class:`~repro.serve.PlanServer`:

- **closed loop** (default) — each client submits, waits for its result,
  and immediately submits again; concurrency equals the client count.
  This is how the CI benchmark measures peak sustainable throughput.
- **open loop** — clients pace submissions to an aggregate arrival rate
  (images/sec) regardless of completions, which surfaces queueing and
  backpressure behaviour (rejections past the high-water mark).

:func:`serial_baseline` measures the same model single-image,
single-stream through :meth:`InferencePlan.run` — the reference the
acceptance criterion's >= 2x throughput ratio is taken against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.deploy.plan import InferencePlan
from repro.parallel.executor import ThreadPoolExecutorBackend
from repro.serve.batcher import ServerOverloaded
from repro.serve.server import PlanServer

__all__ = ["LoadReport", "run_load", "serial_baseline"]


def _percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return float("nan")
    return float(np.percentile(np.asarray(latencies), q))


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    duration_s: float
    clients: int
    served: int
    rejected: int
    errors: int
    throughput_ips: float
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p99: float
    #: Mean effective batch size observed by the server's workers
    #: (served images / executed batches); 0 when untracked.
    mean_batch_size: float = 0.0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready payload (what ``serve-bench --json`` emits)."""
        return {
            "duration_s": round(self.duration_s, 4),
            "clients": self.clients,
            "served": self.served,
            "rejected": self.rejected,
            "errors": self.errors,
            "throughput_ips": round(self.throughput_ips, 2),
            "latency_ms_mean": round(self.latency_ms_mean, 3),
            "latency_ms_p50": round(self.latency_ms_p50, 3),
            "latency_ms_p99": round(self.latency_ms_p99, 3),
            "mean_batch_size": round(self.mean_batch_size, 2),
            **self.extra,
        }

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"load run: {self.duration_s:.2f}s, {self.clients} client(s)",
            f"  served      {self.served}  ({self.throughput_ips:.1f} images/sec)",
            f"  rejected    {self.rejected}",
            f"  errors      {self.errors}",
            f"  latency ms  mean {self.latency_ms_mean:.2f}  "
            f"p50 {self.latency_ms_p50:.2f}  p99 {self.latency_ms_p99:.2f}",
        ]
        if self.mean_batch_size:
            lines.append(f"  mean batch  {self.mean_batch_size:.2f}")
        for key, value in self.extra.items():
            lines.append(f"  {key}  {value}")
        return "\n".join(lines)


def run_load(
    server: PlanServer,
    duration_s: float = 2.0,
    clients: int = 8,
    arrival_rate_ips: float | None = None,
    seed: int = 0,
    image: np.ndarray | None = None,
) -> LoadReport:
    """Drive a server with concurrent clients and measure the outcome.

    Parameters
    ----------
    server:
        A running :class:`~repro.serve.PlanServer` (left open on return).
    duration_s:
        Wall-clock run length; in-flight requests at the deadline are
        still awaited (they count toward latency, not throughput).
    clients:
        Concurrent client threads (the closed-loop concurrency level).
    arrival_rate_ips:
        ``None`` for closed-loop; otherwise the *aggregate* open-loop
        arrival rate in images/sec, split evenly across clients.
        Overload rejections are counted and backed off, not retried.
    seed:
        Seeds the per-client input images (distinct per client).
    image:
        Fixed input image to use instead of random per-client data.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    shape = server.plan.input_shape
    # Executed-batch delta gives the mean effective batch size; the
    # server counts batches directly in both worker modes (the plan
    # cache only sees thread-mode checkouts).
    batches_before = server.batches_executed

    def client(idx: int) -> tuple[list[float], int, int]:
        rng = np.random.default_rng(seed + idx)
        x = image if image is not None else rng.standard_normal(shape).astype(np.float32)
        period = clients / arrival_rate_ips if arrival_rate_ips else 0.0
        latencies: list[float] = []
        rejected = errors = 0
        deadline = time.monotonic() + duration_s
        next_send = time.monotonic()
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            if period:
                if now < next_send:
                    time.sleep(min(next_send - now, deadline - now))
                    continue
                next_send += period
            t0 = time.monotonic()
            try:
                fut = server.submit(x)
            except ServerOverloaded:
                rejected += 1
                time.sleep(min(0.001, duration_s / 100))
                continue
            if period:
                # Open loop: detach — account the future on completion.
                fut.add_done_callback(
                    lambda f, t0=t0: latencies.append(time.monotonic() - t0)
                    if f.exception() is None
                    else None
                )
                continue
            try:
                fut.result()
                latencies.append(time.monotonic() - t0)
            except Exception:
                errors += 1
        return latencies, rejected, errors

    started = time.monotonic()
    with ThreadPoolExecutorBackend(workers=clients) as pool:
        outcomes = pool.map(client, list(range(clients)))
    # Let any detached open-loop futures settle before reading counters.
    if arrival_rate_ips:
        time.sleep(0.05)
    elapsed = time.monotonic() - started

    latencies = [lat for lats, _, _ in outcomes for lat in lats]
    rejected = sum(r for _, r, _ in outcomes)
    errors = sum(e for _, _, e in outcomes)
    served = len(latencies)
    batches = server.batches_executed - batches_before
    latencies_ms = [1e3 * v for v in latencies]
    return LoadReport(
        duration_s=elapsed,
        clients=clients,
        served=served,
        rejected=rejected,
        errors=errors,
        throughput_ips=served / elapsed if elapsed > 0 else 0.0,
        latency_ms_mean=float(np.mean(latencies_ms)) if latencies_ms else float("nan"),
        latency_ms_p50=_percentile(latencies_ms, 50),
        latency_ms_p99=_percentile(latencies_ms, 99),
        mean_batch_size=(served / batches) if batches else 0.0,
    )


def serial_baseline(
    plan: InferencePlan,
    duration_s: float = 1.0,
    seed: int = 0,
    image: np.ndarray | None = None,
) -> LoadReport:
    """Single-stream, single-image reference: loop ``plan.run`` for a while."""
    shape = plan.input_shape
    rng = np.random.default_rng(seed)
    x = image if image is not None else rng.standard_normal(shape).astype(np.float32)
    x1 = x[None]
    latencies: list[float] = []
    deadline = time.monotonic() + duration_s
    started = time.monotonic()
    while time.monotonic() < deadline:
        t0 = time.monotonic()
        plan.run(x1)
        latencies.append(time.monotonic() - t0)
    elapsed = time.monotonic() - started
    latencies_ms = [1e3 * v for v in latencies]
    return LoadReport(
        duration_s=elapsed,
        clients=1,
        served=len(latencies),
        rejected=0,
        errors=0,
        throughput_ips=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_ms_mean=float(np.mean(latencies_ms)) if latencies_ms else float("nan"),
        latency_ms_p50=_percentile(latencies_ms, 50),
        latency_ms_p99=_percentile(latencies_ms, 99),
        mean_batch_size=1.0,
    )
