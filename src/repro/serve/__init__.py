"""Throughput-oriented serving over compiled inference plans.

The paper's end goal is *deployment* of the Pareto-optimal models on
resource-limited devices; this package is the request path for that —
the layer that turns one-shot :meth:`InferencePlan.run` calls into a
server that batches, parallelizes, and sheds load:

- :class:`MicroBatcher` — dynamic micro-batching with deadline flush,
  bounded-queue backpressure (:class:`ServerOverloaded`), graceful drain;
- :class:`PlanCache` — warm plan replicas + pinned input buffers keyed
  by ``(model fingerprint, batch bucket)`` with power-of-two padding,
  so steady-state serving performs zero arena allocations;
- :class:`PlanServer` — N worker threads, each running exclusive plan
  replicas (weights shared, arenas private); with
  ``BatchPolicy(worker_mode="process")`` batches execute in a
  :class:`WorkerPool` of worker *processes* over shared-memory weight
  arenas (:mod:`repro.serve.shm`), escaping the GIL on multi-core
  machines with bitwise-identical results;
- :class:`BatchPolicy` / :func:`suggest_batch_policy` — batching knobs,
  optionally seeded from the device latency predictors against a p99
  budget;
- :func:`run_load` / :func:`serial_baseline` — closed/open-loop load
  generation and the single-stream reference for throughput ratios.

Everything is instrumented through :mod:`repro.obs` (queue depth,
batch-size / queue-wait / end-to-end latency histograms, served and
rejected counters) — enable with ``repro.obs.configure()``.
"""

from repro.serve.batcher import MicroBatcher, Request, ServerOverloaded
from repro.serve.cache import CachedPlan, PlanCache
from repro.serve.loadgen import LoadReport, run_load, serial_baseline
from repro.serve.policy import (
    BatchPolicy,
    bucket_for,
    clamp_replicas,
    plan_buckets,
    predicted_batch_ms,
    suggest_batch_policy,
    suggest_max_batch_size,
)
from repro.serve.server import PlanServer
from repro.serve.shm import (
    AttachedPlan,
    PlanSpec,
    SharedPlanWeights,
    attach_plan,
    publish_plan,
)
from repro.serve.workers import WorkerDied, WorkerPool, WorkerTaskError

__all__ = [
    "AttachedPlan",
    "BatchPolicy",
    "CachedPlan",
    "LoadReport",
    "MicroBatcher",
    "PlanCache",
    "PlanServer",
    "PlanSpec",
    "Request",
    "ServerOverloaded",
    "SharedPlanWeights",
    "WorkerDied",
    "WorkerPool",
    "WorkerTaskError",
    "attach_plan",
    "bucket_for",
    "clamp_replicas",
    "plan_buckets",
    "predicted_batch_ms",
    "publish_plan",
    "run_load",
    "serial_baseline",
    "suggest_batch_policy",
    "suggest_max_batch_size",
]
