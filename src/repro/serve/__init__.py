"""Throughput-oriented serving over compiled inference plans.

The paper's end goal is *deployment* of the Pareto-optimal models on
resource-limited devices; this package is the request path for that —
the layer that turns one-shot :meth:`InferencePlan.run` calls into a
server that batches, parallelizes, routes, and sheds load:

- :class:`ServeRequest` / :class:`ServeResponse` — the canonical
  request objects: image plus tenant, priority, wall-clock SLO
  deadline, device/latency budget, model hint, and accuracy floor in;
  logits row plus served model and queue/exec timings out;
- :class:`MicroBatcher` — dynamic micro-batching with priority classes,
  deadline flush, fail-fast SLO expiry (:class:`DeadlineExceeded`),
  bounded-queue backpressure (:class:`ServerOverloaded`), graceful
  drain;
- :class:`AdmissionPolicy` / :class:`AdmissionController` — per-tenant
  token buckets and priority defaults (:class:`TenantOverloaded` when a
  bucket runs dry), shared fleet-wide;
- :class:`PlanCache` — warm plan replicas + pinned input buffers keyed
  by ``(model fingerprint, batch bucket)`` with power-of-two padding,
  so steady-state serving performs zero arena allocations;
- :class:`PlanServer` — single-model serving: N worker threads, each
  running exclusive plan replicas (weights shared, arenas private);
  with ``BatchPolicy(worker_mode="process")`` batches execute in a
  :class:`WorkerPool` of worker *processes* over shared-memory weight
  arenas (:mod:`repro.serve.shm`), escaping the GIL on multi-core
  machines with bitwise-identical results;
- :class:`FleetServer` — multi-model serving over one shared cache:
  requests route to the cheapest registered model predicted (by the
  :mod:`repro.latency` device predictors) to meet their accuracy floor
  and latency budget, and a tick-driven autoscaler grows/retires
  replicas per model from queue-depth and p99 signals;
- :class:`ServeConfig` — consolidated construction config
  (:class:`BatchPolicy` + warm + cpus + admission +
  :class:`AutoscalerConfig`) accepted by both servers;
- :func:`run_load` / :func:`run_fleet_load` / :func:`serial_baseline` —
  closed/open-loop and multi-tenant load generation plus the
  single-stream reference for throughput ratios.

Everything is instrumented through :mod:`repro.obs` (queue depth,
batch-size / queue-wait / end-to-end latency histograms, served /
rejected / expired counters, per-tenant admission counters, per-model
replica gauges and scale events, SLO attainment) — enable with
``repro.obs.configure()``.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    TenantOverloaded,
    TenantQuota,
    TokenBucket,
)
from repro.serve.batcher import (
    DeadlineExceeded,
    MicroBatcher,
    Request,
    ServeRequest,
    ServeResponse,
    ServerOverloaded,
)
from repro.serve.cache import CachedPlan, PlanCache
from repro.serve.config import AutoscalerConfig, ServeConfig
from repro.serve.fleet import FleetServer, ModelSpec
from repro.serve.loadgen import (
    FleetLoadReport,
    LoadReport,
    TenantLoad,
    run_fleet_load,
    run_load,
    serial_baseline,
)
from repro.serve.policy import (
    BatchPolicy,
    bucket_for,
    clamp_replicas,
    plan_buckets,
    predicted_batch_ms,
    suggest_batch_policy,
    suggest_max_batch_size,
)
from repro.serve.server import PlanServer
from repro.serve.shm import (
    AttachedPlan,
    PlanSpec,
    SharedPlanWeights,
    attach_plan,
    publish_plan,
)
from repro.serve.workers import WorkerDied, WorkerPool, WorkerTaskError

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AttachedPlan",
    "AutoscalerConfig",
    "BatchPolicy",
    "CachedPlan",
    "DeadlineExceeded",
    "FleetLoadReport",
    "FleetServer",
    "LoadReport",
    "MicroBatcher",
    "ModelSpec",
    "PlanCache",
    "PlanServer",
    "PlanSpec",
    "Request",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "ServerOverloaded",
    "SharedPlanWeights",
    "TenantLoad",
    "TenantOverloaded",
    "TenantQuota",
    "TokenBucket",
    "WorkerDied",
    "WorkerPool",
    "WorkerTaskError",
    "attach_plan",
    "bucket_for",
    "clamp_replicas",
    "plan_buckets",
    "predicted_batch_ms",
    "publish_plan",
    "run_fleet_load",
    "run_load",
    "serial_baseline",
    "suggest_batch_policy",
    "suggest_max_batch_size",
]
