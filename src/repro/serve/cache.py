"""Batch-bucketed warm cache of plan replicas and pinned input buffers.

Compiled plans pool their activation scratch in an :class:`~repro.deploy.Arena`,
but the pool is shape-driven: alternating batch sizes through *one* plan
keeps resizing the working set and re-allocating.  The cache fixes the
shape set — every batch runs in a power-of-two **bucket** (partial
batches padded up, results sliced back down), and each
``(model fingerprint, bucket)`` pair owns warm plan replicas whose
arenas only ever see that one batch shape.  After
:meth:`PlanCache.warm`, steady-state serving touches zero new arena
allocations.

The cache is a *checkout pool*, not a lookup table: :meth:`acquire`
hands a replica out exclusively and :meth:`release` returns it, so
concurrent workers can never run the same plan (whose
:meth:`~repro.deploy.InferencePlan.run` is single-threaded by design —
see :class:`~repro.deploy.ConcurrentPlanError`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

import repro.obs as obs

from repro.deploy.plan import InferencePlan
from repro.serve.policy import bucket_for, plan_buckets

__all__ = ["CachedPlan", "PlanCache"]

_HITS = obs.counter("repro_serve_plan_cache_hits_total")
_MISSES = obs.counter("repro_serve_plan_cache_misses_total")


@dataclass
class CachedPlan:
    """One checked-out cache entry: a plan replica pinned to a bucket.

    ``input_buf`` is a persistent ``(bucket, C, H, W)`` staging buffer —
    workers copy request images into its rows (unused padding rows stay
    zero), run the plan on the whole buffer, and slice the first ``n``
    result rows back out.  Keeping it with the entry means batch
    assembly allocates nothing either.
    """

    fingerprint: str
    bucket: int
    plan: InferencePlan
    input_buf: np.ndarray

    def run_padded(self, images: "list[np.ndarray] | np.ndarray") -> np.ndarray:
        """Run ``n <= bucket`` images through the bucket-padded plan.

        Returns only the first ``n`` output rows.  Per-request results
        are a pure function of ``(image, bucket, row)``: each sample's
        GEMM columns are its own, so padding rows (zeros) and
        co-batched neighbours never leak into real outputs (row
        position itself can shift results by +-1 ulp via BLAS panel
        alignment) — fuzzed per-request equivalence against the
        interpreted runtime is enforced by ``tests/test_serve.py``.
        """
        n = len(images)
        if n < 1 or n > self.bucket:
            raise ValueError(f"got {n} images for bucket {self.bucket}")
        for i in range(n):
            self.input_buf[i] = images[i]
        out = self.plan.run(self.input_buf)
        return out[:n]


class PlanCache:
    """Checkout pool of warm plan replicas keyed by (fingerprint, bucket).

    Register a compiled template plan per model with :meth:`register`;
    workers then :meth:`acquire` an exclusive replica for a batch
    bucket, run it, and :meth:`release` it back.  Replicas share the
    template's weight arrays (see :meth:`~repro.deploy.InferencePlan.replicate`)
    and are created on first use (a cache *miss*) or pre-created by
    :meth:`warm`; subsequent acquires of the same key are *hits* that
    reuse both the replica and its warmed arena pool.
    """

    def __init__(self, max_batch_size: int = 8) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.max_batch_size = max_batch_size
        self._templates: dict[str, InferencePlan] = {}
        self._pool: dict[tuple[str, int], list[CachedPlan]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # -- registration ----------------------------------------------------------

    def register(self, plan: InferencePlan) -> str:
        """Register a compiled template plan; returns its fingerprint."""
        if not plan.fingerprint:
            raise ValueError(
                "plan has no fingerprint; compile it via compile_plan()/"
                "OnnxliteRuntime.compile() so the cache can key on model identity"
            )
        with self._lock:
            self._templates[plan.fingerprint] = plan
        return plan.fingerprint

    @property
    def fingerprints(self) -> list[str]:
        with self._lock:
            return list(self._templates)

    def bucket_for(self, n: int) -> int:
        """The bucket a batch of ``n`` runs in (policy-clamped pow2)."""
        return bucket_for(n, self.max_batch_size)

    # -- checkout --------------------------------------------------------------

    def acquire(self, fingerprint: str, bucket: int) -> CachedPlan:
        """Check out an exclusive warm replica for ``(fingerprint, bucket)``."""
        with self._lock:
            template = self._templates.get(fingerprint)
            if template is None:
                raise KeyError(f"no plan registered for fingerprint {fingerprint!r}")
            entries = self._pool.get((fingerprint, bucket))
            if entries:
                self.hits += 1
                _HITS.inc()
                return entries.pop()
            self.misses += 1
            _MISSES.inc()
        # Replica construction happens outside the lock (it binds a full
        # kernel set); worst case a burst builds one extra replica that
        # simply joins the pool on release.
        replica = template.replicate()
        c, h, w = template.input_shape
        input_buf = np.zeros((bucket, c, h, w), dtype=np.float32)
        return CachedPlan(
            fingerprint=fingerprint, bucket=bucket, plan=replica, input_buf=input_buf
        )

    def release(self, entry: CachedPlan) -> None:
        """Return a checked-out replica to the warm pool."""
        with self._lock:
            self._pool.setdefault((entry.fingerprint, entry.bucket), []).append(entry)

    # -- warmup / stats --------------------------------------------------------

    def warm(self, fingerprint: str, replicas: int = 1, buckets: "list[int] | None" = None) -> int:
        """Pre-create and pre-run replicas so serving starts allocation-free.

        For every bucket (default: all buckets :func:`plan_buckets`
        yields under ``max_batch_size``) creates ``replicas`` entries
        and runs each once on its zeroed input buffer, which drives the
        arena through a full forward pass and leaves every buffer the
        steady state needs parked in the free pool.  Returns the number
        of entries warmed.
        """
        buckets = plan_buckets(self.max_batch_size) if buckets is None else buckets
        warmed = 0
        for bucket in buckets:
            entries = [self.acquire(fingerprint, bucket) for _ in range(replicas)]
            for entry in entries:
                entry.plan.run(entry.input_buf)
                warmed += 1
            for entry in entries:
                self.release(entry)
        return warmed

    def arena_allocations(self) -> int:
        """Total arena allocations across all pooled replicas.

        Flat after :meth:`warm` — the serving benchmark asserts exactly
        that (zero-allocation steady state).  Only counts replicas
        currently in the pool; call between requests, not mid-flight.
        """
        with self._lock:
            return sum(
                e.plan.arena.allocations for entries in self._pool.values() for e in entries
            )

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "models": len(self._templates),
                "pooled_entries": sum(len(v) for v in self._pool.values()),
                "buckets": len(self._pool),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (f"PlanCache(models={s['models']}, entries={s['pooled_entries']}, "
                f"hits={s['hits']}, misses={s['misses']})")
