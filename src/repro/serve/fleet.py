"""Multi-tenant serving fleet: hardware-aware routing over many models.

:class:`FleetServer` is the deployment-time completion of the paper's
Pareto front.  The search produced *several* models traded off across
accuracy and per-device latency; the fleet registers all of them (plus
quantized variants) behind one endpoint and routes each
:class:`~repro.serve.ServeRequest` to the cheapest model predicted — by
the same nn-Meter-style :mod:`repro.latency` predictors that drove the
search — to satisfy that request's declared accuracy floor and latency
budget:

.. code-block:: text

    submit(ServeRequest) ──► select_model(candidates, budget, floor,
                        │                 device, queue load)
                        │            (or the request's model hint)
            ┌───────────┼──────────────┐
       MicroBatcher  MicroBatcher  MicroBatcher    (one per model;
            │             │             │       shared admission ctrl)
        workers 0..t  workers 0..t  workers 0..t   (t = autoscaled)
            └───────────┼──────────────┘
                 shared PlanCache (all fingerprints, all buckets)
                        │  pad → run → slice
               future.set_result(ServeResponse)

Design points:

- **One substrate.**  All models live in a single shared
  :class:`~repro.serve.PlanCache`; per-model queues and worker threads
  multiplex over it, so weights exist once per model and replica
  arenas are pooled fleet-wide.
- **Routing** is :func:`repro.latency.select_model`: accuracy floors
  are hard (unsatisfiable → :class:`~repro.latency.NoFeasibleModel` at
  submit), budgets are soft (no model fits → fastest floor-satisfying
  model, counted in ``repro_serve_fleet_budget_missed_total``), and
  queue load inflates each model's effective cost so overflow traffic
  spills to the next-cheapest feasible model.
- **Admission** is fleet-wide: one
  :class:`~repro.serve.AdmissionController` shared by every per-model
  queue, so a tenant's token bucket spans the whole fleet.
- **Autoscaling** is tick-driven and observable: :meth:`scale_tick`
  reads queue depth and rolling p99 per model, adds a replica (cache
  ``warm()``-ed *before* the worker thread starts, off the hot path) or
  retires one (the worker drains its in-flight batch, then exits via
  the batcher's ``stop`` predicate + :meth:`MicroBatcher.kick`).
  Replica counts are exported on the
  ``repro_serve_fleet_replicas{model=...}`` gauge.

The fleet is thread-mode only: ``worker_mode="process"`` implies one
:class:`~repro.serve.WorkerPool` per model, which defeats the shared
substrate — see ROADMAP for the shared multi-model pool.
"""

from __future__ import annotations

import collections
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

import repro.obs as obs

from repro.deploy.plan import InferencePlan
from repro.graph.ir import Graph
from repro.latency.selection import (
    ModelCandidate,
    ModelSelection,
    NoFeasibleModel,
    latency_table,
)
from repro.latency.selection import select_model as _select_model
from repro.serve.admission import AdmissionController
from repro.serve.batcher import MicroBatcher, Request, ServeRequest, complete_batch
from repro.serve.cache import PlanCache
from repro.serve.config import AutoscalerConfig, ServeConfig

__all__ = ["FleetServer", "ModelSpec"]

# Cached observability handles (no-ops until ``repro.obs.configure``).
_SERVED = obs.counter("repro_serve_requests_served_total")
_BATCHES = obs.counter("repro_serve_batches_total")
_BATCH_SIZE = obs.histogram("repro_serve_batch_size")
_BUDGET_MISSED = obs.counter("repro_serve_fleet_budget_missed_total")
_SCALE_UP = obs.counter("repro_serve_fleet_scale_up_total")
_SCALE_DOWN = obs.counter("repro_serve_fleet_scale_down_total")

#: Rolling per-model latency window the p99 trigger is computed over.
_P99_WINDOW = 256


@dataclass(frozen=True)
class ModelSpec:
    """One registered fleet model (immutable identity + routing data)."""

    name: str
    plan: InferencePlan
    candidate: ModelCandidate
    fingerprint: str


class _ModelUnit:
    """Mutable serving state for one registered model."""

    def __init__(self, spec: ModelSpec, batcher: MicroBatcher, target: int) -> None:
        self.spec = spec
        self.batcher = batcher
        self.target = target  # desired replica count (autoscaler-owned)
        self.lock = threading.Lock()
        self.workers: dict[int, threading.Thread] = {}
        self.idle_ticks = 0
        self.batches_executed = 0
        self._batches_at_last_tick = 0
        self.routed = 0
        self.budget_missed = 0
        self.slo_attained = 0
        self.slo_missed = 0
        self.latency_window: collections.deque[float] = collections.deque(
            maxlen=_P99_WINDOW
        )
        self.replicas_gauge = obs.gauge(
            "repro_serve_fleet_replicas", model=spec.name
        )
        self.queue_gauge = obs.gauge(
            "repro_serve_fleet_queue_depth", model=spec.name
        )
        self.routed_counter = obs.counter(
            "repro_serve_fleet_routed_total", model=spec.name
        )

    def rolling_p99_ms(self) -> float | None:
        with self.lock:
            if not self.latency_window:
                return None
            return float(np.percentile(np.asarray(self.latency_window), 99))


class FleetServer:
    """Multi-model, multi-tenant micro-batching server.

    Parameters
    ----------
    config:
        The consolidated :class:`~repro.serve.ServeConfig`.
        ``config.policy`` applies per model (batch size, queue depth,
        initial replicas); ``config.admission`` is enforced fleet-wide;
        ``config.autoscaler`` bounds per-model replica counts (absent →
        replicas pinned at ``policy.replicas``).
    clock:
        Injectable monotonic clock shared by every queue and token
        bucket (tests step it deterministically).

    Models are added with :meth:`register`; requests enter through
    :meth:`submit` and resolve to :class:`~repro.serve.ServeResponse`.
    Use as a context manager or call :meth:`close` (graceful drain).
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        config = config or ServeConfig()
        if config.policy.worker_mode != "thread":
            raise ValueError(
                "FleetServer is thread-mode only (a per-model WorkerPool would "
                "defeat the shared cache substrate); got "
                f"worker_mode={config.policy.worker_mode!r}"
            )
        self.config = config
        self.policy = config.policy
        self.autoscaler: AutoscalerConfig | None = config.autoscaler
        self._clock = clock
        self.cache = PlanCache(max_batch_size=self.policy.max_batch_size)
        self.admission = (
            AdmissionController(config.admission, clock=clock)
            if config.admission is not None
            else None
        )
        self._units: dict[str, _ModelUnit] = {}
        self._registry_lock = threading.Lock()
        self._input_shape: tuple | None = None
        self._closed = False
        self._close_lock = threading.Lock()
        self.scale_events: list[dict] = []
        self._scale_thread: threading.Thread | None = None
        self._scale_stop = threading.Event()
        if self.autoscaler is not None and self.autoscaler.background:
            self._scale_thread = threading.Thread(
                target=self._scale_loop, name="repro-fleet-autoscaler", daemon=True
            )
            self._scale_thread.start()

    # -- registration ----------------------------------------------------------

    def _initial_replicas(self) -> int:
        n = self.policy.replicas
        if self.autoscaler is not None:
            n = min(max(n, self.autoscaler.min_replicas), self.autoscaler.max_replicas)
        return n

    def register(
        self,
        name: str,
        plan: InferencePlan,
        *,
        accuracy: float = 1.0,
        graph: Graph | None = None,
        latency_ms: Mapping[str, float] | None = None,
    ) -> ModelSpec:
        """Add one routable model to the fleet.

        ``latency_ms`` is the per-device predicted-latency table the
        router compares budgets against; pass ``graph`` instead to
        compute it with :func:`repro.latency.latency_table` (the usual
        path — the same predictors the search used).  With neither, the
        model predicts 0 ms everywhere, i.e. it fits any budget.
        ``accuracy`` is compared verbatim against request floors.

        Warms the shared cache for the model's initial replicas when
        ``config.warm`` (the default), then starts its worker threads.
        """
        if latency_ms is not None:
            table = dict(latency_ms)
            if "mean" not in table:
                table["mean"] = sum(table.values()) / len(table)
        elif graph is not None:
            table = latency_table(graph)
        else:
            table = {"mean": 0.0}
        with self._registry_lock:
            if self._closed:
                raise RuntimeError("FleetServer is closed")
            if name in self._units:
                raise ValueError(f"model {name!r} already registered")
            if self._input_shape is None:
                self._input_shape = plan.input_shape
            elif plan.input_shape != self._input_shape:
                raise ValueError(
                    f"model {name!r} input shape {plan.input_shape} differs from "
                    f"the fleet's {self._input_shape}; one fleet serves one "
                    f"input spec"
                )
            fingerprint = self.cache.register(plan)
            spec = ModelSpec(
                name=name,
                plan=plan,
                candidate=ModelCandidate(name=name, accuracy=accuracy, latency_ms=table),
                fingerprint=fingerprint,
            )
            batcher = MicroBatcher(
                max_batch_size=self.policy.max_batch_size,
                max_queue_delay_ms=self.policy.max_queue_delay_ms,
                max_queue_depth=self.policy.max_queue_depth,
                clock=self._clock,
                admission=self.admission,
            )
            unit = _ModelUnit(spec, batcher, target=self._initial_replicas())
            self._units[name] = unit
        if self.config.warm and unit.target > 0:
            self.cache.warm(fingerprint, replicas=unit.target)
        with unit.lock:
            self._ensure_workers_locked(unit)
        unit.replicas_gauge.set(unit.target)
        return spec

    @property
    def models(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._units)

    # -- request path ----------------------------------------------------------

    def _validate_image(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 4 and x.shape[0] == 1:
            x = x[0]
        if self._input_shape is not None and x.shape != self._input_shape:
            raise ValueError(
                f"expected one image of shape {self._input_shape}, got {x.shape}"
            )
        return x

    def _queue_load(self) -> dict[str, float]:
        """Per-model congestion: queued requests per replica-batch of capacity."""
        load: dict[str, float] = {}
        for name, unit in self._units.items():
            capacity = max(1, unit.target) * self.policy.max_batch_size
            load[name] = unit.batcher.depth / capacity
        return load

    def route(self, request: ServeRequest) -> ModelSelection:
        """The routing decision for a request (no submission).

        A ``model`` hint pins the request (unknown hint → ``KeyError``);
        otherwise :func:`repro.latency.select_model` runs over the
        registered candidates with the request's budget (``budget_ms``,
        falling back to ``deadline_ms``), accuracy floor, device, and
        the fleet's current queue load.  Raises
        :class:`~repro.latency.NoFeasibleModel` when the floor is
        unsatisfiable.
        """
        with self._registry_lock:
            if not self._units:
                raise RuntimeError("no models registered")
            units = dict(self._units)
        if request.model is not None:
            try:
                unit = units[request.model]
            except KeyError:
                raise KeyError(
                    f"unknown model hint {request.model!r}; registered: "
                    f"{sorted(units)}"
                ) from None
            cand = unit.spec.candidate
            if cand.accuracy < request.accuracy_floor:
                raise NoFeasibleModel(
                    f"hinted model {request.model!r} (accuracy {cand.accuracy:g}) "
                    f"is below the request floor {request.accuracy_floor:g}"
                )
            predicted = cand.predicted_ms(request.device)
            budget = request.budget_ms if request.budget_ms is not None else request.deadline_ms
            fits = budget is None or predicted <= budget
            return ModelSelection(
                name=request.model, predicted_ms=predicted,
                effective_ms=predicted, fits_budget=fits,
            )
        budget = request.budget_ms if request.budget_ms is not None else request.deadline_ms
        return _select_model(
            (u.spec.candidate for u in units.values()),
            budget_ms=budget,
            accuracy_floor=request.accuracy_floor,
            device=request.device,
            load=self._queue_load(),
        )

    def submit(self, request: ServeRequest) -> Future:
        """Route and queue one request; the future resolves to a
        :class:`~repro.serve.ServeResponse`.

        Raises :class:`~repro.latency.NoFeasibleModel` (accuracy floor
        unsatisfiable), ``KeyError`` (unknown model hint),
        :class:`~repro.serve.TenantOverloaded` (admission), or
        :class:`~repro.serve.ServerOverloaded` (queue depth).
        """
        request.image = self._validate_image(request.image)
        selection = self.route(request)
        unit = self._units[selection.name]
        future = unit.batcher.submit_request(
            request,
            wants_response=True,
            meta={
                "model": selection.name,
                "predicted_ms": selection.predicted_ms,
                "fits_budget": selection.fits_budget,
            },
        )
        # Count routing only after admission accepted the request.
        with unit.lock:
            unit.routed += 1
            if not selection.fits_budget:
                unit.budget_missed += 1
        unit.routed_counter.inc()
        if not selection.fits_budget:
            _BUDGET_MISSED.inc()
        return future

    def infer(self, request: ServeRequest):
        """Synchronous convenience: submit one request and wait."""
        return self.submit(request).result()

    # -- worker loop -----------------------------------------------------------

    def _ensure_workers_locked(self, unit: _ModelUnit) -> None:
        """Start worker threads for every slot below ``unit.target``."""
        for slot in range(unit.target):
            thread = unit.workers.get(slot)
            if thread is not None and thread.is_alive():
                continue
            thread = threading.Thread(
                target=self._worker_loop,
                args=(unit, slot),
                name=f"repro-fleet-{unit.spec.name}-{slot}",
                daemon=True,
            )
            unit.workers[slot] = thread
            thread.start()

    def _worker_loop(self, unit: _ModelUnit, slot: int) -> None:
        try:
            while True:
                batch = unit.batcher.next_batch(stop=lambda: slot >= unit.target)
                if batch is None:
                    return  # closed-and-drained, or retired by scale-down
                self._execute(unit, batch)
        finally:
            with unit.lock:
                if unit.workers.get(slot) is threading.current_thread():
                    del unit.workers[slot]

    def _execute(self, unit: _ModelUnit, batch: list[Request]) -> None:
        n = len(batch)
        started = time.monotonic()
        images = [r.x for r in batch]
        bucket = self.cache.bucket_for(n)
        entry = self.cache.acquire(unit.spec.fingerprint, bucket)
        try:
            out = entry.run_padded(images)
        except BaseException as exc:  # route the failure, don't kill the worker
            self.cache.release(entry)
            for r in batch:
                r.future.set_exception(exc)
            return
        self.cache.release(entry)
        done = time.monotonic()
        _BATCHES.inc()
        _SERVED.inc(n)
        _BATCH_SIZE.observe(n)
        attained, missed = complete_batch(
            batch, out, model=unit.spec.name, started=started, finished=done
        )
        with unit.lock:
            unit.batches_executed += 1
            unit.slo_attained += attained
            unit.slo_missed += missed
            unit.latency_window.extend(
                (done - r.enqueued_at) * 1e3 for r in batch
            )

    # -- autoscaler ------------------------------------------------------------

    def scale_tick(self) -> list[dict]:
        """One deterministic autoscaling decision pass over every model.

        Per model: scale **up** one replica when queue depth exceeds the
        trigger (``scale_up_depth``, default twice the batch size) or
        the rolling p99 exceeds ``scale_up_p99_ms`` — the new replica's
        cache slots are :meth:`PlanCache.warm`-ed *before* its worker
        thread starts, so warm-up never runs on the request path.
        Scale **down** one replica after ``scale_down_idle_ticks``
        consecutive ticks with an empty queue and no batches executed;
        the retired worker finishes its in-flight batch, then exits via
        the ``stop`` predicate (woken by :meth:`MicroBatcher.kick`).

        Returns the scale events this tick (also appended to
        ``self.scale_events`` and counted on the
        ``repro_serve_fleet_scale_{up,down}_total`` obs counters).
        No-op without an :class:`~repro.serve.AutoscalerConfig`.
        """
        cfg = self.autoscaler
        if cfg is None or self._closed:
            return []
        up_depth = (
            cfg.scale_up_depth
            if cfg.scale_up_depth is not None
            else 2 * self.policy.max_batch_size
        )
        events: list[dict] = []
        with self._registry_lock:
            units = list(self._units.values())
        for unit in units:
            depth = unit.batcher.depth
            unit.queue_gauge.set(depth)
            with unit.lock:
                executed = unit.batches_executed - unit._batches_at_last_tick
                unit._batches_at_last_tick = unit.batches_executed
            p99 = unit.rolling_p99_ms() if cfg.scale_up_p99_ms is not None else None
            pressed = depth > up_depth or (
                p99 is not None and p99 > cfg.scale_up_p99_ms
            )
            busy = depth > 0 or executed > 0
            event: dict | None = None
            if pressed and unit.target < cfg.max_replicas:
                unit.idle_ticks = 0
                new_target = unit.target + 1
                if self.config.warm:
                    self.cache.warm(unit.spec.fingerprint, replicas=new_target)
                with unit.lock:
                    unit.target = new_target
                    self._ensure_workers_locked(unit)
                _SCALE_UP.inc()
                event = {"model": unit.spec.name, "action": "up",
                         "replicas": new_target, "queue_depth": depth,
                         "p99_ms": p99}
            elif not busy:
                unit.idle_ticks += 1
                if unit.idle_ticks >= cfg.scale_down_idle_ticks and (
                    unit.target > cfg.min_replicas
                ):
                    with unit.lock:
                        unit.target -= 1
                    unit.idle_ticks = 0
                    unit.batcher.kick()  # retiring worker re-checks its stop predicate
                    _SCALE_DOWN.inc()
                    event = {"model": unit.spec.name, "action": "down",
                             "replicas": unit.target, "queue_depth": depth,
                             "p99_ms": p99}
            else:
                unit.idle_ticks = 0
            unit.replicas_gauge.set(unit.target)
            if event is not None:
                events.append(event)
        self.scale_events.extend(events)
        return events

    def _scale_loop(self) -> None:
        assert self.autoscaler is not None
        while not self._scale_stop.wait(self.autoscaler.interval_s):
            self.scale_tick()

    def replicas(self, name: str) -> int:
        """Current replica target for a model."""
        return self._units[name].target

    # -- lifecycle -------------------------------------------------------------

    def close(self, timeout: float | None = 30.0) -> None:
        """Graceful drain: stop intake, serve every queue, join workers."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._scale_stop.set()
        if self._scale_thread is not None:
            self._scale_thread.join(timeout=timeout)
        with self._registry_lock:
            units = list(self._units.values())
        for unit in units:
            unit.batcher.close()
        for unit in units:
            while True:
                with unit.lock:
                    threads = list(unit.workers.values())
                if not threads:
                    break
                for t in threads:
                    t.join(timeout=timeout)
                break

    def __enter__(self) -> "FleetServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """Fleet-wide counters: per-model serving/routing/SLO + admission."""
        with self._registry_lock:
            units = dict(self._units)
        per_model = {}
        for name, unit in units.items():
            with unit.lock:
                per_model[name] = {
                    "submitted": unit.batcher.submitted,
                    "rejected": unit.batcher.rejected,
                    "expired": unit.batcher.expired,
                    "batches_executed": unit.batches_executed,
                    "routed": unit.routed,
                    "budget_missed": unit.budget_missed,
                    "slo_attained": unit.slo_attained,
                    "slo_missed": unit.slo_missed,
                    "replicas": unit.target,
                    "accuracy": unit.spec.candidate.accuracy,
                    "predicted_mean_ms": unit.spec.candidate.latency_ms.get("mean"),
                }
        out = {
            "models": per_model,
            "scale_events": list(self.scale_events),
            "cache": self.cache.stats(),
        }
        if self.admission is not None:
            out["admission"] = self.admission.stats()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FleetServer(models={self.models}, "
                f"max_batch={self.policy.max_batch_size}, closed={self._closed})")
