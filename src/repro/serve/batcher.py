"""Dynamic micro-batching: coalesce single-image requests into batches.

The batcher is the request-path front of :class:`repro.serve.PlanServer`
and of every per-model queue inside :class:`repro.serve.FleetServer`.
Producers call :meth:`MicroBatcher.submit_request` (or the legacy
ndarray :meth:`MicroBatcher.submit`) and get a future; worker threads
call :meth:`MicroBatcher.next_batch` and receive batches formed under
the policy's ``max_batch_size`` / ``max_queue_delay_ms`` knobs.

The canonical request object is :class:`ServeRequest` — image plus
tenant, priority class, wall-clock SLO deadline, device/latency budget,
model hint, and accuracy floor.  Completed requests resolve either to a
bare logits row (legacy ``submit`` path) or to a :class:`ServeResponse`
carrying the served model and queue/exec timings.

Scheduling is priority-class then FIFO: higher ``priority`` pops first,
arrival order within a class.  With every request in the default class
(priority 0) the batcher is exactly the old FIFO queue.

Overload is shed at two gates:

- per-tenant token buckets (an optional
  :class:`~repro.serve.admission.AdmissionController`) bound *fairness*
  — one chatty tenant exhausts its own bucket, not the shared queue;
- the bounded queue (``max_queue_depth``) bounds *memory* — past the
  high-water mark ``submit`` raises :class:`ServerOverloaded`.

Requests whose ``deadline_ms`` elapses while still queued are failed
fast with :class:`DeadlineExceeded` instead of being executed — serving
a reply the client has already abandoned only steals capacity from
requests that can still make their SLO.

Shutdown is a graceful drain: after :meth:`close`, queued requests
still come out of ``next_batch`` until the queue is empty, then workers
see ``None``.
"""

from __future__ import annotations

import collections
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

import repro.obs as obs

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a module cycle)
    from repro.serve.admission import AdmissionController

__all__ = [
    "DeadlineExceeded",
    "MicroBatcher",
    "Request",
    "ServeRequest",
    "ServeResponse",
    "ServerOverloaded",
    "complete_batch",
]

# Cached observability handles (no-ops until ``repro.obs.configure``).
_QUEUE_DEPTH = obs.gauge("repro_serve_queue_depth")
_REJECTED = obs.counter("repro_serve_requests_rejected_total")
_EXPIRED = obs.counter("repro_serve_deadline_expired_total")
_SLO_ATTAINED = obs.counter("repro_serve_slo_attained_total")
_SLO_MISSED = obs.counter("repro_serve_slo_missed_total")


class ServerOverloaded(RuntimeError):
    """The bounded request queue is at its high-water mark.

    Raised by :meth:`MicroBatcher.submit` (and therefore
    :meth:`repro.serve.PlanServer.submit`).  Clients should back off or
    shed the request; the load generator counts these as rejections.
    """


class DeadlineExceeded(RuntimeError):
    """A request's wall-clock SLO deadline elapsed before execution.

    Set on the request's future by the batcher's fail-fast expiry scan;
    the request is dropped from the queue without running.
    """


@dataclass
class ServeRequest:
    """Canonical serving request: one image plus declared intent.

    Parameters
    ----------
    image:
        Input array (``(C, H, W)`` or ``(1, C, H, W)``); the legacy
        :meth:`MicroBatcher.submit` path wraps a bare ndarray here.
    tenant:
        Billing/fairness identity for admission control.
    priority:
        Explicit priority class (higher is served first).  ``None``
        defers to the tenant's quota default (0 without admission).
    deadline_ms:
        Wall-clock SLO budget measured from submit.  Expired requests
        fail fast with :class:`DeadlineExceeded`; completions record
        SLO attainment either way.
    budget_ms:
        *Predicted-latency* routing budget for fleet model selection
        (falls back to ``deadline_ms`` when unset).  Distinct from
        ``deadline_ms``: budgets are compared against
        :mod:`repro.latency` device predictions, deadlines against the
        wall clock.
    model:
        Model hint — pin the request to a registered fleet model,
        bypassing routing.
    device:
        Device profile name (see ``repro.latency.DEVICE_PROFILES``)
        whose predictions the budget is checked against; ``None`` uses
        the cross-device mean.
    accuracy_floor:
        Minimum acceptable model accuracy (fraction or percent — same
        scale the fleet's models were registered with).
    """

    image: np.ndarray | Any
    tenant: str = "default"
    priority: int | None = None
    deadline_ms: float | None = None
    budget_ms: float | None = None
    model: str | None = None
    device: str | None = None
    accuracy_floor: float = 0.0


@dataclass(frozen=True)
class ServeResponse:
    """Completed request: logits row plus routing/timing telemetry."""

    row: np.ndarray
    model: str | None
    tenant: str
    priority: int
    queue_ms: float
    exec_ms: float
    total_ms: float
    deadline_met: bool | None  # None = no deadline declared
    predicted_ms: float | None = None  # routing-time latency prediction

    def as_dict(self) -> dict:
        """JSON-ready summary (the row itself is omitted)."""
        return {
            "model": self.model,
            "tenant": self.tenant,
            "priority": self.priority,
            "queue_ms": self.queue_ms,
            "exec_ms": self.exec_ms,
            "total_ms": self.total_ms,
            "deadline_met": self.deadline_met,
            "predicted_ms": self.predicted_ms,
        }


@dataclass
class Request:
    """One queued inference request (batcher-internal envelope)."""

    request: ServeRequest
    enqueued_at: float
    priority: int = 0
    deadline_at: float | None = None  # clock units, None = no SLO
    wants_response: bool = False  # resolve to ServeResponse vs bare row
    meta: Mapping[str, Any] = field(default_factory=dict)  # router annotations
    future: Future = field(default_factory=Future)

    @property
    def x(self) -> np.ndarray:
        """The input array (legacy accessor kept for existing callers)."""
        return self.request.image


class MicroBatcher:
    """Bounded priority/FIFO request queue with deadline-driven batching.

    A batch is released to a waiting worker as soon as either

    - ``max_batch_size`` requests are queued (full batch), or
    - the *oldest* queued request has waited ``max_queue_delay_ms``
      (deadline flush — bounds the batching tax on tail latency), or
    - the batcher is closed (drain — flush whatever is left, in order).

    Batches pop highest priority class first, FIFO within a class, and
    may mix classes to fill ``max_batch_size``.  Consumers block on a
    condition variable — an idle batcher wakes only on submit/close/
    :meth:`kick`, never on a timer (``idle_wakeups`` counts the
    spurious ones; it stays ~0).

    Thread-safe: any number of producers and consumers.

    Parameters
    ----------
    max_batch_size, max_queue_delay_ms, max_queue_depth:
        See :class:`repro.serve.BatchPolicy`.
    clock:
        Injectable monotonic clock (tests use a fake to step deadlines
        deterministically).
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`
        consulted (per tenant) before enqueueing.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_queue_delay_ms: float = 2.0,
        max_queue_depth: int = 128,
        clock=time.monotonic,
        admission: "AdmissionController | None" = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_queue_depth < max_batch_size:
            raise ValueError(
                f"max_queue_depth ({max_queue_depth}) must be >= "
                f"max_batch_size ({max_batch_size})"
            )
        self.max_batch_size = max_batch_size
        self.max_queue_delay_s = max_queue_delay_ms / 1000.0
        self.max_queue_depth = max_queue_depth
        self.admission = admission
        self._clock = clock
        # One FIFO deque per priority class, popped highest-class first.
        self._queues: dict[int, collections.deque[Request]] = {}
        self._depth = 0
        self._cond = threading.Condition()
        self._closed = False
        self.submitted = 0
        self.rejected = 0
        self.expired = 0
        self.idle_wakeups = 0

    # -- producer side ---------------------------------------------------------

    def submit(self, x: np.ndarray) -> Future:
        """Queue one bare array; the future resolves to the logits row.

        Legacy adapter over :meth:`submit_request` — equivalent to
        submitting ``ServeRequest(image=x)`` with a bare-row reply.
        Raises :class:`ServerOverloaded` past the high-water mark and
        ``RuntimeError`` after :meth:`close`.
        """
        return self.submit_request(ServeRequest(image=x), wants_response=False)

    def submit_request(
        self,
        request: ServeRequest,
        *,
        wants_response: bool = True,
        meta: Mapping[str, Any] | None = None,
    ) -> Future:
        """Queue one :class:`ServeRequest`; returns the future of its result.

        The future resolves to a :class:`ServeResponse` (or a bare row
        when ``wants_response=False``), or fails with
        :class:`DeadlineExceeded` if the request's ``deadline_ms``
        elapses before execution.  Raises
        :class:`~repro.serve.admission.TenantOverloaded` when the
        tenant's token bucket is empty and :class:`ServerOverloaded`
        past the queue high-water mark.
        """
        if self.admission is not None:
            self.admission.admit(request.tenant)  # raises TenantOverloaded
        priority = request.priority
        if priority is None:
            priority = (
                self.admission.priority_for(request.tenant)
                if self.admission is not None
                else 0
            )
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed; no new requests accepted")
            if self._depth >= self.max_queue_depth:
                self.rejected += 1
                _REJECTED.inc()
                raise ServerOverloaded(
                    f"request queue at high-water mark ({self.max_queue_depth}); "
                    f"back off and retry"
                )
            now = self._clock()
            envelope = Request(
                request=request,
                enqueued_at=now,
                priority=priority,
                deadline_at=(
                    now + request.deadline_ms / 1000.0
                    if request.deadline_ms is not None
                    else None
                ),
                wants_response=wants_response,
                meta=dict(meta) if meta else {},
            )
            self.submitted += 1
            if request.deadline_ms is not None and request.deadline_ms <= 0:
                # Already dead on arrival — fail fast without queueing.
                self._expire(envelope)
                return envelope.future
            self._queues.setdefault(priority, collections.deque()).append(envelope)
            self._depth += 1
            _QUEUE_DEPTH.set(self._depth)
            self._cond.notify()
        return envelope.future

    # -- consumer side ---------------------------------------------------------

    def next_batch(
        self,
        poll_s: float | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> list[Request] | None:
        """Block until a batch is ready; ``None`` once closed *and* drained.

        With the default ``poll_s=None`` an empty queue blocks on the
        condition variable until a submit/:meth:`close`/:meth:`kick`
        notifies — no periodic polling, ~0 idle CPU.  A float ``poll_s``
        caps each wait (legacy behaviour, useful under a fake clock that
        never fires notifications at deadline time).

        ``stop`` is re-checked after every wakeup; when it returns true
        the call returns ``None`` without popping (used by the fleet
        autoscaler to retire a worker — pair with :meth:`kick`).
        """
        with self._cond:
            while True:
                if stop is not None and stop():
                    return None
                now = self._clock()
                self._expire_queued(now)
                if self._depth > 0:
                    if self._depth >= self.max_batch_size or self._closed:
                        return self._pop_batch()
                    flush_at = self._oldest_enqueued_at() + self.max_queue_delay_s
                    expiry_at = self._earliest_deadline_at()
                    wake_at = flush_at if expiry_at is None else min(flush_at, expiry_at)
                    remaining = wake_at - now
                    if remaining <= 0:
                        return self._pop_batch()
                    timeout = remaining if poll_s is None else min(remaining, poll_s)
                    self._cond.wait(timeout=timeout)
                else:
                    if self._closed:
                        return None
                    woke = self._cond.wait(timeout=poll_s)
                    if self._depth == 0 and not self._closed and (
                        woke or poll_s is None
                    ):
                        # A notify (or spurious wakeup) with nothing to do.
                        self.idle_wakeups += 1

    def _oldest_enqueued_at(self) -> float:
        return min(q[0].enqueued_at for q in self._queues.values() if q)

    def _earliest_deadline_at(self) -> float | None:
        deadlines = [
            r.deadline_at for q in self._queues.values() for r in q
            if r.deadline_at is not None
        ]
        return min(deadlines) if deadlines else None

    def _expire(self, envelope: Request) -> None:
        self.expired += 1
        _EXPIRED.inc()
        _SLO_MISSED.inc()
        envelope.future.set_exception(
            DeadlineExceeded(
                f"deadline_ms={envelope.request.deadline_ms:g} elapsed before "
                f"execution (tenant {envelope.request.tenant!r})"
            )
        )

    def _expire_queued(self, now: float) -> None:
        """Fail-fast scan: drop queued requests whose SLO already lapsed."""
        dropped = False
        for queue in self._queues.values():
            if not any(r.deadline_at is not None and r.deadline_at <= now for r in queue):
                continue
            keep: list[Request] = []
            for r in queue:
                if r.deadline_at is not None and r.deadline_at <= now:
                    self._expire(r)
                    self._depth -= 1
                    dropped = True
                else:
                    keep.append(r)
            queue.clear()
            queue.extend(keep)
        if dropped:
            _QUEUE_DEPTH.set(self._depth)

    def _pop_batch(self) -> list[Request]:
        batch: list[Request] = []
        for priority in sorted(self._queues, reverse=True):
            queue = self._queues[priority]
            while queue and len(batch) < self.max_batch_size:
                batch.append(queue.popleft())
            if len(batch) >= self.max_batch_size:
                break
        self._depth -= len(batch)
        _QUEUE_DEPTH.set(self._depth)
        self._cond.notify()  # more may be ready for the next worker
        return batch

    # -- lifecycle -------------------------------------------------------------

    def kick(self) -> None:
        """Wake every blocked consumer so it re-checks its ``stop`` predicate."""
        with self._cond:
            self._cond.notify_all()

    def close(self) -> None:
        """Stop accepting requests; queued ones will still be served."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        """Requests currently queued."""
        with self._cond:
            return self._depth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MicroBatcher(depth={self.depth}, max_batch={self.max_batch_size}, "
                f"delay_ms={self.max_queue_delay_s * 1e3:g}, "
                f"submitted={self.submitted}, rejected={self.rejected}, "
                f"expired={self.expired})")


def complete_batch(
    batch: list[Request],
    rows,
    *,
    model: str | None = None,
    started: float,
    finished: float,
) -> tuple[int, int]:
    """Resolve a batch's futures with rows or :class:`ServeResponse` objects.

    ``rows[i]`` must be the logits row for ``batch[i]`` (a view into a
    padded batch output is fine — rows are copied here).  Returns
    ``(slo_attained, slo_missed)`` counts over the requests that
    declared a deadline, ticking the corresponding obs counters.
    """
    attained = missed = 0
    for i, r in enumerate(batch):
        row = np.array(rows[i], copy=True)
        deadline_met: bool | None = None
        if r.deadline_at is not None:
            deadline_met = finished <= r.deadline_at
            if deadline_met:
                attained += 1
                _SLO_ATTAINED.inc()
            else:
                missed += 1
                _SLO_MISSED.inc()
        if r.wants_response:
            r.future.set_result(ServeResponse(
                row=row,
                model=r.meta.get("model", model),
                tenant=r.request.tenant,
                priority=r.priority,
                queue_ms=(started - r.enqueued_at) * 1e3,
                exec_ms=(finished - started) * 1e3,
                total_ms=(finished - r.enqueued_at) * 1e3,
                deadline_met=deadline_met,
                predicted_ms=r.meta.get("predicted_ms"),
            ))
        else:
            r.future.set_result(row)
    return attained, missed
