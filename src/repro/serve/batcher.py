"""Dynamic micro-batching: coalesce single-image requests into batches.

The batcher is the request-path front of :class:`repro.serve.PlanServer`:
producers call :meth:`MicroBatcher.submit` and get a future; worker
threads call :meth:`MicroBatcher.next_batch` and receive FIFO batches
formed under the policy's ``max_batch_size`` / ``max_queue_delay_ms``
knobs.  Backpressure is a bounded queue — past the high-water mark,
``submit`` raises :class:`ServerOverloaded` so overload sheds load at
the edge instead of growing latency without bound.  Shutdown is a
graceful drain: after :meth:`close`, queued requests still come out of
``next_batch`` in arrival order until the queue is empty, then workers
see ``None``.
"""

from __future__ import annotations

import collections
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs

__all__ = ["MicroBatcher", "Request", "ServerOverloaded"]

# Cached observability handles (no-ops until ``repro.obs.configure``).
_QUEUE_DEPTH = obs.gauge("repro_serve_queue_depth")
_REJECTED = obs.counter("repro_serve_requests_rejected_total")


class ServerOverloaded(RuntimeError):
    """The bounded request queue is at its high-water mark.

    Raised by :meth:`MicroBatcher.submit` (and therefore
    :meth:`repro.serve.PlanServer.submit`).  Clients should back off or
    shed the request; the load generator counts these as rejections.
    """


@dataclass
class Request:
    """One queued inference request."""

    x: np.ndarray
    enqueued_at: float
    future: Future = field(default_factory=Future)


class MicroBatcher:
    """Bounded FIFO request queue with deadline-driven batch formation.

    A batch is released to a waiting worker as soon as either

    - ``max_batch_size`` requests are queued (full batch), or
    - the *oldest* queued request has waited ``max_queue_delay_ms``
      (deadline flush — bounds the batching tax on tail latency), or
    - the batcher is closed (drain — flush whatever is left, in order).

    Thread-safe: any number of producers and consumers.

    Parameters
    ----------
    max_batch_size, max_queue_delay_ms, max_queue_depth:
        See :class:`repro.serve.BatchPolicy`.
    clock:
        Injectable monotonic clock (tests use a fake to step deadlines
        deterministically).
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_queue_delay_ms: float = 2.0,
        max_queue_depth: int = 128,
        clock=time.monotonic,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_queue_depth < max_batch_size:
            raise ValueError(
                f"max_queue_depth ({max_queue_depth}) must be >= "
                f"max_batch_size ({max_batch_size})"
            )
        self.max_batch_size = max_batch_size
        self.max_queue_delay_s = max_queue_delay_ms / 1000.0
        self.max_queue_depth = max_queue_depth
        self._clock = clock
        self._queue: collections.deque[Request] = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        self.submitted = 0
        self.rejected = 0

    # -- producer side ---------------------------------------------------------

    def submit(self, x: np.ndarray) -> Future:
        """Queue one request; returns the future of its result.

        Raises :class:`ServerOverloaded` past the high-water mark and
        ``RuntimeError`` after :meth:`close`.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed; no new requests accepted")
            if len(self._queue) >= self.max_queue_depth:
                self.rejected += 1
                _REJECTED.inc()
                raise ServerOverloaded(
                    f"request queue at high-water mark ({self.max_queue_depth}); "
                    f"back off and retry"
                )
            request = Request(x=x, enqueued_at=self._clock())
            self._queue.append(request)
            self.submitted += 1
            _QUEUE_DEPTH.set(len(self._queue))
            self._cond.notify()
        return request.future

    # -- consumer side ---------------------------------------------------------

    def next_batch(self, poll_s: float = 0.05) -> list[Request] | None:
        """Block until a batch is ready; ``None`` once closed *and* drained.

        ``poll_s`` caps each internal wait so a closed batcher is always
        noticed promptly even without a notify.
        """
        with self._cond:
            while True:
                if self._queue:
                    if len(self._queue) >= self.max_batch_size or self._closed:
                        return self._pop_batch()
                    deadline = self._queue[0].enqueued_at + self.max_queue_delay_s
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return self._pop_batch()
                    self._cond.wait(timeout=min(remaining, poll_s))
                else:
                    if self._closed:
                        return None
                    self._cond.wait(timeout=poll_s)

    def _pop_batch(self) -> list[Request]:
        batch = [
            self._queue.popleft()
            for _ in range(min(self.max_batch_size, len(self._queue)))
        ]
        _QUEUE_DEPTH.set(len(self._queue))
        self._cond.notify()  # more may be ready for the next worker
        return batch

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting requests; queued ones will still be served."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        """Requests currently queued."""
        with self._cond:
            return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MicroBatcher(depth={self.depth}, max_batch={self.max_batch_size}, "
                f"delay_ms={self.max_queue_delay_s * 1e3:g}, "
                f"submitted={self.submitted}, rejected={self.rejected})")
