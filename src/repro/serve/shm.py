"""Shared-memory weight arenas for multi-process serving.

Thread replicas share weights for free (:meth:`InferencePlan.replicate`
captures the same arrays by reference), but the GIL serializes their
Python glue.  Worker *processes* escape the GIL — at the price of a
private address space.  This module keeps the "weights exist once"
invariant across that boundary:

1. :func:`publish_plan` lays every bound weight array of a compiled
   plan (fp32 fused matrices, GEMM transposes, int8 code matrices +
   per-channel scales, Winograd transforms — whatever
   :func:`repro.deploy.plan_weight_arrays` yields) into **one**
   ``multiprocessing.shared_memory`` segment, 64-byte aligned, and
   returns a picklable :class:`PlanSpec` describing the blueprint minus
   its ndarrays.
2. :func:`attach_plan` runs in the worker: it maps the segment,
   reconstructs the :class:`~repro.deploy.passes.PlanNode` list with
   **read-only zero-copy views** into the mapping, and re-binds kernels
   through the existing :class:`~repro.deploy.plan._PlanBlueprint`
   rebind path.  The worker gets a private arena (activation scratch)
   over shared parameters — N processes cost N arenas, one weight set.

The attach report carries a :func:`~repro.deploy.weight_residency`
breakdown so callers (and tests) can assert ``private_bytes == 0``:
rebinding must not have copied a single parameter byte.

Lifecycle: the parent owns the segment — workers ``close()`` their
mapping (or just exit), the parent ``unlink()``s once serving stops.
On Python < 3.13 *attaching* also registers the segment with the
process's ``resource_tracker``, which would destroy it when the first
worker exits; :func:`attach_plan` therefore unregisters after mapping
(bpo-39959).
"""

from __future__ import annotations

import contextlib
import os

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.deploy.passes import PlanNode
from repro.deploy.plan import InferencePlan, _PlanBlueprint
from repro.deploy.weights import plan_weight_arrays, weight_residency

__all__ = [
    "AttachedPlan",
    "PlanSpec",
    "SharedPlanWeights",
    "WeightRef",
    "attach_plan",
    "publish_plan",
    "quiet_close",
    "untrack_attached",
]

#: Segment offsets are aligned so every view starts on a cache line
#: (also satisfies any dtype's alignment requirement).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _tracker_pid() -> int | None:
    """Pid of this process's resource-tracker helper (None if unknown)."""
    rt = getattr(resource_tracker, "_resource_tracker", None)
    return getattr(rt, "_pid", None)


def untrack_attached(shm: shared_memory.SharedMemory,
                     creator_tracker_pid: int | None) -> None:
    """Undo the attach-time resource-tracker registration when unsafe.

    On Python < 3.13 *attaching* a segment registers it (bpo-39959).
    The tracker's bookkeeping is a set, not a refcount, so the right
    move depends on which tracker got the registration:

    - **own tracker** (spawn-started worker, unrelated process): the
      registration must be removed, or this process's tracker unlinks
      the segment when the process exits — destroying it for everyone;
    - **creator's tracker** (fork-started worker, same process): the
      re-registration was a set no-op; unregistering here would erase
      the *creator's* registration and break its unlink accounting.
    """
    pid = _tracker_pid()
    if pid is not None and pid == creator_tracker_pid:
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker internals vary across versions
        pass


def quiet_close(shm: shared_memory.SharedMemory) -> None:
    """Close a mapping; if live views pin it, leak it deliberately.

    NumPy views into ``shm.buf`` hold buffer exports, so ``close()``
    raises :class:`BufferError` while a rebound plan is alive.  The
    mapping must outlive the views anyway — neuter the handle so the
    GC-time ``__del__`` retry doesn't spray "Exception ignored" noise;
    the OS reclaims the mapping at process exit.
    """
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            with contextlib.suppress(OSError):
                os.close(fd)
            shm._fd = -1


@dataclass(frozen=True)
class WeightRef:
    """Where one weight array lives inside the shared segment."""

    node: str
    role: str
    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class NodeSpec:
    """A :class:`PlanNode` minus its ndarrays (picklable)."""

    name: str
    op_type: str
    inputs: tuple[str, ...]
    output: str
    attrs: dict
    fused: tuple[str, ...]
    relu: bool
    qconfig: dict


@dataclass
class PlanSpec:
    """Everything a worker needs to rebind the plan: blueprint + refs.

    Ships over a pipe/queue via pickle.  ``qweight`` records are *not*
    carried: after the template bind, every kernel-relevant derived
    form (codes matrix, scales, row sums, fp32 materialization) is
    already cached in the node weight dicts and therefore in the
    segment, so workers never re-derive from raw initializers.
    """

    segment: str
    nbytes: int
    name: str
    input_shape: tuple[int, ...]
    shapes: dict[str, tuple[int, ...]]
    release: list[list[str]]
    final_output: str
    naive_tensor_shapes: list[tuple[int, ...]]
    fingerprint: str
    forms: dict[str, str]
    variants: dict[str, str]
    nodes: list[NodeSpec] = field(default_factory=list)
    refs: list[WeightRef] = field(default_factory=list)
    #: Pid of the publisher's resource-tracker helper; attachers that
    #: share it (fork workers) must not unregister (see
    #: :func:`untrack_attached`).
    tracker_pid: int | None = None


class SharedPlanWeights:
    """Parent-side handle: the published segment plus its spec.

    The parent keeps the segment mapped while workers serve; call
    :meth:`close` (or use as a context manager) to unlink it once the
    pool is down.  Unlinking is idempotent.
    """

    def __init__(self, spec: PlanSpec, shm: shared_memory.SharedMemory) -> None:
        self.spec = spec
        self._shm: shared_memory.SharedMemory | None = shm

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes

    @property
    def buf(self):
        if self._shm is None:
            raise ValueError("shared weight segment already closed")
        return self._shm.buf

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        with contextlib.suppress(FileNotFoundError):
            shm.unlink()
        quiet_close(shm)

    def __enter__(self) -> "SharedPlanWeights":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SharedPlanWeights(segment={self.spec.segment!r}, "
                f"nbytes={self.spec.nbytes}, arrays={len(self.spec.refs)})")


def publish_plan(plan: InferencePlan) -> SharedPlanWeights:
    """Publish a compiled plan's weight table into shared memory.

    One segment holds every array the plan's kernels capture; the
    returned handle's ``spec`` is the picklable rebind recipe for
    :func:`attach_plan`.  The plan itself is untouched (its closures
    keep their original arrays — only workers see the shared copies,
    which are byte-identical, so thread and process replicas compute
    bitwise-identical results).
    """
    bp = plan.blueprint
    if bp is None:
        raise ValueError(
            "plan has no blueprint and cannot be published; compile it via "
            "compile_plan()/OnnxliteRuntime.compile()"
        )
    arrays = [
        (node, role, np.ascontiguousarray(arr))
        for node, role, arr in plan_weight_arrays(bp.nodes)
    ]
    refs: list[WeightRef] = []
    offset = 0
    for node, role, arr in arrays:
        offset = _aligned(offset)
        refs.append(WeightRef(node=node, role=role, offset=offset,
                              shape=tuple(arr.shape), dtype=arr.dtype.str))
        offset += arr.nbytes
    total = max(offset, 1)  # zero-weight plans still need a valid segment
    shm = shared_memory.SharedMemory(create=True, size=total)
    try:
        for ref, (_, _, arr) in zip(refs, arrays):
            dst = np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size,
                                offset=ref.offset).reshape(arr.shape)
            dst[...] = arr
            del dst  # drop the buffer export before any close()
        spec = PlanSpec(
            segment=shm.name,
            nbytes=total,
            name=bp.name,
            input_shape=tuple(bp.input_shape),
            shapes=dict(bp.shapes),
            release=[list(names) for names in bp.release],
            final_output=bp.final_output,
            naive_tensor_shapes=list(bp.naive_tensor_shapes),
            fingerprint=bp.fingerprint,
            forms=dict(bp.forms),
            variants=dict(bp.variants),
            nodes=[
                NodeSpec(
                    name=n.name, op_type=n.op_type, inputs=tuple(n.inputs),
                    output=n.output, attrs=dict(n.attrs), fused=tuple(n.fused),
                    relu=n.relu, qconfig=dict(n.qconfig),
                )
                for n in bp.nodes
            ],
            refs=refs,
            tracker_pid=_tracker_pid(),
        )
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return SharedPlanWeights(spec, shm)


@dataclass
class AttachedPlan:
    """Worker-side result of :func:`attach_plan`.

    ``residency`` is the :func:`~repro.deploy.weight_residency` report
    over the rebound nodes — ``private_bytes`` must be 0 or the rebind
    silently copied parameters.  Keep the handle alive as long as the
    plan runs: it owns the mapping the weight views point into.
    """

    plan: InferencePlan
    residency: dict[str, int]
    _shm: shared_memory.SharedMemory | None = None

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            quiet_close(shm)


def attach_plan(spec: PlanSpec, *, poison: bool = False) -> AttachedPlan:
    """Map a published segment and rebind the plan onto zero-copy views.

    Runs in the worker process.  Views are marked read-only — kernels
    only ever *read* weights, and a stray in-place write would corrupt
    every sibling worker at once.
    """
    shm = shared_memory.SharedMemory(name=spec.segment)
    untrack_attached(shm, spec.tracker_pid)
    views: dict[str, dict[str, np.ndarray]] = {}
    for ref in spec.refs:
        dtype = np.dtype(ref.dtype)
        count = int(np.prod(ref.shape, dtype=np.int64)) if ref.shape else 1
        flat = np.frombuffer(shm.buf, dtype=dtype, count=count, offset=ref.offset)
        flat.flags.writeable = False
        views.setdefault(ref.node, {})[ref.role] = flat.reshape(ref.shape)
    nodes = [
        PlanNode(
            name=ns.name, op_type=ns.op_type, inputs=list(ns.inputs),
            output=ns.output, attrs=dict(ns.attrs), fused=list(ns.fused),
            relu=ns.relu, weights=views.get(ns.name, {}), qweight=None,
            qconfig=dict(ns.qconfig),
        )
        for ns in spec.nodes
    ]
    blueprint = _PlanBlueprint(
        name=spec.name,
        input_shape=tuple(spec.input_shape),
        nodes=nodes,
        shapes=spec.shapes,
        release=[list(names) for names in spec.release],
        final_output=spec.final_output,
        naive_tensor_shapes=spec.naive_tensor_shapes,
        fingerprint=spec.fingerprint,
        forms=dict(spec.forms),
        variants=dict(spec.variants),
    )
    plan = blueprint.bind(poison=poison)
    residency = weight_residency(nodes, shm.buf)
    return AttachedPlan(plan=plan, residency=residency, _shm=shm)
