"""Compiled inference plans: arena-allocated, pre-bound fused kernels.

:func:`compile_plan` lowers a :class:`~repro.onnxlite.schema.ModelProto`
through the pass pipeline of :mod:`repro.deploy.passes` and binds every
fused operator to a concrete NumPy closure at compile time:

- **no per-call dispatch** — each step is a closure with its weights,
  geometry, and GEMM matrices captured as locals (BatchNorm already
  folded into the Conv weights, ReLU applied in-kernel);
- **static memory planning** — a liveness-derived release schedule
  recycles intermediate buffers through an :class:`Arena` the moment
  their last consumer has run, instead of accumulating every activation
  for the whole forward pass;
- **workspace reuse** — the im2col column matrix and padded-input
  scratch come from the same arena, so Conv ops sharing a shape share
  one allocation across the run *and* across runs.

The interpreted :class:`~repro.deploy.runtime.OnnxliteRuntime` path is
kept unchanged as the independent reference implementation; equivalence
between the two (and :mod:`repro.nn`) is enforced by
``tests/test_deploy_plan.py``.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

import repro.obs as obs

from repro.deploy.passes import (
    PlanNode,
    build_plan_nodes,
    compute_liveness,
    fuse_operators,
    infer_shapes,
    toposort_nodes,
)
from repro.onnxlite.schema import ModelProto
from repro.tensor.conv_ops import im2col

__all__ = [
    "Arena",
    "BATCH_MERGED_MAX_POSITIONS",
    "ConcurrentPlanError",
    "InferencePlan",
    "PlanStep",
    "compile_plan",
]

_INPUT = "input"

#: Positions-per-image threshold below which the *batched* Conv kernel
#: switches to the batch-merged GEMM layout.  Small spatial outputs make
#: the per-sample GEMM skinny (e.g. a 256-channel 2x2 stage is a
#: ``(256, 2304) @ (2304, 4)`` product — almost no N dimension to
#: amortize the K-panel loads over); merging the batch into the GEMM's N
#: dimension (``(C_out, Ckk) @ (Ckk, N*P)``) keeps the kernel saturated
#: and measures up to ~5x faster per image at batch 8-16.  Large spatial
#: outputs already saturate the GEMM and fit the per-sample working set
#: in cache, so they keep the channel-major per-sample loop (which also
#: stays bitwise-identical to the single-image path).  Mirrors the
#: ``MERGED_GEMM_MAX_POSITIONS`` crossover of the training substrate.
BATCH_MERGED_MAX_POSITIONS = 256


class ConcurrentPlanError(RuntimeError):
    """Two threads entered :meth:`InferencePlan.run` at the same time.

    A compiled plan owns one :class:`Arena`; concurrent runs would hand
    out the same scratch buffers twice and silently corrupt activations.
    The run guard turns that misuse into a loud error — for concurrent
    serving, give each worker its own replica via
    :meth:`InferencePlan.replicate` (what :class:`repro.serve.PlanCache`
    does) instead of sharing one plan.
    """


class Arena:
    """A pooling allocator for intermediate activation buffers.

    Buffers are flat float32 arrays handed out as shaped views; released
    buffers return to a free pool and are reused by the smallest-fit
    candidate, so a full forward pass settles into a handful of
    allocations that persist across runs.  The free pool is kept sorted
    by capacity, so the smallest-fit lookup is a bisect + pop instead of
    a linear scan — O(log f) per acquire where the old scan was O(f),
    which matters once batch-bucketed serving multiplies the pooled
    buffer population.

    Parameters
    ----------
    poison:
        Debug mode — released buffers are filled with NaN so any kernel
        reading a freed tensor corrupts the output and fails the
        equivalence tests instead of silently reading stale data.
    """

    def __init__(self, poison: bool = False) -> None:
        self.poison = poison
        #: Free pool, kept sorted ascending by element capacity; the
        #: parallel ``_free_sizes`` list is the bisect key.
        self._free: list[np.ndarray] = []
        self._free_sizes: list[int] = []
        self._live: dict[int, np.ndarray] = {}
        self.current_bytes = 0
        self.peak_bytes = 0
        self.allocations = 0
        self.reuses = 0

    def acquire(self, shape: tuple[int, ...]) -> np.ndarray:
        """A float32 buffer of ``shape`` (pooled when possible)."""
        size = int(math.prod(shape))
        # Smallest fit = first pooled buffer with capacity >= size.
        i = bisect.bisect_left(self._free_sizes, size)
        if i < len(self._free):
            base = self._free.pop(i)
            self._free_sizes.pop(i)
            self.reuses += 1
        else:
            base = np.empty(size, dtype=np.float32)
            self.allocations += 1
        view = base[:size].reshape(shape)
        self._live[id(view)] = base
        self.current_bytes += base.nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        return view

    def release(self, view: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`acquire` to the pool."""
        base = self._live.pop(id(view), None)
        if base is None:
            raise KeyError("released a buffer the arena does not own (planner bug)")
        if self.poison:
            base.fill(np.nan)
        self.current_bytes -= base.nbytes
        i = bisect.bisect_left(self._free_sizes, base.size)
        self._free.insert(i, base)
        self._free_sizes.insert(i, base.size)

    @property
    def live_count(self) -> int:
        """Number of buffers currently handed out."""
        return len(self._live)

    @property
    def pooled_bytes(self) -> int:
        """Capacity currently parked in the free pool."""
        return sum(b.nbytes for b in self._free)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Arena(live={self.live_count}, pooled={len(self._free)}, "
                f"peak_bytes={self.peak_bytes:,}, allocs={self.allocations}, "
                f"reuses={self.reuses})")


@dataclass
class PlanStep:
    """One executable step: a pre-bound kernel plus its release schedule."""

    name: str
    chain: tuple[str, ...]
    run: Callable[[dict[str, np.ndarray]], np.ndarray]
    inputs: tuple[str, ...]
    output: str
    #: Tensors whose buffers return to the arena after this step.
    release: list[str] = field(default_factory=list)
    #: Tensors dropped from the environment without an arena release
    #: (their buffer was transferred to this step's in-place output).
    drop: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# kernel binding
# --------------------------------------------------------------------------


def _bind_conv(node: PlanNode, in_shape, out_shape, arena: Arena):
    """Bind a (fused) Conv node with batch-adaptive GEMM strategies.

    - ``N == 1`` — the original single-stream path: one channel-major
      ``(C_out, Ckk) @ (Ckk, P)`` product writing NCHW directly.
    - ``N > 1``, large spatial — a per-sample loop of the same product
      (bitwise-identical per image to the single-stream path; the
      per-sample column matrix stays cache-resident, which beats both
      NumPy's broadcast batched matmul and the merged layout here).
    - ``N > 1``, spatial <= :data:`BATCH_MERGED_MAX_POSITIONS` — the
      batch-merged layout: one ``(C_out, Ckk) @ (Ckk, N*P)`` product
      over a merged column matrix, then one transpose pass back to
      NCHW.  This is where batched serving earns its throughput.

    Padding is written border-only (the interior is fully overwritten by
    the input copy), saving a full memset of the padded buffer per call.
    """
    c_in, h, w = in_shape
    c_out, oh, ow = out_shape
    kernel = int(node.attrs["kernel"])
    stride = int(node.attrs["stride"])
    padding = int(node.attrs["padding"])
    w_mat = np.ascontiguousarray(node.weights["weight"].reshape(c_out, -1))
    bias = node.weights.get("bias")
    bias_col = None if bias is None else np.ascontiguousarray(bias.reshape(c_out, 1, 1))
    relu = node.relu
    in_name = node.inputs[0]
    cols_rows = c_in * kernel * kernel
    spatial = oh * ow
    merged = spatial <= BATCH_MERGED_MAX_POSITIONS

    def pad_input(x: np.ndarray, n: int) -> np.ndarray:
        """Border-only zero fill + interior copy into an arena buffer."""
        xp = arena.acquire((n, c_in, h + 2 * padding, w + 2 * padding))
        xp[:, :, :padding, :] = 0.0
        xp[:, :, padding + h :, :] = 0.0
        xp[:, :, padding : padding + h, :padding] = 0.0
        xp[:, :, padding : padding + h, padding + w :] = 0.0
        xp[:, :, padding : padding + h, padding : padding + w] = x
        return xp

    def finish(out: np.ndarray) -> np.ndarray:
        if bias_col is not None:
            out += bias_col
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    def run_channel_major(x: np.ndarray, n: int) -> np.ndarray:
        xp = pad_input(x, n) if padding else x
        cols = arena.acquire((n, cols_rows, spatial))
        im2col(xp, kernel, stride, out=cols)
        if padding:
            arena.release(xp)
        out = arena.acquire((n, c_out, oh, ow))
        out_mat = out.reshape(n, c_out, spatial)
        if n == 1:
            np.matmul(w_mat, cols, out=out_mat)
        else:
            # Per-sample products: identical GEMM shape to the N == 1
            # path (bitwise-equal per image) and the per-sample column
            # matrix stays hot in cache across the loop.
            for i in range(n):
                np.matmul(w_mat, cols[i], out=out_mat[i])
        arena.release(cols)
        return finish(out)

    def run_batch_merged(x: np.ndarray, n: int) -> np.ndarray:
        xp = pad_input(x, n) if padding else x
        windows = sliding_window_view(xp, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
        cols = arena.acquire((cols_rows, n * spatial))
        # Merged layout: column j of the GEMM is (sample j // P, position
        # j % P) — batch folded into the GEMM's N dimension.
        np.copyto(
            cols.reshape(c_in, kernel, kernel, n, oh, ow),
            windows.transpose(1, 4, 5, 0, 2, 3),
        )
        if padding:
            arena.release(xp)
        om = arena.acquire((c_out, n, spatial))
        np.matmul(w_mat, cols.reshape(cols_rows, n * spatial), out=om.reshape(c_out, n * spatial))
        arena.release(cols)
        finish(om)  # bias (C_out, 1, 1) broadcasts over (C_out, N, P)
        out = arena.acquire((n, c_out, oh, ow))
        np.copyto(out.reshape(n, c_out, spatial), om.transpose(1, 0, 2))
        arena.release(om)
        return out

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        n = x.shape[0]
        if n > 1 and merged:
            return run_batch_merged(x, n)
        return run_channel_major(x, n)

    return run


def _bind_gemm(node: PlanNode, out_shape, arena: Arena):
    # (in, out) layout; cached on the node so plan replicas share one
    # transposed copy instead of materializing it per bind.
    weight_t = node.weights.get("weight_t")
    if weight_t is None:
        weight_t = np.ascontiguousarray(node.weights["weight"].T)
        node.weights["weight_t"] = weight_t
    bias = node.weights.get("bias")
    relu = node.relu
    in_name = node.inputs[0]
    out_features = out_shape[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], out_features))
        np.matmul(x, weight_t, out=out)
        if bias is not None:
            out += bias
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_batch_norm(node: PlanNode, arena: Arena, inplace: bool):
    scale = node.weights["scale"].reshape(-1, 1, 1)
    shift = node.weights["shift"].reshape(-1, 1, 1)
    relu = node.relu
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = x if inplace else arena.acquire(x.shape)
        np.multiply(x, scale, out=out)
        out += shift
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_relu(node: PlanNode, arena: Arena, inplace: bool):
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = x if inplace else arena.acquire(x.shape)
        np.maximum(x, 0.0, out=out)
        return out

    return run


def _bind_add(node: PlanNode, arena: Arena, inplace_name: str | None):
    a_name, b_name = node.inputs
    relu = node.relu

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        a, b = env[a_name], env[b_name]
        out = env[inplace_name] if inplace_name is not None else arena.acquire(a.shape)
        np.add(a, b, out=out)
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_max_pool(node: PlanNode, out_shape, arena: Arena):
    kernel = int(node.attrs["kernel"])
    stride = int(node.attrs["stride"])
    average = bool(node.attrs.get("average"))
    c, oh, ow = out_shape
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        windows = sliding_window_view(x, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
        out = arena.acquire((x.shape[0], c, oh, ow))
        if average:
            np.mean(windows, axis=(-2, -1), dtype=np.float32, out=out)
        else:
            np.max(windows, axis=(-2, -1), out=out)
        return out

    return run


def _bind_global_avg_pool(node: PlanNode, out_shape, arena: Arena):
    in_name = node.inputs[0]
    channels = out_shape[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], channels))
        np.mean(x, axis=(2, 3), dtype=np.float32, out=out)
        return out

    return run


def _bind_flatten(node: PlanNode, out_shape, arena: Arena):
    in_name = node.inputs[0]
    flat = out_shape[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], flat))
        np.copyto(out, x.reshape(x.shape[0], flat))
        return out

    return run


def _bind_step(
    node: PlanNode,
    step: int,
    shapes: dict[str, tuple[int, ...]],
    release: list[list[str]],
    arena: Arena,
) -> PlanStep:
    """Resolve one fused node to a concrete closure + release schedule."""
    in_shape = shapes[node.inputs[0]]
    out_shape = shapes[node.output]
    kind = node.op_type
    drop: list[str] = []

    def claim_inplace() -> str | None:
        """Steal a dying, arena-owned input buffer for the output."""
        for name in node.inputs:
            if name != _INPUT and name in release[step] and shapes[name] == out_shape:
                release[step].remove(name)
                drop.append(name)
                return name
        return None

    if kind == "Conv":
        run = _bind_conv(node, in_shape, out_shape, arena)
    elif kind == "Gemm":
        run = _bind_gemm(node, out_shape, arena)
    elif kind == "BatchNormalization":
        run = _bind_batch_norm(node, arena, inplace=claim_inplace() is not None)
    elif kind == "Relu":
        run = _bind_relu(node, arena, inplace=claim_inplace() is not None)
    elif kind == "Add":
        run = _bind_add(node, arena, inplace_name=claim_inplace())
    elif kind == "MaxPool":
        run = _bind_max_pool(node, out_shape, arena)
    elif kind == "GlobalAveragePool":
        run = _bind_global_avg_pool(node, out_shape, arena)
    elif kind == "Flatten":
        run = _bind_flatten(node, out_shape, arena)
    else:  # pragma: no cover - guarded by runtime op validation
        raise ValueError(f"cannot bind kernel for operator {kind!r}")

    return PlanStep(
        name=node.name,
        chain=node.chain,
        run=run,
        inputs=tuple(node.inputs),
        output=node.output,
        release=release[step],
        drop=drop,
    )


# --------------------------------------------------------------------------
# the plan
# --------------------------------------------------------------------------


class InferencePlan:
    """A compiled model: fused, pre-bound kernels over an arena.

    Built by :func:`compile_plan` (or
    :meth:`repro.deploy.runtime.OnnxliteRuntime.compile`); run with
    :meth:`run`.  The plan is specialized to the model's compile-time
    spatial input shape — only the batch dimension is dynamic.  The
    arena persists across calls, so steady-state inference performs no
    large allocations at all.
    """

    def __init__(
        self,
        name: str,
        input_shape: tuple[int, ...],
        steps: list[PlanStep],
        arena: Arena,
        shapes: dict[str, tuple[int, ...]],
        final_output: str,
        naive_tensor_shapes: list[tuple[int, ...]],
        blueprint: "_PlanBlueprint | None" = None,
        fingerprint: str = "",
    ) -> None:
        self.name = name
        self.input_shape = tuple(int(d) for d in input_shape)
        self.steps = steps
        self.arena = arena
        self.shapes = shapes
        self.final_output = final_output
        #: Stable identity of the compiled model (weights + topology);
        #: the serving plan cache keys on ``(fingerprint, batch bucket)``.
        self.fingerprint = fingerprint
        self._blueprint = blueprint
        self._naive_tensor_shapes = naive_tensor_shapes
        # Re-entrancy guard: one arena per plan means run() must never be
        # entered concurrently; the non-blocking lock turns such misuse
        # into ConcurrentPlanError instead of silent corruption.
        self._run_guard = threading.Lock()
        # Per-plan inference latency histogram (no-op while obs is
        # disabled; handle cached here so run() pays one flag check).
        self._latency = obs.histogram(
            "repro_inference_latency_seconds", plan=name, runtime="compiled"
        )

    # -- execution -------------------------------------------------------------

    def run(self, x: np.ndarray) -> np.ndarray:
        """Run inference on a batch of the compiled input shape.

        Not thread-safe: the plan owns one :class:`Arena`, so concurrent
        calls on the *same* plan raise :class:`ConcurrentPlanError`.
        For parallel serving, hand each worker its own
        :meth:`replicate` (weights stay shared; arenas are private).
        """
        started = time.perf_counter()
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4 or tuple(x.shape[1:]) != self.input_shape:
            raise ValueError(
                f"plan compiled for input (N, {', '.join(map(str, self.input_shape))}); "
                f"got shape {tuple(x.shape)} — use the interpreted runtime for "
                f"other spatial sizes"
            )
        if not self._run_guard.acquire(blocking=False):
            raise ConcurrentPlanError(
                f"InferencePlan {self.name!r} entered concurrently; plans are "
                f"single-threaded — use InferencePlan.replicate() (or "
                f"repro.serve.PlanServer) to run batches in parallel"
            )
        try:
            env: dict[str, np.ndarray] = {_INPUT: x}
            arena = self.arena
            for step in self.steps:
                env[step.output] = step.run(env)
                for name in step.release:
                    arena.release(env.pop(name))
                for name in step.drop:
                    env.pop(name)
            result = env.pop(self.final_output)
            out = result.copy()
            arena.release(result)
        finally:
            self._run_guard.release()
        self._latency.observe(time.perf_counter() - started)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of the logits)."""
        return self.run(x).argmax(axis=1)

    # -- replication ----------------------------------------------------------

    def replicate(self, poison: bool | None = None) -> "InferencePlan":
        """A new plan over the *same weights* with a private arena.

        Replicas are how concurrent serving scales out: the fused
        weight matrices are captured by reference when the blueprint
        re-binds its kernels (``ascontiguousarray`` on the already
        contiguous folded weights is a no-copy pass-through), so N
        replicas cost N arenas of activation scratch but only one copy
        of the model parameters.

        Parameters
        ----------
        poison:
            Debug NaN-poisoning for the replica's arena; defaults to the
            source plan's setting.
        """
        if self._blueprint is None:
            raise ValueError(
                "plan was constructed without a blueprint and cannot be "
                "replicated; build it via compile_plan()"
            )
        if poison is None:
            poison = self.arena.poison
        return self._blueprint.bind(poison=poison)

    # -- introspection --------------------------------------------------------------

    @property
    def num_kernels(self) -> int:
        """Number of compiled dispatches per forward pass."""
        return len(self.steps)

    def kernel_chains(self) -> list[tuple[str, ...]]:
        """The fused op-type chain of every step, in execution order."""
        return [step.chain for step in self.steps]

    def planned_peak_bytes(self, batch: int = 1) -> int:
        """Static peak of live intermediate bytes under the release plan."""
        live: dict[str, int] = {}
        peak = 0
        for step in self.steps:
            live[step.output] = 4 * batch * int(math.prod(self.shapes[step.output]))
            peak = max(peak, sum(live.values()))
            for name in (*step.release, *step.drop):
                live.pop(name, None)
        return peak

    def naive_env_bytes(self, batch: int = 1) -> int:
        """Bytes the interpreted runtime keeps live (every activation)."""
        return sum(4 * batch * int(math.prod(s)) for s in self._naive_tensor_shapes)

    def memory_stats(self) -> dict[str, int]:
        """Arena counters (measured over all runs so far)."""
        return {
            "peak_bytes": self.arena.peak_bytes,
            "current_bytes": self.arena.current_bytes,
            "pooled_bytes": self.arena.pooled_bytes,
            "allocations": self.arena.allocations,
            "reuses": self.arena.reuses,
        }

    def describe(self) -> str:
        """Human-readable step table (kernel chain, shapes, releases)."""
        lines = [f"InferencePlan {self.name!r}: {self.num_kernels} kernels, "
                 f"input (N, {', '.join(map(str, self.input_shape))})"]
        for step in self.steps:
            chain = "+".join(step.chain)
            out_shape = "x".join(map(str, self.shapes[step.output]))
            freed = f"  frees {sorted(step.release)}" if step.release else ""
            inplace = f"  in-place on {step.drop[0]!r}" if step.drop else ""
            lines.append(f"  {step.name:32s} {chain:34s} -> {out_shape}{freed}{inplace}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"InferencePlan(model={self.name!r}, kernels={self.num_kernels}, "
                f"input_shape={self.input_shape})")


@dataclass
class _PlanBlueprint:
    """Everything needed to (re)bind an :class:`InferencePlan`.

    :func:`compile_plan` runs the pass pipeline once and parks the
    result here; :meth:`bind` then stamps out executable plans — the
    original and any :meth:`InferencePlan.replicate` replicas — each
    with a private :class:`Arena` but sharing the fused weight arrays
    held by the :class:`~repro.deploy.passes.PlanNode` list.
    """

    name: str
    input_shape: tuple[int, ...]
    nodes: list[PlanNode]
    shapes: dict[str, tuple[int, ...]]
    #: Pristine liveness schedule; bind() hands each plan its own copy
    #: because ``claim_inplace`` mutates the per-step release lists.
    release: list[list[str]]
    final_output: str
    naive_tensor_shapes: list[tuple[int, ...]]
    fingerprint: str

    def bind(self, poison: bool = False) -> InferencePlan:
        """Bind the kernels to a fresh arena and return a runnable plan."""
        arena = Arena(poison=poison)
        release = [list(names) for names in self.release]
        steps = [
            _bind_step(node, i, self.shapes, release, arena)
            for i, node in enumerate(self.nodes)
        ]
        return InferencePlan(
            name=self.name,
            input_shape=self.input_shape,
            steps=steps,
            arena=arena,
            shapes=self.shapes,
            final_output=self.final_output,
            naive_tensor_shapes=self.naive_tensor_shapes,
            blueprint=self,
            fingerprint=self.fingerprint,
        )


def compile_plan(
    proto: ModelProto,
    weights: dict[str, np.ndarray] | None = None,
    *,
    poison: bool = False,
) -> InferencePlan:
    """Compile a model proto into an :class:`InferencePlan`.

    Parameters
    ----------
    proto:
        The deserialized model (quantized payloads are dequantized here
        unless ``weights`` is supplied).
    weights:
        Optional pre-dequantized initializer table (name -> float32
        array); :class:`~repro.deploy.runtime.OnnxliteRuntime` passes its
        own so the two paths share one load step.
    poison:
        Debug mode: fill released arena buffers with NaN to surface any
        read-after-free in the release schedule (see :class:`Arena`).
    """
    if not proto.operators:
        raise ValueError("model has no operators")
    if weights is None:
        weights = {t.name: t.dequantized() for t in proto.initializers}
    final_output = proto.operators[-1].outputs[0]
    nodes = build_plan_nodes(proto, weights)

    # Static naive footprint (pre-fusion): one live tensor per operator.
    naive_shapes = list(
        infer_shapes(toposort_nodes(nodes), proto.input_shape).values()
    )

    nodes = fuse_operators(nodes)
    nodes = toposort_nodes(nodes)
    shapes = infer_shapes(nodes, proto.input_shape)
    release, _ = compute_liveness(nodes, final_output=final_output)

    blueprint = _PlanBlueprint(
        name=proto.name,
        input_shape=proto.input_shape,
        nodes=nodes,
        shapes=shapes,
        release=release,
        final_output=final_output,
        naive_tensor_shapes=naive_shapes,
        fingerprint=proto.fingerprint(),
    )
    return blueprint.bind(poison=poison)
