"""Compiled inference plans: arena-allocated, pre-bound fused kernels.

:func:`compile_plan` lowers a :class:`~repro.onnxlite.schema.ModelProto`
through the pass pipeline of :mod:`repro.deploy.passes` and binds every
fused operator to a concrete NumPy closure at compile time:

- **no per-call dispatch** — each step is a closure with its weights,
  geometry, and GEMM matrices captured as locals (BatchNorm already
  folded into the Conv weights, ReLU applied in-kernel);
- **static memory planning** — a liveness-derived release schedule
  recycles intermediate buffers through an :class:`Arena` the moment
  their last consumer has run, instead of accumulating every activation
  for the whole forward pass;
- **workspace reuse** — the im2col column matrix and padded-input
  scratch come from the same arena, so Conv ops sharing a shape share
  one allocation across the run *and* across runs.

The interpreted :class:`~repro.deploy.runtime.OnnxliteRuntime` path is
kept unchanged as the independent reference implementation; equivalence
between the two (and :mod:`repro.nn`) is enforced by
``tests/test_deploy_plan.py``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

import repro.obs as obs

from repro.deploy.passes import (
    PlanNode,
    build_plan_nodes,
    compute_liveness,
    fuse_operators,
    infer_shapes,
    toposort_nodes,
)
from repro.onnxlite.schema import ModelProto
from repro.tensor.conv_ops import im2col

__all__ = ["Arena", "InferencePlan", "PlanStep", "compile_plan"]

_INPUT = "input"


class Arena:
    """A pooling allocator for intermediate activation buffers.

    Buffers are flat float32 arrays handed out as shaped views; released
    buffers return to a free pool and are reused by the smallest-fit
    candidate, so a full forward pass settles into a handful of
    allocations that persist across runs.

    Parameters
    ----------
    poison:
        Debug mode — released buffers are filled with NaN so any kernel
        reading a freed tensor corrupts the output and fails the
        equivalence tests instead of silently reading stale data.
    """

    def __init__(self, poison: bool = False) -> None:
        self.poison = poison
        self._free: list[np.ndarray] = []
        self._live: dict[int, np.ndarray] = {}
        self.current_bytes = 0
        self.peak_bytes = 0
        self.allocations = 0
        self.reuses = 0

    def acquire(self, shape: tuple[int, ...]) -> np.ndarray:
        """A float32 buffer of ``shape`` (pooled when possible)."""
        size = int(math.prod(shape))
        best = -1
        for i, buf in enumerate(self._free):
            if buf.size >= size and (best < 0 or buf.size < self._free[best].size):
                best = i
        if best >= 0:
            base = self._free.pop(best)
            self.reuses += 1
        else:
            base = np.empty(size, dtype=np.float32)
            self.allocations += 1
        view = base[:size].reshape(shape)
        self._live[id(view)] = base
        self.current_bytes += base.nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        return view

    def release(self, view: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`acquire` to the pool."""
        base = self._live.pop(id(view), None)
        if base is None:
            raise KeyError("released a buffer the arena does not own (planner bug)")
        if self.poison:
            base.fill(np.nan)
        self.current_bytes -= base.nbytes
        self._free.append(base)

    @property
    def live_count(self) -> int:
        """Number of buffers currently handed out."""
        return len(self._live)

    @property
    def pooled_bytes(self) -> int:
        """Capacity currently parked in the free pool."""
        return sum(b.nbytes for b in self._free)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Arena(live={self.live_count}, pooled={len(self._free)}, "
                f"peak_bytes={self.peak_bytes:,}, allocs={self.allocations}, "
                f"reuses={self.reuses})")


@dataclass
class PlanStep:
    """One executable step: a pre-bound kernel plus its release schedule."""

    name: str
    chain: tuple[str, ...]
    run: Callable[[dict[str, np.ndarray]], np.ndarray]
    inputs: tuple[str, ...]
    output: str
    #: Tensors whose buffers return to the arena after this step.
    release: list[str] = field(default_factory=list)
    #: Tensors dropped from the environment without an arena release
    #: (their buffer was transferred to this step's in-place output).
    drop: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# kernel binding
# --------------------------------------------------------------------------


def _bind_conv(node: PlanNode, in_shape, out_shape, arena: Arena):
    c_in, h, w = in_shape
    c_out, oh, ow = out_shape
    kernel = int(node.attrs["kernel"])
    stride = int(node.attrs["stride"])
    padding = int(node.attrs["padding"])
    w_mat = np.ascontiguousarray(node.weights["weight"].reshape(c_out, -1))
    bias = node.weights.get("bias")
    bias_col = None if bias is None else np.ascontiguousarray(bias.reshape(c_out, 1, 1))
    relu = node.relu
    in_name = node.inputs[0]
    cols_rows = c_in * kernel * kernel
    spatial = oh * ow

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        n = x.shape[0]
        if padding:
            xp = arena.acquire((n, c_in, h + 2 * padding, w + 2 * padding))
            xp.fill(0.0)
            xp[:, :, padding : padding + h, padding : padding + w] = x
        else:
            xp = x
        cols = arena.acquire((n, cols_rows, spatial))
        im2col(xp, kernel, stride, out=cols)
        if padding:
            arena.release(xp)
        out = arena.acquire((n, c_out, oh, ow))
        np.matmul(w_mat, cols, out=out.reshape(n, c_out, spatial))
        arena.release(cols)
        if bias_col is not None:
            out += bias_col
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_gemm(node: PlanNode, out_shape, arena: Arena):
    weight_t = np.ascontiguousarray(node.weights["weight"].T)  # (in, out)
    bias = node.weights.get("bias")
    relu = node.relu
    in_name = node.inputs[0]
    out_features = out_shape[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], out_features))
        np.matmul(x, weight_t, out=out)
        if bias is not None:
            out += bias
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_batch_norm(node: PlanNode, arena: Arena, inplace: bool):
    scale = node.weights["scale"].reshape(-1, 1, 1)
    shift = node.weights["shift"].reshape(-1, 1, 1)
    relu = node.relu
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = x if inplace else arena.acquire(x.shape)
        np.multiply(x, scale, out=out)
        out += shift
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_relu(node: PlanNode, arena: Arena, inplace: bool):
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = x if inplace else arena.acquire(x.shape)
        np.maximum(x, 0.0, out=out)
        return out

    return run


def _bind_add(node: PlanNode, arena: Arena, inplace_name: str | None):
    a_name, b_name = node.inputs
    relu = node.relu

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        a, b = env[a_name], env[b_name]
        out = env[inplace_name] if inplace_name is not None else arena.acquire(a.shape)
        np.add(a, b, out=out)
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_max_pool(node: PlanNode, out_shape, arena: Arena):
    kernel = int(node.attrs["kernel"])
    stride = int(node.attrs["stride"])
    average = bool(node.attrs.get("average"))
    c, oh, ow = out_shape
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        windows = sliding_window_view(x, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
        out = arena.acquire((x.shape[0], c, oh, ow))
        if average:
            np.mean(windows, axis=(-2, -1), dtype=np.float32, out=out)
        else:
            np.max(windows, axis=(-2, -1), out=out)
        return out

    return run


def _bind_global_avg_pool(node: PlanNode, out_shape, arena: Arena):
    in_name = node.inputs[0]
    channels = out_shape[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], channels))
        np.mean(x, axis=(2, 3), dtype=np.float32, out=out)
        return out

    return run


def _bind_flatten(node: PlanNode, out_shape, arena: Arena):
    in_name = node.inputs[0]
    flat = out_shape[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], flat))
        np.copyto(out, x.reshape(x.shape[0], flat))
        return out

    return run


def _bind_step(
    node: PlanNode,
    step: int,
    shapes: dict[str, tuple[int, ...]],
    release: list[list[str]],
    arena: Arena,
) -> PlanStep:
    """Resolve one fused node to a concrete closure + release schedule."""
    in_shape = shapes[node.inputs[0]]
    out_shape = shapes[node.output]
    kind = node.op_type
    drop: list[str] = []

    def claim_inplace() -> str | None:
        """Steal a dying, arena-owned input buffer for the output."""
        for name in node.inputs:
            if name != _INPUT and name in release[step] and shapes[name] == out_shape:
                release[step].remove(name)
                drop.append(name)
                return name
        return None

    if kind == "Conv":
        run = _bind_conv(node, in_shape, out_shape, arena)
    elif kind == "Gemm":
        run = _bind_gemm(node, out_shape, arena)
    elif kind == "BatchNormalization":
        run = _bind_batch_norm(node, arena, inplace=claim_inplace() is not None)
    elif kind == "Relu":
        run = _bind_relu(node, arena, inplace=claim_inplace() is not None)
    elif kind == "Add":
        run = _bind_add(node, arena, inplace_name=claim_inplace())
    elif kind == "MaxPool":
        run = _bind_max_pool(node, out_shape, arena)
    elif kind == "GlobalAveragePool":
        run = _bind_global_avg_pool(node, out_shape, arena)
    elif kind == "Flatten":
        run = _bind_flatten(node, out_shape, arena)
    else:  # pragma: no cover - guarded by runtime op validation
        raise ValueError(f"cannot bind kernel for operator {kind!r}")

    return PlanStep(
        name=node.name,
        chain=node.chain,
        run=run,
        inputs=tuple(node.inputs),
        output=node.output,
        release=release[step],
        drop=drop,
    )


# --------------------------------------------------------------------------
# the plan
# --------------------------------------------------------------------------


class InferencePlan:
    """A compiled model: fused, pre-bound kernels over an arena.

    Built by :func:`compile_plan` (or
    :meth:`repro.deploy.runtime.OnnxliteRuntime.compile`); run with
    :meth:`run`.  The plan is specialized to the model's compile-time
    spatial input shape — only the batch dimension is dynamic.  The
    arena persists across calls, so steady-state inference performs no
    large allocations at all.
    """

    def __init__(
        self,
        name: str,
        input_shape: tuple[int, ...],
        steps: list[PlanStep],
        arena: Arena,
        shapes: dict[str, tuple[int, ...]],
        final_output: str,
        naive_tensor_shapes: list[tuple[int, ...]],
    ) -> None:
        self.name = name
        self.input_shape = tuple(int(d) for d in input_shape)
        self.steps = steps
        self.arena = arena
        self.shapes = shapes
        self.final_output = final_output
        self._naive_tensor_shapes = naive_tensor_shapes
        # Per-plan inference latency histogram (no-op while obs is
        # disabled; handle cached here so run() pays one flag check).
        self._latency = obs.histogram(
            "repro_inference_latency_seconds", plan=name, runtime="compiled"
        )

    # -- execution -------------------------------------------------------------

    def run(self, x: np.ndarray) -> np.ndarray:
        """Run inference on a batch of the compiled input shape."""
        started = time.perf_counter()
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4 or tuple(x.shape[1:]) != self.input_shape:
            raise ValueError(
                f"plan compiled for input (N, {', '.join(map(str, self.input_shape))}); "
                f"got shape {tuple(x.shape)} — use the interpreted runtime for "
                f"other spatial sizes"
            )
        env: dict[str, np.ndarray] = {_INPUT: x}
        arena = self.arena
        for step in self.steps:
            env[step.output] = step.run(env)
            for name in step.release:
                arena.release(env.pop(name))
            for name in step.drop:
                env.pop(name)
        result = env.pop(self.final_output)
        out = result.copy()
        arena.release(result)
        self._latency.observe(time.perf_counter() - started)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of the logits)."""
        return self.run(x).argmax(axis=1)

    # -- introspection --------------------------------------------------------------

    @property
    def num_kernels(self) -> int:
        """Number of compiled dispatches per forward pass."""
        return len(self.steps)

    def kernel_chains(self) -> list[tuple[str, ...]]:
        """The fused op-type chain of every step, in execution order."""
        return [step.chain for step in self.steps]

    def planned_peak_bytes(self, batch: int = 1) -> int:
        """Static peak of live intermediate bytes under the release plan."""
        live: dict[str, int] = {}
        peak = 0
        for step in self.steps:
            live[step.output] = 4 * batch * int(math.prod(self.shapes[step.output]))
            peak = max(peak, sum(live.values()))
            for name in (*step.release, *step.drop):
                live.pop(name, None)
        return peak

    def naive_env_bytes(self, batch: int = 1) -> int:
        """Bytes the interpreted runtime keeps live (every activation)."""
        return sum(4 * batch * int(math.prod(s)) for s in self._naive_tensor_shapes)

    def memory_stats(self) -> dict[str, int]:
        """Arena counters (measured over all runs so far)."""
        return {
            "peak_bytes": self.arena.peak_bytes,
            "current_bytes": self.arena.current_bytes,
            "pooled_bytes": self.arena.pooled_bytes,
            "allocations": self.arena.allocations,
            "reuses": self.arena.reuses,
        }

    def describe(self) -> str:
        """Human-readable step table (kernel chain, shapes, releases)."""
        lines = [f"InferencePlan {self.name!r}: {self.num_kernels} kernels, "
                 f"input (N, {', '.join(map(str, self.input_shape))})"]
        for step in self.steps:
            chain = "+".join(step.chain)
            out_shape = "x".join(map(str, self.shapes[step.output]))
            freed = f"  frees {sorted(step.release)}" if step.release else ""
            inplace = f"  in-place on {step.drop[0]!r}" if step.drop else ""
            lines.append(f"  {step.name:32s} {chain:34s} -> {out_shape}{freed}{inplace}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"InferencePlan(model={self.name!r}, kernels={self.num_kernels}, "
                f"input_shape={self.input_shape})")


def compile_plan(
    proto: ModelProto,
    weights: dict[str, np.ndarray] | None = None,
    *,
    poison: bool = False,
) -> InferencePlan:
    """Compile a model proto into an :class:`InferencePlan`.

    Parameters
    ----------
    proto:
        The deserialized model (quantized payloads are dequantized here
        unless ``weights`` is supplied).
    weights:
        Optional pre-dequantized initializer table (name -> float32
        array); :class:`~repro.deploy.runtime.OnnxliteRuntime` passes its
        own so the two paths share one load step.
    poison:
        Debug mode: fill released arena buffers with NaN to surface any
        read-after-free in the release schedule (see :class:`Arena`).
    """
    if not proto.operators:
        raise ValueError("model has no operators")
    if weights is None:
        weights = {t.name: t.dequantized() for t in proto.initializers}
    final_output = proto.operators[-1].outputs[0]
    nodes = build_plan_nodes(proto, weights)

    # Static naive footprint (pre-fusion): one live tensor per operator.
    naive_shapes = list(
        infer_shapes(toposort_nodes(nodes), proto.input_shape).values()
    )

    nodes = fuse_operators(nodes)
    nodes = toposort_nodes(nodes)
    shapes = infer_shapes(nodes, proto.input_shape)
    release, _ = compute_liveness(nodes, final_output=final_output)

    arena = Arena(poison=poison)
    steps = [
        _bind_step(node, i, shapes, release, arena)
        for i, node in enumerate(nodes)
    ]
    return InferencePlan(
        name=proto.name,
        input_shape=proto.input_shape,
        steps=steps,
        arena=arena,
        shapes=shapes,
        final_output=final_output,
        naive_tensor_shapes=naive_shapes,
    )
