"""Compiled inference plans: arena-allocated, pre-bound fused kernels.

:func:`compile_plan` lowers a :class:`~repro.onnxlite.schema.ModelProto`
through the pass pipeline of :mod:`repro.deploy.passes` and binds every
fused operator to a concrete NumPy closure at compile time:

- **no per-call dispatch** — each step is a closure with its weights,
  geometry, and GEMM matrices captured as locals (BatchNorm already
  folded into the Conv weights, ReLU applied in-kernel);
- **static memory planning** — a liveness-derived release schedule
  recycles intermediate buffers through an :class:`Arena` the moment
  their last consumer has run, instead of accumulating every activation
  for the whole forward pass;
- **workspace reuse** — the im2col column matrix and padded-input
  scratch come from the same arena, so Conv ops sharing a shape share
  one allocation across the run *and* across runs.

The interpreted :class:`~repro.deploy.runtime.OnnxliteRuntime` path is
kept unchanged as the independent reference implementation; equivalence
between the two (and :mod:`repro.nn`) is enforced by
``tests/test_deploy_plan.py``.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

import repro.obs as obs

from repro.deploy.passes import (
    PlanNode,
    build_plan_nodes,
    compute_liveness,
    fuse_operators,
    infer_shapes,
    plan_quantization,
    toposort_nodes,
)
from repro.deploy.qkernels import (
    chunked_int_gemm,
    quantize_into,
    quantize_multiplier,
    quantize_multipliers,
    requantize,
)
from repro.deploy.weights import LazyWeightTable
from repro.deploy.winograd import WINOGRAD_VARIANT, bind_winograd_conv, winograd_eligible
from repro.latency.fusion import KERNEL_VARIANTS
from repro.onnxlite.schema import ModelProto
from repro.tensor.conv_ops import im2col

__all__ = [
    "Arena",
    "BATCH_MERGED_MAX_POSITIONS",
    "ConcurrentPlanError",
    "InferencePlan",
    "PlanStep",
    "compile_plan",
]

_INPUT = "input"

#: Positions-per-image threshold below which the *batched* Conv kernel
#: switches to the batch-merged GEMM layout.  Small spatial outputs make
#: the per-sample GEMM skinny (e.g. a 256-channel 2x2 stage is a
#: ``(256, 2304) @ (2304, 4)`` product — almost no N dimension to
#: amortize the K-panel loads over); merging the batch into the GEMM's N
#: dimension (``(C_out, Ckk) @ (Ckk, N*P)``) keeps the kernel saturated
#: and measures up to ~5x faster per image at batch 8-16.  Large spatial
#: outputs already saturate the GEMM and fit the per-sample working set
#: in cache, so they keep the channel-major per-sample loop (which also
#: stays bitwise-identical to the single-image path).  Mirrors the
#: ``MERGED_GEMM_MAX_POSITIONS`` crossover of the training substrate.
BATCH_MERGED_MAX_POSITIONS = 256


class ConcurrentPlanError(RuntimeError):
    """Two threads entered :meth:`InferencePlan.run` at the same time.

    A compiled plan owns one :class:`Arena`; concurrent runs would hand
    out the same scratch buffers twice and silently corrupt activations.
    The run guard turns that misuse into a loud error — for concurrent
    serving, give each worker its own replica via
    :meth:`InferencePlan.replicate` (what :class:`repro.serve.PlanCache`
    does) instead of sharing one plan.
    """


class Arena:
    """A pooling allocator for intermediate activation buffers.

    Buffers are flat byte arrays handed out as shaped, dtype-cast views
    (float32 by default; the integer kernel path draws uint8 activations
    and int32 accumulators from the same pool); released buffers return
    to a free pool and are reused by the smallest-fit candidate, so a
    full forward pass settles into a handful of allocations that persist
    across runs.  The free pool is kept sorted by capacity, so the
    smallest-fit lookup is a bisect + pop instead of a linear scan —
    O(log f) per acquire where the old scan was O(f), which matters once
    batch-bucketed serving multiplies the pooled buffer population.

    Parameters
    ----------
    poison:
        Debug mode — released buffers are filled with 0xFF bytes (NaN
        when read as float32) so any kernel reading a freed tensor
        corrupts the output and fails the equivalence tests instead of
        silently reading stale data.
    """

    def __init__(self, poison: bool = False) -> None:
        self.poison = poison
        #: Free pool of flat uint8 base buffers, kept sorted ascending by
        #: byte capacity; the parallel ``_free_sizes`` list is the bisect
        #: key.  Pooling bytes rather than elements lets a retired fp32
        #: activation come back as an int32 accumulator or 4x the uint8
        #: codes without fragmenting the pool by dtype.
        self._free: list[np.ndarray] = []
        self._free_sizes: list[int] = []
        self._live: dict[int, np.ndarray] = {}
        self.current_bytes = 0
        self.peak_bytes = 0
        self.allocations = 0
        self.reuses = 0

    def acquire(self, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """A ``dtype`` buffer of ``shape`` (pooled when possible)."""
        dt = np.dtype(dtype)
        nbytes = int(math.prod(shape)) * dt.itemsize
        # Smallest fit = first pooled buffer with capacity >= nbytes.
        i = bisect.bisect_left(self._free_sizes, nbytes)
        if i < len(self._free):
            base = self._free.pop(i)
            self._free_sizes.pop(i)
            self.reuses += 1
        else:
            base = np.empty(nbytes, dtype=np.uint8)
            self.allocations += 1
        view = base[:nbytes].view(dt).reshape(shape)
        self._live[id(view)] = base
        self.current_bytes += base.nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        return view

    def release(self, view: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`acquire` to the pool."""
        base = self._live.pop(id(view), None)
        if base is None:
            raise KeyError("released a buffer the arena does not own (planner bug)")
        if self.poison:
            base.fill(0xFF)  # NaN as float32, -1 as int32, 255 as uint8
        self.current_bytes -= base.nbytes
        i = bisect.bisect_left(self._free_sizes, base.size)
        self._free.insert(i, base)
        self._free_sizes.insert(i, base.size)

    @property
    def live_count(self) -> int:
        """Number of buffers currently handed out."""
        return len(self._live)

    @property
    def pooled_bytes(self) -> int:
        """Capacity currently parked in the free pool."""
        return sum(b.nbytes for b in self._free)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Arena(live={self.live_count}, pooled={len(self._free)}, "
                f"peak_bytes={self.peak_bytes:,}, allocs={self.allocations}, "
                f"reuses={self.reuses})")


@dataclass
class PlanStep:
    """One executable step: a pre-bound kernel plus its release schedule."""

    name: str
    chain: tuple[str, ...]
    run: Callable[[dict[str, np.ndarray]], np.ndarray]
    inputs: tuple[str, ...]
    output: str
    #: The kernel variant bound to this step — always a name from
    #: :data:`repro.latency.fusion.KERNEL_VARIANTS`, so predicted and
    #: executed kernels join on ``(op_type, variant)``.
    variant: str = ""
    #: Tensors whose buffers return to the arena after this step.
    release: list[str] = field(default_factory=list)
    #: Tensors dropped from the environment without an arena release
    #: (their buffer was transferred to this step's in-place output).
    drop: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# kernel binding
# --------------------------------------------------------------------------


def _bind_conv(node: PlanNode, in_shape, out_shape, arena: Arena):
    """Bind a (fused) Conv node with batch-adaptive GEMM strategies.

    - ``N == 1`` — the original single-stream path: one channel-major
      ``(C_out, Ckk) @ (Ckk, P)`` product writing NCHW directly.
    - ``N > 1``, large spatial — a per-sample loop of the same product
      (bitwise-identical per image to the single-stream path; the
      per-sample column matrix stays cache-resident, which beats both
      NumPy's broadcast batched matmul and the merged layout here).
    - ``N > 1``, spatial <= :data:`BATCH_MERGED_MAX_POSITIONS` — the
      batch-merged layout: one ``(C_out, Ckk) @ (Ckk, N*P)`` product
      over a merged column matrix, then one transpose pass back to
      NCHW.  This is where batched serving earns its throughput.

    Padding is written border-only (the interior is fully overwritten by
    the input copy), saving a full memset of the padded buffer per call.
    """
    c_in, h, w = in_shape
    c_out, oh, ow = out_shape
    kernel = int(node.attrs["kernel"])
    stride = int(node.attrs["stride"])
    padding = int(node.attrs["padding"])
    w_mat = np.ascontiguousarray(node.fp32_weight().reshape(c_out, -1))
    bias = node.weights.get("bias")
    bias_col = None if bias is None else np.ascontiguousarray(bias.reshape(c_out, 1, 1))
    relu = node.relu
    in_name = node.inputs[0]
    cols_rows = c_in * kernel * kernel
    spatial = oh * ow
    merged = spatial <= BATCH_MERGED_MAX_POSITIONS

    def pad_input(x: np.ndarray, n: int) -> np.ndarray:
        """Border-only zero fill + interior copy into an arena buffer."""
        xp = arena.acquire((n, c_in, h + 2 * padding, w + 2 * padding))
        xp[:, :, :padding, :] = 0.0
        xp[:, :, padding + h :, :] = 0.0
        xp[:, :, padding : padding + h, :padding] = 0.0
        xp[:, :, padding : padding + h, padding + w :] = 0.0
        xp[:, :, padding : padding + h, padding : padding + w] = x
        return xp

    def finish(out: np.ndarray) -> np.ndarray:
        if bias_col is not None:
            out += bias_col
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    def run_channel_major(x: np.ndarray, n: int) -> np.ndarray:
        xp = pad_input(x, n) if padding else x
        cols = arena.acquire((n, cols_rows, spatial))
        im2col(xp, kernel, stride, out=cols)
        if padding:
            arena.release(xp)
        out = arena.acquire((n, c_out, oh, ow))
        out_mat = out.reshape(n, c_out, spatial)
        if n == 1:
            np.matmul(w_mat, cols, out=out_mat)
        else:
            # Per-sample products: identical GEMM shape to the N == 1
            # path (bitwise-equal per image) and the per-sample column
            # matrix stays hot in cache across the loop.
            for i in range(n):
                np.matmul(w_mat, cols[i], out=out_mat[i])
        arena.release(cols)
        return finish(out)

    def run_batch_merged(x: np.ndarray, n: int) -> np.ndarray:
        xp = pad_input(x, n) if padding else x
        windows = sliding_window_view(xp, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
        cols = arena.acquire((cols_rows, n * spatial))
        # Merged layout: column j of the GEMM is (sample j // P, position
        # j % P) — batch folded into the GEMM's N dimension.
        np.copyto(
            cols.reshape(c_in, kernel, kernel, n, oh, ow),
            windows.transpose(1, 4, 5, 0, 2, 3),
        )
        if padding:
            arena.release(xp)
        om = arena.acquire((c_out, n, spatial))
        np.matmul(w_mat, cols.reshape(cols_rows, n * spatial), out=om.reshape(c_out, n * spatial))
        arena.release(cols)
        finish(om)  # bias (C_out, 1, 1) broadcasts over (C_out, N, P)
        out = arena.acquire((n, c_out, oh, ow))
        np.copyto(out.reshape(n, c_out, spatial), om.transpose(1, 0, 2))
        arena.release(om)
        return out

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        n = x.shape[0]
        if n > 1 and merged:
            return run_batch_merged(x, n)
        return run_channel_major(x, n)

    return run


def _bind_gemm(node: PlanNode, out_shape, arena: Arena):
    # (in, out) layout; cached on the node so plan replicas share one
    # transposed copy instead of materializing it per bind.
    weight_t = node.weights.get("weight_t")
    if weight_t is None:
        weight_t = np.ascontiguousarray(node.fp32_weight().T)
        node.weights["weight_t"] = weight_t
    bias = node.weights.get("bias")
    relu = node.relu
    in_name = node.inputs[0]
    out_features = out_shape[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], out_features))
        np.matmul(x, weight_t, out=out)
        if bias is not None:
            out += bias
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_batch_norm(node: PlanNode, arena: Arena, inplace: bool):
    scale = node.weights["scale"].reshape(-1, 1, 1)
    shift = node.weights["shift"].reshape(-1, 1, 1)
    relu = node.relu
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = x if inplace else arena.acquire(x.shape)
        np.multiply(x, scale, out=out)
        out += shift
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_relu(node: PlanNode, arena: Arena, inplace: bool):
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = x if inplace else arena.acquire(x.shape)
        np.maximum(x, 0.0, out=out)
        return out

    return run


def _bind_add(node: PlanNode, arena: Arena, inplace_name: str | None):
    a_name, b_name = node.inputs
    relu = node.relu

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        a, b = env[a_name], env[b_name]
        out = env[inplace_name] if inplace_name is not None else arena.acquire(a.shape)
        np.add(a, b, out=out)
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _bind_max_pool(node: PlanNode, out_shape, arena: Arena):
    kernel = int(node.attrs["kernel"])
    stride = int(node.attrs["stride"])
    average = bool(node.attrs.get("average"))
    c, oh, ow = out_shape
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        windows = sliding_window_view(x, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
        out = arena.acquire((x.shape[0], c, oh, ow))
        if average:
            np.mean(windows, axis=(-2, -1), dtype=np.float32, out=out)
        else:
            np.max(windows, axis=(-2, -1), out=out)
        return out

    return run


def _bind_global_avg_pool(node: PlanNode, out_shape, arena: Arena):
    in_name = node.inputs[0]
    channels = out_shape[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], channels))
        np.mean(x, axis=(2, 3), dtype=np.float32, out=out)
        return out

    return run


def _bind_flatten(node: PlanNode, out_shape, arena: Arena):
    in_name = node.inputs[0]
    flat = out_shape[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], flat))
        np.copyto(out, x.reshape(x.shape[0], flat))
        return out

    return run


# --------------------------------------------------------------------------
# integer kernel binding
# --------------------------------------------------------------------------


def _quantized_codes_matrix(node: PlanNode) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The node's weight codes in GEMM form, cached across plan replicas.

    Returns ``(codes_f32, scales, row_sums)``: the int8 codes flattened
    to ``(C_out, K)`` and pre-converted to float32 (the carrier dtype of
    the exact SGEMM trick — see :mod:`repro.deploy.qkernels`), the
    per-output-channel scales (float64), and the per-row code sums used
    by the zero-point fold.  No ``dequantized()`` call happens here: the
    f32 matrix holds integer *codes*, not reconstructed weights, so the
    lazy-weight invariant (zero dequantized fp32 copies on the quantized
    path) is preserved.
    """
    mat = node.weights.get("w_codes_f32")
    if mat is None:
        qw = node.qweight
        mat = np.ascontiguousarray(qw.data.reshape(qw.data.shape[0], -1).astype(np.float32))
        node.weights["w_codes_f32"] = mat
        node.weights["w_scales"] = qw.channel_scales()
        node.weights["w_row_sums"] = mat.sum(axis=1, dtype=np.float64)
    return mat, node.weights["w_scales"], node.weights["w_row_sums"]


def _make_int_epilogue(node: PlanNode, s_in: float, s_w: np.ndarray, arena: Arena):
    """Epilogue closure for integer Conv/Gemm accumulators.

    Maps the exact ``(C, M)`` float64 accumulator (zero-point already
    folded, bias not yet) to the kernel's output matrix ``om``:

    - quantized output (``qconfig["output"]`` set): int32 bias fold +
      gemmlowp fixed-point requantization to uint8 codes (fused ReLU is
      a clamp at the output zero point);
    - float32 epilogue (``output`` is None): per-channel dequant scale
      ``s_in * s_w[c]`` plus the fp32 bias and ReLU.

    The closure takes ownership of (and releases) ``acc``.  Returns
    ``(finish, out_dtype)``.
    """
    q_out = node.qconfig["output"]
    bias = node.weights.get("bias")
    relu = node.relu
    if q_out is not None:
        m0, shift = quantize_multipliers(s_in * s_w / q_out.scale)
        zp_out = int(q_out.zero_point)
        bias_q = None
        if bias is not None:
            bias_q = np.round(bias.astype(np.float64) / (s_in * s_w))[:, None]

        def finish(acc: np.ndarray) -> np.ndarray:
            if bias_q is not None:
                acc += bias_q
            acc_i64 = arena.acquire(acc.shape, np.int64)
            np.copyto(acc_i64, acc, casting="unsafe")
            arena.release(acc)
            om = arena.acquire(acc_i64.shape, np.uint8)
            requantize(acc_i64, m0, shift, zp_out, relu=relu, out=om, axis=0)
            arena.release(acc_i64)
            return om

        return finish, np.uint8

    scale_col = (s_in * s_w)[:, None]  # float64 (C, 1)
    bias_col = None if bias is None else np.ascontiguousarray(
        bias.astype(np.float32)[:, None]
    )

    def finish(acc: np.ndarray) -> np.ndarray:
        om = arena.acquire(acc.shape)
        np.multiply(acc, scale_col, out=om)
        arena.release(acc)
        if bias_col is not None:
            om += bias_col
        if relu:
            np.maximum(om, 0.0, out=om)
        return om

    return finish, np.float32


def _bind_qconv(node: PlanNode, in_shape, out_shape, arena: Arena, in_form: str):
    """Bind a (fused) Conv to the true-int8 QLinearConv-style kernel.

    The activation side runs in the quantized domain end to end: uint8
    codes in (quantized on the fly when the producer is fp32), a merged
    im2col over codes with the padding filled at the input *zero point*,
    the exact chunked integer GEMM of :mod:`repro.deploy.qkernels`, and
    either a requantized uint8 output (when every consumer reads codes)
    or a float32 epilogue.  BatchNorm is already folded into the integer
    weights by :func:`repro.deploy.passes.fold_batch_norm`; fused ReLU
    rides the epilogue.
    """
    c_in, h, w = in_shape
    c_out, oh, ow = out_shape
    kernel = int(node.attrs["kernel"])
    stride = int(node.attrs["stride"])
    padding = int(node.attrs["padding"])
    q_in = node.qconfig["input"]
    s_in, zp_in = float(q_in.scale), int(q_in.zero_point)
    w_mat, s_w, row_sums = _quantized_codes_matrix(node)
    finish, out_dtype = _make_int_epilogue(node, s_in, s_w, arena)
    zp_term = (zp_in * row_sums)[:, None]  # float64 (C_out, 1), exact
    in_name = node.inputs[0]
    cols_rows = c_in * kernel * kernel
    spatial = oh * ow

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        n = x.shape[0]
        if in_form == "u8":
            codes = x
        else:
            codes = arena.acquire((n, c_in, h, w), np.uint8)
            scratch = arena.acquire((n, c_in, h, w))
            quantize_into(x, s_in, zp_in, codes, scratch)
            arena.release(scratch)
        if padding:
            xp = arena.acquire((n, c_in, h + 2 * padding, w + 2 * padding), np.uint8)
            # Border-only fill at the input zero point (the integer
            # representation of 0.0), interior copied from the codes.
            xp[:, :, :padding, :] = zp_in
            xp[:, :, padding + h :, :] = zp_in
            xp[:, :, padding : padding + h, :padding] = zp_in
            xp[:, :, padding : padding + h, padding + w :] = zp_in
            xp[:, :, padding : padding + h, padding : padding + w] = codes
            if in_form != "u8":
                arena.release(codes)
        else:
            xp = codes
        # Merged im2col straight into integer-valued float32 (the cast
        # fuses into the gather copy; K-panels then slice with no copy).
        cols = arena.acquire((cols_rows, n * spatial))
        windows = sliding_window_view(xp, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
        np.copyto(
            cols.reshape(c_in, kernel, kernel, n, oh, ow),
            windows.transpose(1, 4, 5, 0, 2, 3),
        )
        if padding or in_form != "u8":
            arena.release(xp)
        m = n * spatial
        acc = arena.acquire((c_out, m), np.float64)
        part = arena.acquire((c_out, m))
        chunked_int_gemm(w_mat, cols, acc, part)
        arena.release(cols)
        arena.release(part)
        acc -= zp_term
        om = finish(acc)
        out = arena.acquire((n, c_out, oh, ow), out_dtype)
        np.copyto(out.reshape(n, c_out, spatial), om.reshape(c_out, n, spatial).transpose(1, 0, 2))
        arena.release(om)
        return out

    return run


def _bind_qgemm(node: PlanNode, in_shape, out_shape, arena: Arena, in_form: str):
    """Bind a Gemm to the int8 kernel (same recipe as :func:`_bind_qconv`)."""
    k_in = in_shape[0]
    out_features = out_shape[0]
    q_in = node.qconfig["input"]
    s_in, zp_in = float(q_in.scale), int(q_in.zero_point)
    w_mat, s_w, row_sums = _quantized_codes_matrix(node)
    finish, out_dtype = _make_int_epilogue(node, s_in, s_w, arena)
    zp_term = (zp_in * row_sums)[:, None]
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        n = x.shape[0]
        cols = arena.acquire((k_in, n))
        if in_form == "u8":
            np.copyto(cols, x.T)
        else:
            q = arena.acquire((n, k_in))
            np.divide(x, s_in, out=q)
            np.rint(q, out=q)
            q += zp_in
            np.clip(q, 0.0, 255.0, out=q)
            np.copyto(cols, q.T)
            arena.release(q)
        acc = arena.acquire((out_features, n), np.float64)
        part = arena.acquire((out_features, n))
        chunked_int_gemm(w_mat, cols, acc, part)
        arena.release(cols)
        arena.release(part)
        acc -= zp_term
        om = finish(acc)
        out = arena.acquire((n, out_features), out_dtype)
        np.copyto(out, om.T)
        arena.release(om)
        return out

    return run


def _bind_qadd(node: PlanNode, arena: Arena, inplace_name: str | None):
    """Bind a residual Add over uint8 inputs.

    With a quantized output the two operands are rescaled onto the
    output grid by independent fixed-point multipliers and summed in
    int64 (each term rounds once — a <= 1 ULP difference from the
    fp32 reference, inside the certification tolerance).  With a float32
    epilogue both operands dequantize and the add runs in fp32.
    """
    q_a, q_b = node.qconfig["input"], node.qconfig["input_b"]
    q_out = node.qconfig["output"]
    relu = node.relu
    a_name, b_name = node.inputs
    za, zb = int(q_a.zero_point), int(q_b.zero_point)

    if q_out is not None:
        m0a, sha = quantize_multiplier(q_a.scale / q_out.scale)
        m0b, shb = quantize_multiplier(q_b.scale / q_out.scale)
        ta, tb = 31 + sha, 31 + shb
        zo = int(q_out.zero_point)
        lo = zo if relu else 0

        def run(env: dict[str, np.ndarray]) -> np.ndarray:
            a, b = env[a_name], env[b_name]
            ra = (a.astype(np.int64) - za) * m0a
            ra += 1 << (ta - 1)
            ra >>= ta
            rb = (b.astype(np.int64) - zb) * m0b
            rb += 1 << (tb - 1)
            rb >>= tb
            ra += rb
            ra += zo
            np.clip(ra, lo, 255, out=ra)
            out = env[inplace_name] if inplace_name is not None else arena.acquire(
                a.shape, np.uint8
            )
            out[...] = ra
            return out

        return run

    sa, sb = float(q_a.scale), float(q_b.scale)

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        a, b = env[a_name], env[b_name]
        out = arena.acquire(a.shape)
        out[...] = a
        out -= za
        out *= sa
        tmp = arena.acquire(b.shape)
        tmp[...] = b
        tmp -= zb
        tmp *= sb
        out += tmp
        arena.release(tmp)
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    return run


def _dequant_epilogue(out: np.ndarray, scale: float, zero_point: int) -> np.ndarray:
    """In-place affine map from codes (already cast to f32) to values."""
    out -= zero_point
    out *= scale
    return out


def _bind_qmax_pool(node: PlanNode, out_shape, arena: Arena):
    """MaxPool over uint8 codes (max commutes with the affine map)."""
    kernel = int(node.attrs["kernel"])
    stride = int(node.attrs["stride"])
    c, oh, ow = out_shape
    q_in = node.qconfig["input"]
    q_out = node.qconfig["output"]
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        windows = sliding_window_view(x, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
        dtype = np.uint8 if q_out is not None else np.float32
        out = arena.acquire((x.shape[0], c, oh, ow), dtype)
        np.max(windows, axis=(-2, -1), out=out)
        if q_out is None:
            _dequant_epilogue(out, float(q_in.scale), int(q_in.zero_point))
        return out

    return run


def _bind_qrelu(node: PlanNode, arena: Arena, inplace: bool):
    """Standalone ReLU on codes: a clamp at the input zero point."""
    q_in = node.qconfig["input"]
    q_out = node.qconfig["output"]
    zp = int(q_in.zero_point)
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        if q_out is not None:
            out = x if inplace else arena.acquire(x.shape, np.uint8)
            np.maximum(x, zp, out=out)
            return out
        out = arena.acquire(x.shape)
        np.maximum(x, zp, out=out)
        return _dequant_epilogue(out, float(q_in.scale), zp)

    return run


def _bind_qflatten(node: PlanNode, out_shape, arena: Arena):
    """Flatten on codes: a reshape copy (plus dequant when leaving u8)."""
    flat = out_shape[0]
    q_in = node.qconfig["input"]
    q_out = node.qconfig["output"]
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        dtype = np.uint8 if q_out is not None else np.float32
        out = arena.acquire((x.shape[0], flat), dtype)
        np.copyto(out, x.reshape(x.shape[0], flat))
        if q_out is None:
            _dequant_epilogue(out, float(q_in.scale), int(q_in.zero_point))
        return out

    return run


def _bind_qgap(node: PlanNode, out_shape, arena: Arena):
    """GlobalAveragePool over codes, emitting float32.

    The code sum over a <= 24x24 tile is at most 576 * 255 < 2^24, so a
    float32 accumulation is exact; only the final divide rounds.
    """
    channels = out_shape[0]
    q_in = node.qconfig["input"]
    s, zp = float(q_in.scale), int(q_in.zero_point)
    in_name = node.inputs[0]

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        out = arena.acquire((x.shape[0], channels))
        np.mean(x, axis=(2, 3), dtype=np.float32, out=out)
        return _dequant_epilogue(out, s, zp)

    return run


#: Default integer variant per lead op type (when the quantization
#: planner marked the node integer and no explicit choice overrides it).
_INTEGER_VARIANTS = {
    "Conv": "conv.im2col.int8",
    "Gemm": "gemm.int8",
    "Add": "add.int8",
    "MaxPool": "maxpool.u8",
    "GlobalAveragePool": "gap.u8",
    "Flatten": "flatten.u8",
    "Relu": "relu.u8",
}


def _resolve_variants(
    nodes: list[PlanNode], variant_map: dict[str, str]
) -> dict[str, str]:
    """Final node -> kernel-variant assignment.

    Explicit choices (autotuner decisions, test overrides) are validated
    against :data:`~repro.latency.fusion.KERNEL_VARIANTS` and the node's
    geometry; everything else defaults to the integer variant when
    :func:`~repro.deploy.passes.plan_quantization` marked the node
    integer, and to the op's fp32 variant otherwise.
    """
    resolved: dict[str, str] = {}
    for node in nodes:
        allowed = KERNEL_VARIANTS.get(node.op_type, ())
        forced = variant_map.get(node.name)
        if forced is not None:
            if forced not in allowed:
                raise ValueError(
                    f"unknown variant {forced!r} for {node.op_type} node "
                    f"{node.name!r}; expected one of {allowed}"
                )
            if forced == WINOGRAD_VARIANT and not winograd_eligible(node.attrs):
                raise ValueError(
                    f"{node.name!r} is not Winograd-eligible (needs a stride-1 "
                    f"3x3 conv), got attrs {node.attrs}"
                )
            resolved[node.name] = forced
        elif node.qconfig:
            resolved[node.name] = _INTEGER_VARIANTS[node.op_type]
        else:
            resolved[node.name] = allowed[0] if allowed else f"{node.op_type.lower()}.f32"
    return resolved


def _bind_step(
    node: PlanNode,
    step: int,
    shapes: dict[str, tuple[int, ...]],
    release: list[list[str]],
    arena: Arena,
    forms: dict[str, str],
    variants: dict[str, str],
) -> PlanStep:
    """Resolve one fused node to a concrete closure + release schedule."""
    in_shape = shapes[node.inputs[0]]
    out_shape = shapes[node.output]
    kind = node.op_type
    variant = variants.get(node.name, "")
    in_form = forms.get(node.inputs[0], "f32")
    out_form = forms.get(node.output, "f32")
    drop: list[str] = []

    def claim_inplace() -> str | None:
        """Steal a dying, arena-owned input buffer for the output.

        Requires a matching carrier form: a uint8 code buffer must never
        be recycled in place as a float32 output (or vice versa) — the
        byte capacities differ and the view dtypes would lie.
        """
        for name in node.inputs:
            if (
                name != _INPUT
                and name in release[step]
                and shapes[name] == out_shape
                and forms.get(name, "f32") == out_form
            ):
                release[step].remove(name)
                drop.append(name)
                return name
        return None

    if kind == "Conv":
        if variant == "conv.im2col.int8":
            run = _bind_qconv(node, in_shape, out_shape, arena, in_form)
        elif variant == WINOGRAD_VARIANT:
            run = bind_winograd_conv(node, in_shape, out_shape, arena)
        else:
            run = _bind_conv(node, in_shape, out_shape, arena)
    elif kind == "Gemm":
        if variant == "gemm.int8":
            run = _bind_qgemm(node, in_shape, out_shape, arena, in_form)
        else:
            run = _bind_gemm(node, out_shape, arena)
    elif kind == "BatchNormalization":
        run = _bind_batch_norm(node, arena, inplace=claim_inplace() is not None)
    elif kind == "Relu":
        if variant == "relu.u8":
            run = _bind_qrelu(node, arena, inplace=claim_inplace() is not None)
        else:
            run = _bind_relu(node, arena, inplace=claim_inplace() is not None)
    elif kind == "Add":
        if variant == "add.int8":
            run = _bind_qadd(node, arena, inplace_name=claim_inplace())
        else:
            run = _bind_add(node, arena, inplace_name=claim_inplace())
    elif kind == "MaxPool":
        if variant == "maxpool.u8":
            run = _bind_qmax_pool(node, out_shape, arena)
        else:
            run = _bind_max_pool(node, out_shape, arena)
    elif kind == "GlobalAveragePool":
        if variant == "gap.u8":
            run = _bind_qgap(node, out_shape, arena)
        else:
            run = _bind_global_avg_pool(node, out_shape, arena)
    elif kind == "Flatten":
        if variant == "flatten.u8":
            run = _bind_qflatten(node, out_shape, arena)
        else:
            run = _bind_flatten(node, out_shape, arena)
    else:  # pragma: no cover - guarded by runtime op validation
        raise ValueError(f"cannot bind kernel for operator {kind!r}")

    return PlanStep(
        name=node.name,
        chain=node.chain,
        run=run,
        inputs=tuple(node.inputs),
        output=node.output,
        variant=variant,
        release=release[step],
        drop=drop,
    )


# --------------------------------------------------------------------------
# the plan
# --------------------------------------------------------------------------


class InferencePlan:
    """A compiled model: fused, pre-bound kernels over an arena.

    Built by :func:`compile_plan` (or
    :meth:`repro.deploy.runtime.OnnxliteRuntime.compile`); run with
    :meth:`run`.  The plan is specialized to the model's compile-time
    spatial input shape — only the batch dimension is dynamic.  The
    arena persists across calls, so steady-state inference performs no
    large allocations at all.
    """

    def __init__(
        self,
        name: str,
        input_shape: tuple[int, ...],
        steps: list[PlanStep],
        arena: Arena,
        shapes: dict[str, tuple[int, ...]],
        final_output: str,
        naive_tensor_shapes: list[tuple[int, ...]],
        blueprint: "_PlanBlueprint | None" = None,
        fingerprint: str = "",
    ) -> None:
        self.name = name
        self.input_shape = tuple(int(d) for d in input_shape)
        self.steps = steps
        self.arena = arena
        self.shapes = shapes
        self.final_output = final_output
        #: Stable identity of the compiled model (weights + topology);
        #: the serving plan cache keys on ``(fingerprint, batch bucket)``.
        self.fingerprint = fingerprint
        self._blueprint = blueprint
        self._naive_tensor_shapes = naive_tensor_shapes
        # Re-entrancy guard: one arena per plan means run() must never be
        # entered concurrently; the non-blocking lock turns such misuse
        # into ConcurrentPlanError instead of silent corruption.
        self._run_guard = threading.Lock()
        # Per-plan inference latency histogram (no-op while obs is
        # disabled; handle cached here so run() pays one flag check).
        self._latency = obs.histogram(
            "repro_inference_latency_seconds", plan=name, runtime="compiled"
        )

    # -- execution -------------------------------------------------------------

    def run(self, x: np.ndarray) -> np.ndarray:
        """Run inference on a batch of the compiled input shape.

        Not thread-safe: the plan owns one :class:`Arena`, so concurrent
        calls on the *same* plan raise :class:`ConcurrentPlanError`.
        For parallel serving, hand each worker its own
        :meth:`replicate` (weights stay shared; arenas are private).
        """
        started = time.perf_counter()
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4 or tuple(x.shape[1:]) != self.input_shape:
            raise ValueError(
                f"plan compiled for input (N, {', '.join(map(str, self.input_shape))}); "
                f"got shape {tuple(x.shape)} — use the interpreted runtime for "
                f"other spatial sizes"
            )
        if not self._run_guard.acquire(blocking=False):
            raise ConcurrentPlanError(
                f"InferencePlan {self.name!r} entered concurrently; plans are "
                f"single-threaded — use InferencePlan.replicate() (or "
                f"repro.serve.PlanServer) to run batches in parallel"
            )
        try:
            env: dict[str, np.ndarray] = {_INPUT: x}
            arena = self.arena
            for step in self.steps:
                env[step.output] = step.run(env)
                for name in step.release:
                    arena.release(env.pop(name))
                for name in step.drop:
                    env.pop(name)
            result = env.pop(self.final_output)
            out = result.copy()
            arena.release(result)
        finally:
            self._run_guard.release()
        self._latency.observe(time.perf_counter() - started)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of the logits)."""
        return self.run(x).argmax(axis=1)

    # -- replication ----------------------------------------------------------

    def replicate(self, poison: bool | None = None) -> "InferencePlan":
        """A new plan over the *same weights* with a private arena.

        Replicas are how concurrent serving scales out: the fused
        weight matrices are captured by reference when the blueprint
        re-binds its kernels (``ascontiguousarray`` on the already
        contiguous folded weights is a no-copy pass-through), so N
        replicas cost N arenas of activation scratch but only one copy
        of the model parameters.

        Parameters
        ----------
        poison:
            Debug NaN-poisoning for the replica's arena; defaults to the
            source plan's setting.
        """
        if self._blueprint is None:
            raise ValueError(
                "plan was constructed without a blueprint and cannot be "
                "replicated; build it via compile_plan()"
            )
        if poison is None:
            poison = self.arena.poison
        return self._blueprint.bind(poison=poison)

    # -- introspection --------------------------------------------------------------

    @property
    def blueprint(self) -> "_PlanBlueprint | None":
        """The bind-time blueprint (``None`` for hand-built plans).

        Exposed for the serving tier: :mod:`repro.serve.shm` publishes
        the blueprint's node weight table into shared memory and rebinds
        it in worker processes onto zero-copy views, so replicas in
        *other processes* cost arenas only — the same deal
        :meth:`replicate` gives threads.
        """
        return self._blueprint

    @property
    def num_kernels(self) -> int:
        """Number of compiled dispatches per forward pass."""
        return len(self.steps)

    def kernel_chains(self) -> list[tuple[str, ...]]:
        """The fused op-type chain of every step, in execution order."""
        return [step.chain for step in self.steps]

    def kernel_variants(self) -> dict[str, str]:
        """Step name -> bound kernel-variant name, in execution order.

        Every value is a member of
        :data:`repro.latency.fusion.KERNEL_VARIANTS` — the contract that
        keeps latency/energy prediction and execution joined.
        """
        return {step.name: step.variant for step in self.steps}

    def planned_peak_bytes(self, batch: int = 1) -> int:
        """Static peak of live intermediate bytes under the release plan."""
        live: dict[str, int] = {}
        peak = 0
        for step in self.steps:
            live[step.output] = 4 * batch * int(math.prod(self.shapes[step.output]))
            peak = max(peak, sum(live.values()))
            for name in (*step.release, *step.drop):
                live.pop(name, None)
        return peak

    def naive_env_bytes(self, batch: int = 1) -> int:
        """Bytes the interpreted runtime keeps live (every activation)."""
        return sum(4 * batch * int(math.prod(s)) for s in self._naive_tensor_shapes)

    def memory_stats(self) -> dict[str, int]:
        """Arena counters (measured over all runs so far)."""
        return {
            "peak_bytes": self.arena.peak_bytes,
            "current_bytes": self.arena.current_bytes,
            "pooled_bytes": self.arena.pooled_bytes,
            "allocations": self.arena.allocations,
            "reuses": self.arena.reuses,
        }

    def describe(self) -> str:
        """Human-readable step table (kernel chain, shapes, releases)."""
        lines = [f"InferencePlan {self.name!r}: {self.num_kernels} kernels, "
                 f"input (N, {', '.join(map(str, self.input_shape))})"]
        for step in self.steps:
            chain = "+".join(step.chain)
            out_shape = "x".join(map(str, self.shapes[step.output]))
            freed = f"  frees {sorted(step.release)}" if step.release else ""
            inplace = f"  in-place on {step.drop[0]!r}" if step.drop else ""
            lines.append(
                f"  {step.name:32s} {chain:34s} {step.variant:22s} -> "
                f"{out_shape}{freed}{inplace}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"InferencePlan(model={self.name!r}, kernels={self.num_kernels}, "
                f"input_shape={self.input_shape})")


@dataclass
class _PlanBlueprint:
    """Everything needed to (re)bind an :class:`InferencePlan`.

    :func:`compile_plan` runs the pass pipeline once and parks the
    result here; :meth:`bind` then stamps out executable plans — the
    original and any :meth:`InferencePlan.replicate` replicas — each
    with a private :class:`Arena` but sharing the fused weight arrays
    held by the :class:`~repro.deploy.passes.PlanNode` list.
    """

    name: str
    input_shape: tuple[int, ...]
    nodes: list[PlanNode]
    shapes: dict[str, tuple[int, ...]]
    #: Pristine liveness schedule; bind() hands each plan its own copy
    #: because ``claim_inplace`` mutates the per-step release lists.
    release: list[list[str]]
    final_output: str
    naive_tensor_shapes: list[tuple[int, ...]]
    fingerprint: str
    #: Per-tensor carrier form ("u8" | "f32") from plan_quantization.
    forms: dict[str, str] = field(default_factory=dict)
    #: Resolved node -> kernel-variant assignment; replicas re-bind the
    #: exact same variants, so autotune decisions survive replication.
    variants: dict[str, str] = field(default_factory=dict)

    def bind(self, poison: bool = False) -> InferencePlan:
        """Bind the kernels to a fresh arena and return a runnable plan."""
        arena = Arena(poison=poison)
        release = [list(names) for names in self.release]
        steps = [
            _bind_step(node, i, self.shapes, release, arena, self.forms, self.variants)
            for i, node in enumerate(self.nodes)
        ]
        return InferencePlan(
            name=self.name,
            input_shape=self.input_shape,
            steps=steps,
            arena=arena,
            shapes=self.shapes,
            final_output=self.final_output,
            naive_tensor_shapes=self.naive_tensor_shapes,
            blueprint=self,
            fingerprint=self.fingerprint,
        )


def compile_plan(
    proto: ModelProto,
    weights: dict[str, np.ndarray] | None = None,
    *,
    poison: bool = False,
    variants: "dict[str, str] | None" = None,
) -> InferencePlan:
    """Compile a model proto into an :class:`InferencePlan`.

    Parameters
    ----------
    proto:
        The deserialized model.  Quantized payloads stay as integer codes
        and are dequantized lazily, per consumer — only layers bound to
        an fp32 kernel variant materialize an fp32 weight copy.  A model
        carrying an activation-calibration table (see
        :func:`repro.quant.calibrate.calibrate_activations`) compiles
        its eligible layers onto the true-int8 kernel path by default.
    weights:
        Optional initializer table (name -> float32 array, or a
        :class:`~repro.deploy.weights.LazyWeightTable`);
        :class:`~repro.deploy.runtime.OnnxliteRuntime` passes its own so
        the two paths share one load step.
    poison:
        Debug mode: fill released arena buffers with NaN to surface any
        read-after-free in the release schedule (see :class:`Arena`).
    variants:
        Optional node-name -> kernel-variant overrides (names from
        :data:`repro.latency.fusion.KERNEL_VARIANTS`) — how autotune
        decisions and A/B comparisons pick non-default kernels, e.g.
        ``{"features.0": "conv.winograd2x2.f32"}``.  Unknown names,
        ineligible geometry, or an integer variant without the required
        quantization payloads raise ``ValueError``.
    """
    if not proto.operators:
        raise ValueError("model has no operators")
    if weights is None:
        weights = LazyWeightTable(proto)
    final_output = proto.operators[-1].outputs[0]
    nodes = build_plan_nodes(proto, weights)

    # Static naive footprint (pre-fusion): one live tensor per operator.
    naive_shapes = list(
        infer_shapes(toposort_nodes(nodes), proto.input_shape).values()
    )

    nodes = fuse_operators(nodes)
    nodes = toposort_nodes(nodes)
    shapes = infer_shapes(nodes, proto.input_shape)
    forms = plan_quantization(nodes, proto, variant_map=variants)
    resolved = _resolve_variants(nodes, dict(variants or {}))
    release, _ = compute_liveness(nodes, final_output=final_output)

    blueprint = _PlanBlueprint(
        name=proto.name,
        input_shape=proto.input_shape,
        nodes=nodes,
        shapes=shapes,
        release=release,
        final_output=final_output,
        naive_tensor_shapes=naive_shapes,
        fingerprint=proto.fingerprint(),
        forms=forms,
        variants=resolved,
    )
    return blueprint.bind(poison=poison)
