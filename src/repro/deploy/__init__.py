"""Inference runtime for exported onnxlite models.

The paper's deployment story ends at an ONNX file consumed by an edge
runtime (TFLite / OpenVINO).  This subpackage is that runtime's
stand-in: :class:`~repro.deploy.runtime.OnnxliteRuntime` loads a
serialized model and executes it with NumPy kernels that share **no code**
with :mod:`repro.nn` — so a train -> export -> deploy round trip
cross-validates both implementations (see ``tests/test_deploy.py``).
"""

from repro.deploy.runtime import OnnxliteRuntime, load_runtime

__all__ = ["OnnxliteRuntime", "load_runtime"]
