"""Inference runtime for exported onnxlite models.

The paper's deployment story ends at an ONNX file consumed by an edge
runtime (TFLite / OpenVINO).  This subpackage is that runtime's
stand-in, with two execution paths:

- :class:`~repro.deploy.runtime.OnnxliteRuntime` — the interpreted
  reference.  It loads a serialized model and executes it with NumPy
  kernels that share **no code** with :mod:`repro.nn`, so a train ->
  export -> deploy round trip cross-validates both implementations
  (see ``tests/test_deploy.py``).
- :class:`~repro.deploy.plan.InferencePlan` — the compiled fast path
  (``runtime.compile()``): Conv+BN+ReLU / Add+ReLU fusion per the rule
  table shared with :mod:`repro.latency.fusion`, pre-bound kernel
  closures, and static arena memory planning (see
  ``tests/test_deploy_plan.py`` and DEVELOPMENT.md).

Plans are single-threaded by design (one arena each); concurrent
serving replicates them (:meth:`InferencePlan.replicate` — weights
shared, arenas private) behind the micro-batching server in
:mod:`repro.serve`.  Misuse raises :class:`ConcurrentPlanError`.
"""

from repro.deploy.autotune import AutotuneResult, autotune_variants
from repro.deploy.plan import (
    Arena,
    BATCH_MERGED_MAX_POSITIONS,
    ConcurrentPlanError,
    InferencePlan,
    compile_plan,
)
from repro.deploy.runtime import OnnxliteRuntime, load_runtime
from repro.deploy.weights import LazyWeightTable, plan_weight_arrays, weight_residency

__all__ = [
    "Arena",
    "AutotuneResult",
    "BATCH_MERGED_MAX_POSITIONS",
    "ConcurrentPlanError",
    "InferencePlan",
    "LazyWeightTable",
    "OnnxliteRuntime",
    "autotune_variants",
    "compile_plan",
    "load_runtime",
    "plan_weight_arrays",
    "weight_residency",
]
