"""Compile-time passes over an onnxlite operator list.

The deploy compiler lowers a :class:`~repro.onnxlite.schema.ModelProto`
into a list of :class:`PlanNode` records through a fixed pass pipeline:

1. **Fusion** (:func:`fuse_operators`) — greedy follower absorption
   driven by :data:`repro.latency.fusion.FUSION_RULES`, the *same* rule
   table the latency predictors use, so every kernel nn-Meter-style
   prediction prices is exactly one compiled dispatch.  Absorbing a
   ``BatchNormalization`` constant-folds its affine map into the
   producing Conv's weights/bias (:func:`fold_batch_norm`); absorbing a
   ``Relu`` sets an in-kernel activation flag.
2. **Re-toposort** (:func:`toposort_nodes`) — a stable Kahn pass that
   re-validates dataflow after rewiring (and catches compiler bugs).
3. **Shape inference** (:func:`infer_shapes`) — static per-sample shapes
   for every tensor, from the proto's input shape and operator attrs.
4. **Liveness** (:func:`compute_liveness`) — last-use analysis producing
   the static release schedule the arena executes, so intermediate
   buffers are recycled the moment their final consumer has run.

All passes are pure functions over plain data; :mod:`repro.deploy.plan`
binds the result to concrete NumPy kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.latency.fusion import FUSION_RULES
from repro.onnxlite.schema import ModelProto, OperatorProto
from repro.tensor.conv_ops import conv_output_size, pool_output_size

__all__ = [
    "PlanNode",
    "build_plan_nodes",
    "fold_batch_norm",
    "fuse_operators",
    "toposort_nodes",
    "infer_shapes",
    "compute_liveness",
]

_BN_EPS = 1e-5


@dataclass
class PlanNode:
    """One compiled kernel-to-be: a lead operator plus folded followers."""

    name: str
    op_type: str
    inputs: list[str]
    output: str
    attrs: dict = field(default_factory=dict)
    #: Op-type chain of absorbed followers (e.g. ["BatchNormalization", "Relu"]).
    fused: list[str] = field(default_factory=list)
    #: Apply ReLU inside the kernel (a fused follower).
    relu: bool = False
    #: Folded weights, keyed by role ("weight", "bias", "scale", "shift").
    weights: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def chain(self) -> tuple[str, ...]:
        """The full fused op-type chain, lead first."""
        return (self.op_type, *self.fused)


def build_plan_nodes(proto: ModelProto, weights: dict[str, np.ndarray]) -> list[PlanNode]:
    """Lift the proto's operators into :class:`PlanNode` records.

    ``weights`` maps initializer names to dequantized float32 arrays;
    each node captures its own parameters so later folds mutate node-local
    copies, never the runtime's weight table.
    """
    nodes: list[PlanNode] = []
    for op in proto.operators:
        node = PlanNode(
            name=op.name,
            op_type=op.op_type,
            inputs=list(op.inputs),
            output=op.outputs[0],
            attrs=dict(op.attrs),
        )
        _attach_weights(node, op, weights)
        nodes.append(node)
    return nodes


def _attach_weights(node: PlanNode, op: OperatorProto, weights: dict[str, np.ndarray]) -> None:
    def get(suffix: str, required: bool = True) -> np.ndarray | None:
        key = f"{op.name}.{suffix}"
        if key not in weights:
            if required:
                raise KeyError(f"initializer {key!r} missing from the model")
            return None
        return weights[key]

    if node.op_type in ("Conv", "Gemm"):
        node.weights["weight"] = get("weight")
        bias = get("bias", required=False)
        if bias is not None:
            node.weights["bias"] = bias
    elif node.op_type == "BatchNormalization":
        gamma, beta = get("weight"), get("bias")
        mean, var = get("running_mean"), get("running_var")
        scale = (gamma / np.sqrt(var + _BN_EPS)).astype(np.float32)
        node.weights["scale"] = scale
        node.weights["shift"] = (beta - mean * scale).astype(np.float32)


def fold_batch_norm(conv: PlanNode, bn: PlanNode) -> None:
    """Constant-fold a BatchNormalization's affine map into its Conv.

    ``y = (W * x + b) * scale + shift`` becomes a single convolution with
    ``W' = W * scale`` (per output channel) and ``b' = b * scale + shift``
    — the standard inference-time BN fold every edge runtime performs.
    """
    scale, shift = bn.weights["scale"], bn.weights["shift"]
    weight = conv.weights["weight"]
    conv.weights["weight"] = (weight * scale[:, None, None, None]).astype(np.float32)
    bias = conv.weights.get("bias")
    folded_bias = shift if bias is None else bias * scale + shift
    conv.weights["bias"] = folded_bias.astype(np.float32)


def fuse_operators(nodes: list[PlanNode]) -> list[PlanNode]:
    """Absorb followers into leads per :data:`FUSION_RULES`.

    Mirrors :func:`repro.latency.fusion.fuse_graph` on the serialized
    operator list: a follower is absorbed only when it is the *sole*
    consumer chained off the lead's output and itself single-input, so
    fan-out tensors (residual skips) stay materialized.  BatchNorm
    absorption triggers the weight fold; Relu absorption sets the
    kernel's activation flag.
    """
    consumers: dict[str, list[PlanNode]] = {}
    for node in nodes:
        for name in node.inputs:
            consumers.setdefault(name, []).append(node)

    absorbed: set[int] = set()
    fused: list[PlanNode] = []
    for lead in nodes:
        if id(lead) in absorbed:
            continue
        remaining = list(FUSION_RULES.get(lead.op_type, ()))
        while remaining:
            follower = _chain_follower(consumers, lead.output, remaining[0])
            if follower is None:
                remaining.pop(0)  # optional stage absent; try the next type
                continue
            if follower.op_type == "BatchNormalization":
                fold_batch_norm(lead, follower)
            elif follower.op_type == "Relu":
                lead.relu = True
            lead.fused.append(follower.op_type)
            lead.output = follower.output
            absorbed.add(id(follower))
            remaining.pop(0)
        fused.append(lead)
    return fused


def _chain_follower(
    consumers: dict[str, list[PlanNode]], tensor: str, op_type: str
) -> PlanNode | None:
    cands = consumers.get(tensor, [])
    if len(cands) != 1:
        return None
    follower = cands[0]
    if follower.op_type != op_type or len(follower.inputs) != 1:
        return None
    return follower


def toposort_nodes(nodes: list[PlanNode], input_name: str = "input") -> list[PlanNode]:
    """Stable topological re-sort over tensor dataflow (Kahn's algorithm).

    The exporter already emits a valid order and fusion preserves it;
    this pass re-validates after rewiring and raises ``ValueError`` on a
    cycle or a read of a tensor nothing produces.
    """
    produced = {input_name}
    pending = list(nodes)
    ordered: list[PlanNode] = []
    known = produced | {n.output for n in pending}
    for node in pending:
        for name in node.inputs:
            if name not in known:
                raise ValueError(f"kernel {node.name!r} reads unknown tensor {name!r}")
    while pending:
        ready = [n for n in pending if all(i in produced for i in n.inputs)]
        if not ready:
            stuck = ", ".join(n.name for n in pending)
            raise ValueError(f"operator list is not schedulable (cycle?): {stuck}")
        for node in ready:
            ordered.append(node)
            produced.add(node.output)
        pending = [n for n in pending if id(n) not in {id(r) for r in ready}]
    return ordered


def infer_shapes(
    nodes: list[PlanNode], input_shape: tuple[int, ...], input_name: str = "input"
) -> dict[str, tuple[int, ...]]:
    """Static per-sample (batch-free) shapes for every tensor in the plan."""
    shapes: dict[str, tuple[int, ...]] = {input_name: tuple(int(d) for d in input_shape)}
    for node in nodes:
        in_shape = shapes[node.inputs[0]]
        kind = node.op_type
        if kind == "Conv":
            c, h, w = in_shape
            k = int(node.attrs["kernel"])
            s = int(node.attrs["stride"])
            p = int(node.attrs["padding"])
            out = (
                int(node.weights["weight"].shape[0]),
                conv_output_size(h, k, s, p),
                conv_output_size(w, k, s, p),
            )
        elif kind == "MaxPool":
            c, h, w = in_shape
            k = int(node.attrs["kernel"])
            s = int(node.attrs["stride"])
            out = (c, pool_output_size(h, k, s), pool_output_size(w, k, s))
        elif kind == "GlobalAveragePool":
            out = (in_shape[0],)
        elif kind == "Flatten":
            out = (int(np.prod(in_shape)),)
        elif kind == "Gemm":
            out = (int(node.weights["weight"].shape[0]),)
        elif kind in ("Relu", "BatchNormalization", "Add"):
            out = in_shape
        else:  # pragma: no cover - guarded by runtime op validation
            raise ValueError(f"cannot infer shape for operator {kind!r}")
        shapes[node.output] = out
    return shapes


def compute_liveness(
    nodes: list[PlanNode], input_name: str = "input", final_output: str | None = None
) -> tuple[list[list[str]], dict[str, int]]:
    """Static release schedule: which tensors die after each step.

    Returns ``(release, last_use)`` where ``release[i]`` lists the tensor
    names whose final consumer is step ``i`` (excluding the caller-owned
    input and the plan's final output, which outlives the run).
    """
    if not nodes:
        return [], {}
    last_use: dict[str, int] = {}
    for step, node in enumerate(nodes):
        for name in node.inputs:
            last_use[name] = step
    if final_output is None:
        final_output = nodes[-1].output
    release: list[list[str]] = [[] for _ in nodes]
    for name, step in last_use.items():
        if name == input_name or name == final_output:
            continue
        release[step].append(name)
    return release, last_use
