"""Compile-time passes over an onnxlite operator list.

The deploy compiler lowers a :class:`~repro.onnxlite.schema.ModelProto`
into a list of :class:`PlanNode` records through a fixed pass pipeline:

1. **Fusion** (:func:`fuse_operators`) — greedy follower absorption
   driven by :data:`repro.latency.fusion.FUSION_RULES`, the *same* rule
   table the latency predictors use, so every kernel nn-Meter-style
   prediction prices is exactly one compiled dispatch.  Absorbing a
   ``BatchNormalization`` constant-folds its affine map into the
   producing Conv's weights/bias (:func:`fold_batch_norm`); absorbing a
   ``Relu`` sets an in-kernel activation flag.
2. **Re-toposort** (:func:`toposort_nodes`) — a stable Kahn pass that
   re-validates dataflow after rewiring (and catches compiler bugs).
3. **Shape inference** (:func:`infer_shapes`) — static per-sample shapes
   for every tensor, from the proto's input shape and operator attrs.
4. **Liveness** (:func:`compute_liveness`) — last-use analysis producing
   the static release schedule the arena executes, so intermediate
   buffers are recycled the moment their final consumer has run.

All passes are pure functions over plain data; :mod:`repro.deploy.plan`
binds the result to concrete NumPy kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.latency.fusion import FUSION_RULES
from repro.onnxlite.schema import ModelProto, OperatorProto, TensorProto
from repro.quant.calibrate import calibration_quantizers
from repro.tensor.conv_ops import conv_output_size, pool_output_size

__all__ = [
    "PlanNode",
    "build_plan_nodes",
    "fold_batch_norm",
    "fuse_operators",
    "toposort_nodes",
    "infer_shapes",
    "compute_liveness",
    "plan_quantization",
]

_BN_EPS = 1e-5


@dataclass
class PlanNode:
    """One compiled kernel-to-be: a lead operator plus folded followers."""

    name: str
    op_type: str
    inputs: list[str]
    output: str
    attrs: dict = field(default_factory=dict)
    #: Op-type chain of absorbed followers (e.g. ["BatchNormalization", "Relu"]).
    fused: list[str] = field(default_factory=list)
    #: Apply ReLU inside the kernel (a fused follower).
    relu: bool = False
    #: Folded weights, keyed by role ("weight", "bias", "scale", "shift").
    weights: dict[str, np.ndarray] = field(default_factory=dict)
    #: Raw quantized weight record (integer codes + per-channel scales)
    #: when the source initializer was quantized and loaded lazily; the
    #: fp32 form is materialized only if an fp32 kernel variant binds
    #: this node (see :meth:`fp32_weight`).
    qweight: TensorProto | None = None
    #: Quantization execution config, set by :func:`plan_quantization`:
    #: keys "input" / "output" hold the activation quantizers when this
    #: node runs an integer kernel (absent otherwise).
    qconfig: dict = field(default_factory=dict)

    @property
    def chain(self) -> tuple[str, ...]:
        """The full fused op-type chain, lead first."""
        return (self.op_type, *self.fused)

    @property
    def weight_shape(self) -> tuple[int, ...]:
        """Shape of the (possibly still-quantized) weight tensor."""
        if "weight" in self.weights:
            return self.weights["weight"].shape
        if self.qweight is not None:
            return self.qweight.data.shape
        raise KeyError(f"node {self.name!r} has no weight")

    def fp32_weight(self) -> np.ndarray:
        """The weight as float32, materialized (and memoized) on demand."""
        weight = self.weights.get("weight")
        if weight is None:
            if self.qweight is None:
                raise KeyError(f"node {self.name!r} has no weight")
            weight = self.qweight.dequantized()
            self.weights["weight"] = weight
        return weight


def build_plan_nodes(proto: ModelProto, weights: Mapping[str, np.ndarray]) -> list[PlanNode]:
    """Lift the proto's operators into :class:`PlanNode` records.

    ``weights`` maps initializer names to dequantized float32 arrays;
    each node captures its own parameters so later folds mutate node-local
    copies, never the runtime's weight table.  When ``weights`` is a
    :class:`~repro.deploy.weights.LazyWeightTable`, quantized Conv/Gemm
    weights stay as raw integer records on ``node.qweight`` and are only
    dequantized if an fp32 kernel variant ends up binding the node.
    """
    nodes: list[PlanNode] = []
    for op in proto.operators:
        node = PlanNode(
            name=op.name,
            op_type=op.op_type,
            inputs=list(op.inputs),
            output=op.outputs[0],
            attrs=dict(op.attrs),
        )
        _attach_weights(node, op, weights)
        nodes.append(node)
    return nodes


def _attach_weights(node: PlanNode, op: OperatorProto, weights: Mapping[str, np.ndarray]) -> None:
    def get(suffix: str, required: bool = True) -> np.ndarray | None:
        key = f"{op.name}.{suffix}"
        if key not in weights:
            if required:
                raise KeyError(f"initializer {key!r} missing from the model")
            return None
        return weights[key]

    def raw(suffix: str) -> TensorProto | None:
        """The raw initializer record, if ``weights`` exposes them."""
        tensor = getattr(weights, "tensor", None)
        if tensor is None:
            return None
        key = f"{op.name}.{suffix}"
        return tensor(key) if key in weights else None

    if node.op_type in ("Conv", "Gemm"):
        record = raw("weight")
        if record is not None and record.quantized and record.zero_point == 0:
            # Keep the integer codes; fp32 materializes per-consumer.
            node.qweight = record
        else:
            node.weights["weight"] = get("weight")
        bias = get("bias", required=False)
        if bias is not None:
            node.weights["bias"] = bias
    elif node.op_type == "BatchNormalization":
        gamma, beta = get("weight"), get("bias")
        mean, var = get("running_mean"), get("running_var")
        scale = (gamma / np.sqrt(var + _BN_EPS)).astype(np.float32)
        node.weights["scale"] = scale
        node.weights["shift"] = (beta - mean * scale).astype(np.float32)


def fold_batch_norm(conv: PlanNode, bn: PlanNode) -> None:
    """Constant-fold a BatchNormalization's affine map into its Conv.

    ``y = (W * x + b) * scale + shift`` becomes a single convolution with
    ``W' = W * scale`` (per output channel) and ``b' = b * scale + shift``
    — the standard inference-time BN fold every edge runtime performs.

    For a quantized conv the fold stays in the integer domain: the
    per-channel weight scales absorb ``|scale|`` and channels with a
    negative BN scale flip their code signs, so the int8 payload never
    round-trips through fp32 (see :func:`_fold_bn_into_qweight`).
    """
    scale, shift = bn.weights["scale"], bn.weights["shift"]
    if conv.qweight is not None:
        conv.qweight = _fold_bn_into_qweight(conv.qweight, scale)
        conv.weights.pop("weight", None)  # any fp32 copy is now stale
    else:
        weight = conv.weights["weight"]
        conv.weights["weight"] = (weight * scale[:, None, None, None]).astype(np.float32)
    bias = conv.weights.get("bias")
    folded_bias = shift if bias is None else bias * scale + shift
    conv.weights["bias"] = folded_bias.astype(np.float32)


def _fold_bn_into_qweight(qweight: TensorProto, bn_scale: np.ndarray) -> TensorProto:
    """BN fold on an int8 weight without leaving the integer domain.

    ``W' = W * s_bn`` per output channel becomes ``scales' = scales *
    |s_bn|`` with code signs flipped where ``s_bn < 0``.  The flip maps
    -128 outside int8, so it clamps to 127 — a <= 1 LSB perturbation on
    the single most-negative code, far inside the quantization error
    already present.  A zero BN scale keeps the codes and floors the
    scale at 1e-12 (the channel's output is numerically zero either way).
    """
    codes = qweight.data
    scales = qweight.channel_scales() * np.maximum(np.abs(bn_scale).astype(np.float64), 1e-12)
    flip = bn_scale < 0
    if flip.any():
        info = np.iinfo(codes.dtype)
        widened = codes.astype(np.int32)
        widened[flip] = -widened[flip]
        codes = np.clip(widened, info.min, info.max).astype(codes.dtype)
    return TensorProto(qweight.name, codes, scale=scales, zero_point=0)


def fuse_operators(nodes: list[PlanNode]) -> list[PlanNode]:
    """Absorb followers into leads per :data:`FUSION_RULES`.

    Mirrors :func:`repro.latency.fusion.fuse_graph` on the serialized
    operator list: a follower is absorbed only when it is the *sole*
    consumer chained off the lead's output and itself single-input, so
    fan-out tensors (residual skips) stay materialized.  BatchNorm
    absorption triggers the weight fold; Relu absorption sets the
    kernel's activation flag.
    """
    consumers: dict[str, list[PlanNode]] = {}
    for node in nodes:
        for name in node.inputs:
            consumers.setdefault(name, []).append(node)

    absorbed: set[int] = set()
    fused: list[PlanNode] = []
    for lead in nodes:
        if id(lead) in absorbed:
            continue
        remaining = list(FUSION_RULES.get(lead.op_type, ()))
        while remaining:
            follower = _chain_follower(consumers, lead.output, remaining[0])
            if follower is None:
                remaining.pop(0)  # optional stage absent; try the next type
                continue
            if follower.op_type == "BatchNormalization":
                fold_batch_norm(lead, follower)
            elif follower.op_type == "Relu":
                lead.relu = True
            lead.fused.append(follower.op_type)
            lead.output = follower.output
            absorbed.add(id(follower))
            remaining.pop(0)
        fused.append(lead)
    return fused


def _chain_follower(
    consumers: dict[str, list[PlanNode]], tensor: str, op_type: str
) -> PlanNode | None:
    cands = consumers.get(tensor, [])
    if len(cands) != 1:
        return None
    follower = cands[0]
    if follower.op_type != op_type or len(follower.inputs) != 1:
        return None
    return follower


def toposort_nodes(nodes: list[PlanNode], input_name: str = "input") -> list[PlanNode]:
    """Stable topological re-sort over tensor dataflow (Kahn's algorithm).

    The exporter already emits a valid order and fusion preserves it;
    this pass re-validates after rewiring and raises ``ValueError`` on a
    cycle or a read of a tensor nothing produces.
    """
    produced = {input_name}
    pending = list(nodes)
    ordered: list[PlanNode] = []
    known = produced | {n.output for n in pending}
    for node in pending:
        for name in node.inputs:
            if name not in known:
                raise ValueError(f"kernel {node.name!r} reads unknown tensor {name!r}")
    while pending:
        ready = [n for n in pending if all(i in produced for i in n.inputs)]
        if not ready:
            stuck = ", ".join(n.name for n in pending)
            raise ValueError(f"operator list is not schedulable (cycle?): {stuck}")
        for node in ready:
            ordered.append(node)
            produced.add(node.output)
        pending = [n for n in pending if id(n) not in {id(r) for r in ready}]
    return ordered


def infer_shapes(
    nodes: list[PlanNode], input_shape: tuple[int, ...], input_name: str = "input"
) -> dict[str, tuple[int, ...]]:
    """Static per-sample (batch-free) shapes for every tensor in the plan."""
    shapes: dict[str, tuple[int, ...]] = {input_name: tuple(int(d) for d in input_shape)}
    for node in nodes:
        in_shape = shapes[node.inputs[0]]
        kind = node.op_type
        if kind == "Conv":
            c, h, w = in_shape
            k = int(node.attrs["kernel"])
            s = int(node.attrs["stride"])
            p = int(node.attrs["padding"])
            out = (
                int(node.weight_shape[0]),
                conv_output_size(h, k, s, p),
                conv_output_size(w, k, s, p),
            )
        elif kind == "MaxPool":
            c, h, w = in_shape
            k = int(node.attrs["kernel"])
            s = int(node.attrs["stride"])
            out = (c, pool_output_size(h, k, s), pool_output_size(w, k, s))
        elif kind == "GlobalAveragePool":
            out = (in_shape[0],)
        elif kind == "Flatten":
            out = (int(np.prod(in_shape)),)
        elif kind == "Gemm":
            out = (int(node.weight_shape[0]),)
        elif kind in ("Relu", "BatchNormalization", "Add"):
            out = in_shape
        else:  # pragma: no cover - guarded by runtime op validation
            raise ValueError(f"cannot infer shape for operator {kind!r}")
        shapes[node.output] = out
    return shapes


#: Ops that pass uint8 activation codes straight through (same quantizer
#: on input and output) when their input is carried in the integer domain.
_PASSTHROUGH_OPS = ("MaxPool", "Flatten", "Relu")


def plan_quantization(
    nodes: list[PlanNode],
    proto: ModelProto,
    variant_map: Mapping[str, str] | None = None,
    input_name: str = "input",
) -> dict[str, str]:
    """Assign integer execution configs and per-tensor carrier forms.

    Consumes the activation-calibration table embedded by
    :func:`repro.quant.calibrate.calibrate_activations` and decides, per
    node, whether it runs an integer kernel, and per tensor, whether it
    is carried as uint8 codes (``"u8"``) or float32 values (``"f32"``)
    between kernels.  The rules:

    - **Conv/Gemm** run int8 when they kept integer weight codes
      (``node.qweight``) and their input tensor is calibrated.  They
      accept either carrier form (f32 inputs are quantized on the fly)
      and emit u8 codes when *every* consumer reads codes; otherwise
      the accumulators take a float32 epilogue instead.
    - **MaxPool/Flatten/Relu** pass codes through untouched when their
      input arrives as u8; the output inherits the input's quantizer
      (max and reshape commute with a monotone affine map).
    - **Add** runs integer when both inputs arrive as u8, requantizing
      to its own calibrated output grid (or a float32 epilogue).
    - **GlobalAveragePool** accumulates codes but always emits float32.
    - The plan's **final output** is always float32, whatever produced it.

    ``variant_map`` (node name -> kernel variant, e.g. an autotuner
    decision) can force an eligible node onto its ``.f32`` variant;
    forcing an ``.int8``/``.u8`` variant onto an ineligible node raises.
    Mutates ``node.qconfig`` in place (keys ``input`` / ``input_b`` /
    ``output``; ``output=None`` marks the float32 epilogue) and returns
    the tensor-form map used by buffer allocation and in-place reuse.
    """
    variant_map = dict(variant_map or {})
    base_act = calibration_quantizers(proto)
    for node in nodes:
        node.qconfig = {}
    final = nodes[-1].output if nodes else None
    tensors = {input_name} | {n.output for n in nodes}
    forms = {name: "f32" for name in tensors}

    consumers: dict[str, list[PlanNode]] = {}
    for node in nodes:
        for name in node.inputs:
            consumers.setdefault(name, []).append(node)

    def forced_f32(node: PlanNode) -> bool:
        variant = variant_map.get(node.name)
        return variant is not None and variant.endswith(".f32")

    integer: dict[str, bool] = {}
    for node in nodes:
        if not base_act or forced_f32(node):
            integer[node.name] = False
        elif node.op_type in ("Conv", "Gemm"):
            integer[node.name] = (
                node.qweight is not None
                and node.qweight.dtype == "int8"
                and node.inputs[0] in base_act
                and base_act[node.inputs[0]].dtype == "uint8"
            )
        elif node.op_type == "MaxPool" and node.attrs.get("average"):
            # Average pooling does not commute with the integer grid
            # (the mean of codes is not a code); stays fp32.
            integer[node.name] = False
        elif node.op_type in (*_PASSTHROUGH_OPS, "GlobalAveragePool", "Add"):
            # Provisional; the fixpoint below demotes nodes whose inputs
            # cannot actually be carried as codes.
            integer[node.name] = all(
                name in base_act and base_act[name].dtype == "uint8"
                for name in node.inputs
            )
        else:  # standalone BatchNormalization has no integer kernel
            integer[node.name] = False

    # Fixpoint: compute carrier forms forward (nodes are topo-sorted),
    # then demote integer nodes whose code-only inputs turned out to be
    # f32.  Demotion is monotone, so this terminates within len(nodes)
    # rounds; in practice one or two.
    act = dict(base_act)
    while True:
        act = dict(base_act)
        new_forms = {name: "f32" for name in tensors}
        for node in nodes:
            if not integer[node.name]:
                continue
            out = node.output
            if node.op_type in ("Conv", "Gemm", "Add"):
                emits_u8 = out in act and act[out].dtype == "uint8"
            elif node.op_type in _PASSTHROUGH_OPS:
                emits_u8 = new_forms[node.inputs[0]] == "u8"
                if emits_u8:
                    # Codes pass through untouched, so the output *is*
                    # the input's grid, whatever calibration observed.
                    act[out] = act[node.inputs[0]]
            else:  # GlobalAveragePool: integer accumulation, f32 output
                emits_u8 = False
            readers = consumers.get(out, [])
            if emits_u8 and out != final and readers and all(integer[r.name] for r in readers):
                new_forms[out] = "u8"
        demoted = False
        for node in nodes:
            if not integer[node.name]:
                continue
            if node.op_type in (*_PASSTHROUGH_OPS, "GlobalAveragePool", "Add"):
                if any(new_forms[name] != "u8" for name in node.inputs):
                    integer[node.name] = False
                    demoted = True
        if not demoted:
            forms = new_forms
            break

    # Validate explicit integer requests now that eligibility is final.
    for node in nodes:
        variant = variant_map.get(node.name)
        if variant and (variant.endswith(".int8") or variant.endswith(".u8")):
            if not integer[node.name]:
                raise ValueError(
                    f"variant {variant!r} requested for {node.name!r}, but the node "
                    "is not integer-eligible (missing int8 weights, calibration, "
                    "or a u8-carried input)"
                )

    for node in nodes:
        if not integer[node.name]:
            continue
        config: dict = {"input": act[node.inputs[0]]}
        if node.op_type == "Add":
            config["input_b"] = act[node.inputs[1]]
        config["output"] = act[node.output] if forms[node.output] == "u8" else None
        node.qconfig = config
    return forms


def compute_liveness(
    nodes: list[PlanNode], input_name: str = "input", final_output: str | None = None
) -> tuple[list[list[str]], dict[str, int]]:
    """Static release schedule: which tensors die after each step.

    Returns ``(release, last_use)`` where ``release[i]`` lists the tensor
    names whose final consumer is step ``i`` (excluding the caller-owned
    input and the plan's final output, which outlives the run).
    """
    if not nodes:
        return [], {}
    last_use: dict[str, int] = {}
    for step, node in enumerate(nodes):
        for name in node.inputs:
            last_use[name] = step
    if final_output is None:
        final_output = nodes[-1].output
    release: list[list[str]] = [[] for _ in nodes]
    for name, step in last_use.items():
        if name == input_name or name == final_output:
            continue
        release[step].append(name)
    return release, last_use
