"""Winograd F(2x2, 3x3) convolution kernel for the compiled plan.

The minimal-filtering algorithm of Lavin & Gray: each 2x2 output tile is
computed from a 4x4 input tile with 16 multiplies instead of the 36 an
im2col GEMM spends — a 2.25x reduction in multiply count for stride-1
3x3 convolutions, the dominant layer type of the VGG-style search space.

    Y = A^T [ (G g G^T) . (B^T d B) ] A

with the F(2x2, 3x3) transform matrices

    B^T = [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]]
    G   = [[1, 0, 0], [1/2, 1/2, 1/2], [1/2, -1/2, 1/2], [0, 0, 1]]
    A^T = [[1, 1, 1, 0], [0, 1, -1, -1]]

The data path mirrors the batch-merged im2col kernel: tiles from all
samples merge into one GEMM N dimension, the 16 tile components become a
stacked ``(16, C_out, C_in) @ (16, C_in, nT)`` batched matmul, and the
input/inverse transforms are hardcoded add/subtract passes (B and A are
0/±1 matrices; only G carries halves, and those land in the *weight*
transform, precomputed once at bind time in float64).

All workspaces come from the plan's :class:`~repro.deploy.plan.Arena`.
Odd output extents round the tile grid up; the kernel computes into a
full-tile buffer and crops the bottom/right overhang.  Numerically the
result differs from im2col only by float reassociation — certified
against it at tight ``atol`` in ``tests/test_winograd.py``.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["WINOGRAD_VARIANT", "winograd_eligible", "transform_weight", "bind_winograd_conv"]

#: Variant name this module implements (must appear in
#: :data:`repro.latency.fusion.KERNEL_VARIANTS`).
WINOGRAD_VARIANT = "conv.winograd2x2.f32"

_G = np.array(
    [[1.0, 0.0, 0.0], [0.5, 0.5, 0.5], [0.5, -0.5, 0.5], [0.0, 0.0, 1.0]],
    dtype=np.float64,
)


def winograd_eligible(attrs: dict) -> bool:
    """Whether a Conv's geometry admits the F(2x2, 3x3) kernel."""
    return int(attrs.get("kernel", 0)) == 3 and int(attrs.get("stride", 0)) == 1


def transform_weight(weight: np.ndarray) -> np.ndarray:
    """Precompute ``U = G g G^T`` for every filter.

    ``weight`` is the (folded) fp32 ``(C_out, C_in, 3, 3)`` tensor;
    returns ``(16, C_out, C_in)`` float32, the stacked per-component
    GEMM weights.  Computed in float64 so the 1/2 and 1/4 terms do not
    add f32 rounding on top of the unavoidable transform arithmetic.
    """
    u = np.einsum("ij,oajk,lk->iloa", _G, weight.astype(np.float64), _G)
    return np.ascontiguousarray(u.reshape(16, *weight.shape[:2]).astype(np.float32))


def bind_winograd_conv(node, in_shape, out_shape, arena):
    """Bind a stride-1 3x3 (fused) Conv to the Winograd kernel.

    Same closure contract as the im2col binder: reads ``env``, draws
    every workspace from ``arena``, returns the NCHW output buffer.
    """
    if not winograd_eligible(node.attrs):
        raise ValueError(f"node {node.name!r} is not Winograd-eligible: {node.attrs}")
    c_in, h, w = in_shape
    c_out, oh, ow = out_shape
    padding = int(node.attrs["padding"])
    # Transformed weights are cached on the node, so plan replicas share
    # one copy (exactly like the im2col path's folded weight matrix).
    u = node.weights.get("winograd_u")
    if u is None:
        u = transform_weight(node.fp32_weight())
        node.weights["winograd_u"] = u
    bias = node.weights.get("bias")
    bias_col = None if bias is None else np.ascontiguousarray(bias.reshape(c_out, 1))
    relu = node.relu
    in_name = node.inputs[0]
    oht, owt = -(-oh // 2), -(-ow // 2)  # tile grid, rounded up
    hp, wp = 2 * oht + 2, 2 * owt + 2  # padded extent the tiles read
    exact = (2 * oht == oh) and (2 * owt == ow)

    def run(env: dict[str, np.ndarray]) -> np.ndarray:
        x = env[in_name]
        n = x.shape[0]
        nt = n * oht * owt  # total tiles, merged across the batch

        # Pad (conv padding + the bottom/right tile overhang), border-only.
        xp = arena.acquire((n, c_in, hp, wp))
        xp[:, :, :padding, :] = 0.0
        xp[:, :, padding + h :, :] = 0.0
        xp[:, :, padding : padding + h, :padding] = 0.0
        xp[:, :, padding : padding + h, padding + w :] = 0.0
        xp[:, :, padding : padding + h, padding : padding + w] = x

        # Gather 4x4 tiles at stride 2 into (4, 4, C_in, nT).
        tiles = arena.acquire((4, 4, c_in, nt))
        windows = sliding_window_view(xp, (4, 4), axis=(2, 3))[:, :, ::2, ::2]
        np.copyto(
            tiles.reshape(4, 4, c_in, n, oht, owt),
            windows.transpose(4, 5, 1, 0, 2, 3),
        )
        arena.release(xp)

        # Input transform V = B^T d B, hardcoded (B is 0/±1).
        tmp = arena.acquire((4, 4, c_in, nt))
        np.subtract(tiles[0], tiles[2], out=tmp[0])
        np.add(tiles[1], tiles[2], out=tmp[1])
        np.subtract(tiles[2], tiles[1], out=tmp[2])
        np.subtract(tiles[1], tiles[3], out=tmp[3])
        v = tiles  # second pass writes back into the tile buffer
        np.subtract(tmp[:, 0], tmp[:, 2], out=v[:, 0])
        np.add(tmp[:, 1], tmp[:, 2], out=v[:, 1])
        np.subtract(tmp[:, 2], tmp[:, 1], out=v[:, 2])
        np.subtract(tmp[:, 1], tmp[:, 3], out=v[:, 3])
        arena.release(tmp)

        # 16 stacked GEMMs: M[i] = U[i] @ V[i].
        m = arena.acquire((16, c_out, nt))
        np.matmul(u, v.reshape(16, c_in, nt), out=m)
        arena.release(v)

        # Inverse transform Y = A^T M A, hardcoded (A is 0/±1).
        m4 = m.reshape(4, 4, c_out, nt)
        z = arena.acquire((2, 4, c_out, nt))
        np.add(m4[0], m4[1], out=z[0])
        z[0] += m4[2]
        np.subtract(m4[1], m4[2], out=z[1])
        z[1] -= m4[3]
        y = arena.acquire((2, 2, c_out, nt))
        np.add(z[:, 0], z[:, 1], out=y[:, 0])
        y[:, 0] += z[:, 2]
        np.subtract(z[:, 1], z[:, 2], out=y[:, 1])
        y[:, 1] -= z[:, 3]
        arena.release(z)
        arena.release(m)

        if bias_col is not None:
            y += bias_col  # (C_out, 1) broadcasts over (2, 2, C_out, nT)
        if relu:
            np.maximum(y, 0.0, out=y)

        # Scatter tiles back to NCHW; crop the overhang for odd extents.
        full = arena.acquire((n, c_out, 2 * oht, 2 * owt))
        np.copyto(
            full.reshape(n, c_out, oht, 2, owt, 2),
            y.reshape(2, 2, c_out, n, oht, owt).transpose(3, 2, 4, 0, 5, 1),
        )
        arena.release(y)
        if exact:
            return full
        out = arena.acquire((n, c_out, oh, ow))
        np.copyto(out, full[:, :, :oh, :ow])
        arena.release(full)
        return out

    return run
