"""Execute onnxlite model graphs with standalone NumPy kernels.

The interpreted runtime walks the serialized operator list (already
topologically ordered by the exporter), keeping a tensor environment
keyed by operator output names.  Kernels are deliberately written
independently of :mod:`repro.tensor` — different im2col layout, different
batch-norm formulation — so agreement with the training stack is a
meaningful check rather than a tautology.

:meth:`OnnxliteRuntime.compile` produces an
:class:`~repro.deploy.plan.InferencePlan` — the fast path with BatchNorm
folded into Conv weights, ReLU fused in-kernel, pre-bound closures
instead of string dispatch, and arena-recycled intermediate buffers.
The interpreter below stays as the slow, independent reference both the
plan and :mod:`repro.nn` are validated against.

Supported operators: Conv, BatchNormalization, Relu, MaxPool,
GlobalAveragePool, Flatten, Gemm, Add (the full vocabulary the exporter
emits for the paper's model family).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

import repro.obs as obs
from repro.deploy.weights import LazyWeightTable
from repro.onnxlite.reader import load_model, proto_from_bytes
from repro.onnxlite.schema import ModelProto, OperatorProto

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deploy.plan import InferencePlan

__all__ = ["OnnxliteRuntime", "load_runtime"]

_BN_EPS = 1e-5


def _as_f32(x: np.ndarray) -> np.ndarray:
    """Cast to float32 only when needed (skip the no-op copy)."""
    return x if x.dtype == np.float32 else x.astype(np.float32)


def _conv2d(x: np.ndarray, weight: np.ndarray, attrs: dict) -> np.ndarray:
    stride = int(attrs["stride"])
    padding = int(attrs["padding"])
    kernel = int(attrs["kernel"])
    n, c_in, h, w = x.shape
    c_out = weight.shape[0]
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = sliding_window_view(x, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
    # Tensor-dot formulation (different from repro.tensor's GEMM reshape):
    # (N, C, oh, ow, k, k) x (F, C, k, k) over (C, k, k).
    out = np.tensordot(windows, weight, axes=([1, 4, 5], [1, 2, 3]))  # (N, oh, ow, F)
    return _as_f32(np.ascontiguousarray(out.transpose(0, 3, 1, 2)))


def _batch_norm(x: np.ndarray, gamma, beta, mean, var) -> np.ndarray:
    # Inference form, folded into one affine map per channel.
    scale = gamma / np.sqrt(var + _BN_EPS)
    shift = beta - mean * scale
    return _as_f32(x * scale[None, :, None, None] + shift[None, :, None, None])


def _max_pool(x: np.ndarray, attrs: dict) -> np.ndarray:
    kernel = int(attrs["kernel"])
    stride = int(attrs["stride"])
    windows = sliding_window_view(x, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
    reducer = np.mean if attrs.get("average") else np.max
    return _as_f32(np.ascontiguousarray(reducer(windows, axis=(-2, -1))))


class OnnxliteRuntime:
    """Loads an onnxlite model and runs batched inference.

    Parameters
    ----------
    proto:
        The deserialized model.
    """

    def __init__(self, proto: ModelProto) -> None:
        self.proto = proto
        # Quantized payloads dequantize lazily, on first access: the
        # interpreter computes in fp32 (like OpenVINO's CPU fallback
        # path) and materializes what it touches, while compiling an
        # integer plan from the same runtime touches none of the
        # quantized conv/fc weights at all.
        self._weights = LazyWeightTable(proto)
        #: Lazily compiled plan backing ``run(..., compiled=True)``.
        self._plan: "InferencePlan | None" = None
        #: Live-environment footprint of the most recent :meth:`run`
        #: (every intermediate stays alive — the figure the compiled
        #: plan's arena is measured against).
        self.last_env_bytes = 0
        # Interpreted-path latency histogram (no-op while obs disabled).
        self._latency = obs.histogram(
            "repro_inference_latency_seconds", plan=proto.name, runtime="interpreted"
        )
        self._validate_ops()

    def _validate_ops(self) -> None:
        supported = {"Conv", "BatchNormalization", "Relu", "MaxPool",
                     "GlobalAveragePool", "Flatten", "Gemm", "Add"}
        for op in self.proto.operators:
            if op.op_type not in supported:
                raise ValueError(f"unsupported operator {op.op_type!r} in {op.name!r}")

    # -- weight lookup helpers ------------------------------------------------

    def _param(self, op_name: str, suffix: str) -> np.ndarray:
        key = f"{op_name}.{suffix}"
        if key not in self._weights:
            raise KeyError(f"initializer {key!r} missing from the model")
        return self._weights[key]

    # -- compilation ----------------------------------------------------------

    def compile(
        self, poison: bool = False, variants: "dict[str, str] | None" = None
    ) -> "InferencePlan":
        """Compile the model into an :class:`~repro.deploy.plan.InferencePlan`.

        The plan fuses Conv+BN+ReLU / Add+ReLU chains (the exact kernel
        grouping :mod:`repro.latency.fusion` predicts), binds each fused
        kernel to a concrete closure, and executes over a static
        release schedule with arena-pooled buffers.  Compile once, then
        call ``plan.run(x)`` for repeated inference at the exported
        spatial input size.

        Parameters
        ----------
        poison:
            Debug mode — poison released arena buffers with NaN so a
            read-after-free in the plan corrupts outputs loudly.
        """
        from repro.deploy.plan import compile_plan

        return compile_plan(self.proto, self._weights, poison=poison, variants=variants)

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the model (see :meth:`ModelProto.fingerprint`)."""
        return self.proto.fingerprint()

    # -- execution ---------------------------------------------------------------

    def _execute(self, op: OperatorProto, inputs: list[np.ndarray]) -> np.ndarray:
        kind = op.op_type
        if kind == "Conv":
            out = _conv2d(inputs[0], self._param(op.name, "weight"), op.attrs)
            bias_key = f"{op.name}.bias"
            if bias_key in self._weights:
                # In-place broadcast add: _conv2d returned a fresh buffer.
                out += self._weights[bias_key][None, :, None, None]
            return out
        if kind == "BatchNormalization":
            return _batch_norm(
                inputs[0],
                self._param(op.name, "weight"),
                self._param(op.name, "bias"),
                self._param(op.name, "running_mean"),
                self._param(op.name, "running_var"),
            )
        if kind == "Relu":
            return np.maximum(inputs[0], 0.0)
        if kind == "MaxPool":
            return _max_pool(inputs[0], op.attrs)
        if kind == "GlobalAveragePool":
            return inputs[0].mean(axis=(2, 3), dtype=np.float32)
        if kind == "Flatten":
            return inputs[0].reshape(inputs[0].shape[0], -1)
        if kind == "Gemm":
            weight = self._param(op.name, "weight")  # (out, in)
            out = _as_f32(inputs[0] @ weight.T)
            bias_key = f"{op.name}.bias"
            if bias_key in self._weights:
                out += self._weights[bias_key]
            return out
        if kind == "Add":
            return _as_f32(inputs[0] + inputs[1])
        raise AssertionError(f"unreachable operator {kind}")  # pragma: no cover

    def run(self, x: np.ndarray, *, compiled: bool = False) -> np.ndarray:
        """Run inference on a batch.

        Parameters
        ----------
        x:
            ``(N, C, H, W)`` float input matching the model's input shape.
        compiled:
            Execute through a cached :class:`InferencePlan` instead of
            interpreter dispatch — compiled lazily on first use, then
            reused, so deploy callers get plan-level performance from
            the plain ``run`` API.  **Equivalence guarantee:** the
            compiled path agrees with the interpreted reference within
            ``rtol=1e-3, atol=1e-4`` for every architecture the
            exporter can emit (fp32 and quantized); this is enforced by
            the fuzzed suites in ``tests/test_deploy_plan.py`` and
            ``tests/test_serve.py``.  The compiled path requires the
            exported spatial input size (the interpreter accepts any
            H, W); it falls back with a clear error otherwise.

        Returns
        -------
        np.ndarray
            The output logits, shape ``(N, *output_shape)``.
        """
        if compiled:
            if self._plan is None:
                self._plan = self.compile()
            return self._plan.run(x)
        started = time.perf_counter()
        x = np.asarray(x, dtype=np.float32)
        expected_c = self.proto.input_shape[0]
        if x.ndim != 4 or x.shape[1] != expected_c:
            raise ValueError(
                f"expected input (N, {expected_c}, H, W), got shape {tuple(x.shape)}"
            )
        env: dict[str, np.ndarray] = {"input": x}
        result: np.ndarray | None = None
        for op in self.proto.operators:
            inputs = [env[name] for name in op.inputs]
            result = self._execute(op, inputs)
            env[op.outputs[0]] = result
        if result is None:
            raise ValueError("model has no operators")
        self.last_env_bytes = sum(v.nbytes for v in env.values())
        self._latency.observe(time.perf_counter() - started)
        return result

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of the logits)."""
        return self.run(x).argmax(axis=1)

    def __repr__(self) -> str:
        return (f"OnnxliteRuntime(model={self.proto.name!r}, "
                f"ops={len(self.proto.operators)}, params={self.proto.parameter_count():,})")


def load_runtime(source: str | Path | bytes) -> OnnxliteRuntime:
    """Build a runtime from a file path or serialized bytes."""
    if isinstance(source, bytes):
        return OnnxliteRuntime(proto_from_bytes(source))
    return OnnxliteRuntime(load_model(source))
