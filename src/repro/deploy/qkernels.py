"""Integer kernel primitives: exact int32 GEMM and fixed-point requantization.

The int8 inference path follows the QLinearConv/QLinearGemm recipe every
edge runtime (TFLite, ONNX Runtime, OpenVINO) implements:

    acc[c]  = sum_k W_q[c, k] * A_q[k]            (int32)
    acc[c] += bias_q[c] - zp_in * rowsum(W_q)[c]  (zero-point fold)
    out[c]  = requantize(acc[c]) = clip(round(acc * M_c) + zp_out)

with the per-channel real multiplier ``M_c = s_in * s_w[c] / s_out``
expressed as a Q31 fixed-point mantissa plus a right shift
(:func:`quantize_multiplier`, the gemmlowp convention), so the whole
kernel is integer arithmetic end to end.

**Exact integer accumulation over BLAS.** NumPy's integer ``matmul``
bypasses BLAS entirely (it runs a generic inner loop, an order of
magnitude slower than SGEMM), so the int32 accumulation here rides the
float32 GEMM instead — validly: int8 x uint8 products are bounded by
``127 * 255 = 32 385``, so any partial sum over a K-panel of at most
:data:`K_CHUNK` = 512 terms is bounded by ``512 * 32 385 = 16.6M <
2^24``, inside the float32 mantissa.  Every intermediate a float32 GEMM
can form (any summation order, FMA or not) is therefore an exactly
representable integer, and chunking K at 512 with float64 accumulation
across chunks (exact below 2^53) yields the bit-exact int32 result of a
true integer GEMM — at SGEMM speed.  ``tests/test_qkernels.py`` checks
this against ``np.matmul`` on int64 across fuzzed shapes.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "K_CHUNK",
    "quantize_multiplier",
    "quantize_multipliers",
    "requantize",
    "chunked_int_gemm",
    "quantize_into",
]

#: K-panel bound keeping every float32 partial sum exactly representable:
#: 512 * 127 * 255 = 16 581 120 < 2^24 = 16 777 216.
K_CHUNK = 512


def quantize_multiplier(m: float) -> tuple[int, int]:
    """A positive real multiplier as (Q31 mantissa, right shift).

    Returns ``(m0, shift)`` with ``m = m0 * 2^-31 * 2^-shift`` and
    ``m0`` in ``[2^30, 2^31)`` — gemmlowp's normalized fixed-point form.
    Requantization then computes ``round(acc * m)`` as
    ``(acc * m0 + round_bias) >> (31 + shift)`` in int64.
    """
    if not (m > 0) or not math.isfinite(m):
        raise ValueError(f"multiplier must be positive and finite, got {m}")
    mantissa, exponent = math.frexp(m)  # m = mantissa * 2^exponent, mantissa in [0.5, 1)
    m0 = int(round(mantissa * (1 << 31)))
    if m0 == (1 << 31):  # mantissa rounded up to 1.0
        m0 >>= 1
        exponent += 1
    shift = -exponent
    if 31 + shift < 1:
        raise ValueError(f"multiplier {m} too large for Q31 requantization")
    return m0, shift


def quantize_multipliers(m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`quantize_multiplier` over a channel vector."""
    pairs = [quantize_multiplier(float(v)) for v in np.asarray(m, dtype=np.float64)]
    m0 = np.array([p[0] for p in pairs], dtype=np.int64)
    shift = np.array([p[1] for p in pairs], dtype=np.int64)
    return m0, shift


def requantize(
    acc: np.ndarray,
    m0: np.ndarray,
    shift: np.ndarray,
    zero_point: int,
    relu: bool = False,
    out: np.ndarray | None = None,
    axis: int = 0,
) -> np.ndarray:
    """int32 accumulators -> uint8 codes via fixed-point rescale.

    ``m0``/``shift`` are per-channel vectors broadcast along ``axis`` of
    ``acc`` (or scalars).  Rounds half up — a <= 1 ULP difference from
    round-half-even on exact ties, well inside the certification
    tolerance.  ``relu`` clamps at the output zero point (ReLU in the
    quantized domain).
    """
    acc64 = acc.astype(np.int64, copy=False)
    if np.ndim(m0) > 0:
        col_shape = [1] * acc.ndim
        col_shape[axis] = -1
        m0 = np.asarray(m0, dtype=np.int64).reshape(col_shape)
        shift = np.asarray(shift, dtype=np.int64).reshape(col_shape)
    total = 31 + np.asarray(shift, dtype=np.int64)
    t = acc64 * m0
    t += np.left_shift(1, total - 1)  # round half up
    t >>= total
    t += zero_point
    lo = zero_point if relu else 0
    np.clip(t, lo, 255, out=t)
    if out is None:
        return t.astype(np.uint8)
    out[...] = t
    return out


def chunked_int_gemm(
    w_codes_f32: np.ndarray,
    a_codes_f32: np.ndarray,
    acc: np.ndarray,
    part_f32: np.ndarray,
) -> np.ndarray:
    """Exact ``W_q @ A_q`` integer GEMM over float32 BLAS panels.

    Parameters
    ----------
    w_codes_f32:
        Weight codes pre-converted to float32, shape ``(C, K)``.  Values
        must be integers in [-128, 127] (int8 codes).
    a_codes_f32:
        Activation codes as *integer-valued* float32, shape ``(K, M)``
        (uint8 codes in [0, 255]; the conversion is fused into the
        caller's im2col gather, so K-panels are plain slices here with
        no per-panel copy).
    acc:
        float64 ``(C, M)`` accumulator (arena scratch); overwritten with
        the exact integer result.
    part_f32:
        float32 ``(C, M)`` per-panel GEMM output scratch.

    Returns ``acc`` (float64 holding exact integers).
    """
    k = w_codes_f32.shape[1]
    if k <= K_CHUNK:
        np.matmul(w_codes_f32, a_codes_f32, out=part_f32)
        acc[...] = part_f32
        return acc
    acc.fill(0.0)
    for k0 in range(0, k, K_CHUNK):
        k1 = min(k0 + K_CHUNK, k)
        np.matmul(w_codes_f32[:, k0:k1], a_codes_f32[k0:k1], out=part_f32)
        acc += part_f32
    return acc


def quantize_into(
    x: np.ndarray,
    scale: float,
    zero_point: int,
    out_u8: np.ndarray,
    scratch_f32: np.ndarray,
) -> np.ndarray:
    """Quantize a float32 tensor to uint8 codes, in preallocated buffers.

    The on-the-fly input quantization of integer kernels fed by fp32
    producers (the model input, or an fp32 neighbor layer).
    """
    np.divide(x, scale, out=scratch_f32)
    np.rint(scratch_f32, out=scratch_f32)
    scratch_f32 += zero_point
    np.clip(scratch_f32, 0.0, 255.0, out=scratch_f32)
    out_u8[...] = scratch_f32
    return out_u8
