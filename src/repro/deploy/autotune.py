"""Compile-time kernel autotuning: micro-benchmark variants per layer.

Different layer geometries favor different kernels: Winograd's 2.25x
multiply reduction wins on wide stride-1 3x3 convs but loses its
transform overhead on tiny channel counts; the int8 path trades GEMM
throughput against quantize/requantize epilogues.  Rather than hardcode
crossover heuristics, :func:`autotune_variants` *measures*: for every
layer with more than one eligible kernel variant it binds each candidate
closure against a throwaway arena, feeds synthetic inputs of the exact
shape and carrier form the compiled plan would supply, times a few
rounds, and keeps the fastest.

Decisions are cached as JSON keyed by ``fingerprint:batch``
(:meth:`~repro.onnxlite.schema.ModelProto.fingerprint` covers weights,
topology, *and* the calibration metadata), so a tuned model re-loads its
variant map without re-benchmarking — and two processes sharing a cache
file compile byte-identical plans, which is what makes autotuned serving
deterministic across workers.  The full decision table (per-variant
timings, not just the winners) is preserved for the benchmark artifact
the CI serving scenario publishes next to ``BENCH_serving.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.deploy.passes import (
    PlanNode,
    build_plan_nodes,
    fuse_operators,
    infer_shapes,
    plan_quantization,
    toposort_nodes,
)
from repro.deploy.plan import (
    Arena,
    _bind_conv,
    _bind_gemm,
    _bind_qconv,
    _bind_qgemm,
)
from repro.deploy.weights import LazyWeightTable
from repro.deploy.winograd import WINOGRAD_VARIANT, bind_winograd_conv, winograd_eligible
from repro.latency.fusion import KERNEL_VARIANTS
from repro.onnxlite.schema import ModelProto

__all__ = ["AutotuneResult", "autotune_variants"]


@dataclass
class AutotuneResult:
    """Outcome of one autotuning run (or cache hit).

    ``variants`` feeds straight into ``compile_plan(..., variants=...)``;
    ``table`` is the full decision record (chosen variant + per-variant
    best timings in microseconds, per tuned layer) for reports and the
    CI artifact.
    """

    fingerprint: str
    batch: int
    variants: dict[str, str] = field(default_factory=dict)
    table: dict[str, dict] = field(default_factory=dict)
    #: Whether the decisions came from the JSON cache (no benchmarking ran).
    cached: bool = False

    def to_json(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "batch": self.batch,
            "variants": self.variants,
            "table": self.table,
        }


def _candidates(node: PlanNode) -> list[str]:
    """Eligible kernel variants for one fused node, default first."""
    if node.op_type == "Conv":
        names = ["conv.im2col.f32"]
        if winograd_eligible(node.attrs):
            names.append(WINOGRAD_VARIANT)
        if node.qconfig:
            names.insert(0, "conv.im2col.int8")
        return names
    if node.op_type == "Gemm":
        return ["gemm.int8", "gemm.f32"] if node.qconfig else ["gemm.f32"]
    # Every other op has exactly one eligible kernel per planning
    # outcome (its integer form when the carrier chain is u8, fp32
    # otherwise) — nothing to tune.
    return []


def _bind_candidate(node: PlanNode, variant: str, shapes, arena: Arena, in_form: str):
    in_shape = shapes[node.inputs[0]]
    out_shape = shapes[node.output]
    if variant == "conv.im2col.int8":
        return _bind_qconv(node, in_shape, out_shape, arena, in_form)
    if variant == WINOGRAD_VARIANT:
        return bind_winograd_conv(node, in_shape, out_shape, arena)
    if variant == "conv.im2col.f32":
        return _bind_conv(node, in_shape, out_shape, arena)
    if variant == "gemm.int8":
        return _bind_qgemm(node, in_shape, out_shape, arena, in_form)
    if variant == "gemm.f32":
        return _bind_gemm(node, out_shape, arena)
    raise ValueError(f"no benchmarkable binding for variant {variant!r}")


def _synthetic_input(shape: tuple[int, ...], form: str, rng: np.random.Generator):
    if form == "u8":
        return rng.integers(0, 256, size=shape, dtype=np.uint8)
    return rng.standard_normal(shape, dtype=np.float32)


def _bench(run, env: dict, arena: Arena, rounds: int) -> float:
    """Best-of-``rounds`` wall time of one bound kernel, in seconds."""
    out = run(env)  # warmup (also primes the arena pools)
    arena.release(out)
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = run(env)
        best = min(best, time.perf_counter() - t0)
        arena.release(out)
    return best


def _read_cache(cache_file: Path) -> dict:
    """Parse the decision cache; an unreadable file is just a miss."""
    try:
        store = json.loads(cache_file.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return store if isinstance(store, dict) else {}


def autotune_variants(
    proto: ModelProto,
    batch: int = 1,
    rounds: int = 3,
    cache_path: "str | Path | None" = None,
) -> AutotuneResult:
    """Pick the fastest kernel variant per layer by measurement.

    Parameters
    ----------
    proto:
        The model to tune (calibrated + int8-quantized models expose the
        integer candidates; plain fp32 models tune im2col vs Winograd).
    batch:
        Batch size the decisions are specialized to — kernel crossovers
        move with batch, so the cache key is ``fingerprint:batch``.
    rounds:
        Timed repetitions per candidate (best-of; one warmup extra).
    cache_path:
        Optional JSON decision cache.  On a hit the mapping is returned
        without any benchmarking (``result.cached``); on a miss the file
        is updated atomically, so concurrent workers never read a torn
        table.

    Returns an :class:`AutotuneResult`; pass ``result.variants`` to
    :func:`repro.deploy.plan.compile_plan`.
    """
    fingerprint = proto.fingerprint()
    key = f"{fingerprint}:{int(batch)}"
    cache_file = Path(cache_path) if cache_path is not None else None
    if cache_file is not None and cache_file.exists():
        store = _read_cache(cache_file)
        hit = store.get(key)
        if hit is not None:
            return AutotuneResult(
                fingerprint=fingerprint,
                batch=int(batch),
                variants=dict(hit["variants"]),
                table=dict(hit["table"]),
                cached=True,
            )

    # Re-run the compile pipeline up to quantization planning on a
    # private node list (binder weight caches land on these nodes and
    # are discarded with them).
    nodes = build_plan_nodes(proto, LazyWeightTable(proto))
    nodes = toposort_nodes(fuse_operators(nodes))
    shapes = infer_shapes(nodes, proto.input_shape)
    forms = plan_quantization(nodes, proto)

    rng = np.random.default_rng(0)
    variants: dict[str, str] = {}
    table: dict[str, dict] = {}
    for node in nodes:
        names = _candidates(node)
        if len(names) < 2:
            continue
        in_name = node.inputs[0]
        in_form = forms.get(in_name, "f32")
        timings: dict[str, float] = {}
        for variant in names:
            assert variant in KERNEL_VARIANTS.get(node.op_type, ()), variant
            # Feed the form this candidate would see in the real plan;
            # fp32 candidates inside a u8 carrier chain are benchmarked
            # on f32 inputs (forcing them f32 also re-forms the chain).
            feeds_u8 = in_form == "u8" and variant.endswith((".int8", ".u8"))
            form = "u8" if feeds_u8 else "f32"
            arena = Arena()
            x = _synthetic_input((int(batch), *shapes[in_name]), form, rng)
            run = _bind_candidate(node, variant, shapes, arena, form)
            timings[variant] = _bench(run, {in_name: x}, arena, rounds)
        chosen = min(timings, key=timings.get)
        variants[node.name] = chosen
        table[node.name] = {
            "op_type": node.op_type,
            "chosen": chosen,
            "timings_us": {v: round(t * 1e6, 2) for v, t in timings.items()},
        }

    result = AutotuneResult(
        fingerprint=fingerprint, batch=int(batch), variants=variants, table=table
    )
    if cache_file is not None:
        store = _read_cache(cache_file) if cache_file.exists() else {}
        store[key] = {"variants": variants, "table": table}
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_file.with_suffix(cache_file.suffix + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(store, indent=2, sort_keys=True))
        os.replace(tmp, cache_file)
    return result
