"""Lazy, per-consumer weight materialization for plan compilation.

Historically the deploy layer dequantized *every* initializer to float32
at load time (``{t.name: t.dequantized() for t in proto.initializers}``)
— both the runtime and ``compile_plan`` did it, so a quantized model
paid for its full fp32 weight set before a single kernel was bound, and
layers destined for the integer kernel path never needed those copies at
all.

:class:`LazyWeightTable` replaces that eager dict with a read-through
cache over the raw :class:`~repro.onnxlite.schema.TensorProto` records:

- ``table[name]`` dequantizes **on first access** and memoizes — code
  that genuinely needs fp32 (the interpreter, fp32 kernel binding, BN
  folding) is unchanged;
- ``table.tensor(name)`` hands the raw proto record to consumers that
  want the integer codes themselves (the int8 kernel binder), which
  therefore never trigger an fp32 materialization;
- ``table.materialized`` reports which names have been dequantized, so
  tests can assert that compiling a fully-quantized model materializes
  no fp32 conv/fc weights.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.onnxlite.schema import ModelProto, TensorProto

__all__ = ["LazyWeightTable", "plan_weight_arrays", "weight_residency"]


def plan_weight_arrays(nodes) -> "Iterator[tuple[str, str, np.ndarray]]":
    """Every bound weight array of a compiled plan: (node, role, array).

    Walks the :class:`~repro.deploy.passes.PlanNode` weight dicts in a
    deterministic order.  After :func:`~repro.deploy.plan.compile_plan`
    has bound a template once, these dicts hold *everything* the kernels
    capture — fused fp32 matrices ("weight", "bias", "scale", "shift"),
    GEMM transposes ("weight_t"), int8 code matrices and per-channel
    scales ("w_codes_f32", "w_scales", "w_row_sums") and Winograd
    transforms ("winograd_u") — so publishing exactly this set into a
    shared-memory segment covers every kernel variant a rebind can pick.
    """
    for node in nodes:
        for role in sorted(node.weights):
            yield node.name, role, np.asarray(node.weights[role])


def weight_residency(nodes, buffer) -> dict[str, int]:
    """How many weight bytes live inside ``buffer`` vs privately.

    ``buffer`` is a buffer-protocol object (e.g. a
    ``multiprocessing.shared_memory.SharedMemory.buf`` memoryview).
    Returns ``{"shared_bytes", "private_bytes", "arrays"}`` — the
    materialized_bytes-style assertion behind the serving tier's
    "weights are shared, not copied" guarantee: a worker that rebinds a
    plan from shared memory must report ``private_bytes == 0``.
    """
    base = np.frombuffer(buffer, dtype=np.uint8)
    shared = private = arrays = 0
    for _node, _role, arr in plan_weight_arrays(nodes):
        arrays += 1
        if np.shares_memory(arr, base):
            shared += arr.nbytes
        else:
            private += arr.nbytes
    return {"shared_bytes": shared, "private_bytes": private, "arrays": arrays}


class LazyWeightTable(Mapping):
    """Mapping of initializer name -> float32 array, dequantized lazily."""

    def __init__(self, proto: ModelProto) -> None:
        self._tensors: dict[str, TensorProto] = {t.name: t for t in proto.initializers}
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        array = self._cache.get(name)
        if array is None:
            array = self._tensors[name].dequantized()
            self._cache[name] = array
        return array

    def __contains__(self, name: object) -> bool:
        return name in self._tensors

    def __iter__(self) -> Iterator[str]:
        return iter(self._tensors)

    def __len__(self) -> int:
        return len(self._tensors)

    def tensor(self, name: str) -> TensorProto:
        """The raw initializer record (no dequantization)."""
        return self._tensors[name]

    @property
    def materialized(self) -> set[str]:
        """Names whose fp32 form has been materialized so far."""
        return set(self._cache)

    def materialized_bytes(self) -> int:
        """Total bytes of fp32 copies created on top of the raw payloads.

        Unquantized tensors return their payload array itself (no copy),
        so only dequantized copies count.
        """
        total = 0
        for name in self._cache:
            if self._tensors[name].quantized:
                total += self._cache[name].nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LazyWeightTable(tensors={len(self._tensors)}, "
                f"materialized={len(self._cache)})")
