"""Pooled scratch buffers for the training hot path.

The deploy compiler (PR 1) plans inference memory statically; training
cannot, because the autograd tape creates and frees scratch arrays
(im2col column matrices, padded inputs, col2im scatter targets) in a
data-dependent order.  This module provides the dynamic equivalent: a
shape-keyed free-list pool.  An op *acquires* a buffer (reusing a
released one of the same shape when available, allocating otherwise)
and *releases* it the moment its last reader is done — immediately for
inference-mode forwards, inside the backward closure for training.

Because buffers are only handed out after release, two live convs with
identical geometry (e.g. repeated residual blocks) never alias: each
acquire pops a distinct array.  Contents of an acquired buffer are
undefined; every caller fully overwrites it, which keeps pooled and
allocation-per-call execution bitwise identical
(:func:`repro.tensor.grad_check.check_backend_consistency` certifies
this in the test suite).

Activation is lexical: ops consult :func:`active_pool` and fall back to
plain ``np.empty`` allocation when no :func:`use_workspaces` context is
open, so nothing changes for code that does not opt in.

One caveat: inside a ``use_workspaces`` block a graph may be
back-propagated **once** — the backward closures return their column
workspaces to the pool after use, so a retained-graph second
``backward()`` would read recycled memory.  Nothing in the library (or
in standard SGD training) calls backward twice on one graph.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

import numpy as np

__all__ = [
    "WorkspacePool",
    "use_workspaces",
    "active_pool",
    "workspaces_enabled",
]


class _PoolBase:
    """Interface shared by the real pool and the allocate-always fallback."""

    def acquire(self, shape: tuple[int, ...]) -> np.ndarray:
        raise NotImplementedError

    def release(self, buffer: np.ndarray) -> None:
        raise NotImplementedError


class _NullPool(_PoolBase):
    """Allocation-per-call fallback used when no workspace context is open."""

    def acquire(self, shape: tuple[int, ...]) -> np.ndarray:
        return np.empty(shape, dtype=np.float32)

    def release(self, buffer: np.ndarray) -> None:  # pragma: no cover - trivial
        pass


class WorkspacePool(_PoolBase):
    """Shape-keyed free-list of reusable float32 scratch arrays.

    ``acquire(shape)`` pops a previously released buffer of that exact
    shape, or allocates a fresh one on a miss; ``release`` returns a
    buffer to its free list.  The pool never copies or zeroes — callers
    own initialization — so a hit costs one dict lookup and a list pop.

    Statistics (:attr:`hits`, :attr:`misses`, :meth:`stats`) feed the
    training profiler and the benchmark suite; ``peak_bytes`` is the
    high-water mark of all memory the pool has ever handed out that has
    not been dropped by :meth:`clear`.
    """

    def __init__(self) -> None:
        self._free: dict[tuple[int, ...], list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self._total_bytes = 0
        self.peak_bytes = 0
        self._metrics_collector = None  # see publish_metrics()

    def acquire(self, shape: tuple[int, ...]) -> np.ndarray:
        """A float32 array of ``shape`` with **undefined contents**."""
        stack = self._free.get(shape)
        if stack:
            self.hits += 1
            return stack.pop()
        self.misses += 1
        buffer = np.empty(shape, dtype=np.float32)
        self._total_bytes += buffer.nbytes
        self.peak_bytes = max(self.peak_bytes, self._total_bytes)
        return buffer

    def release(self, buffer: np.ndarray) -> None:
        """Return ``buffer`` to the free list for its shape.

        Only arrays obtained from :meth:`acquire` should be released;
        releasing a foreign array of a pooled shape is harmless but
        inflates accounting.
        """
        self._free.setdefault(buffer.shape, []).append(buffer)

    def clear(self) -> None:
        """Drop all pooled buffers (counters are kept for reporting)."""
        self._free.clear()
        self._total_bytes = 0

    def free_bytes(self) -> int:
        """Bytes currently sitting in free lists (released, reusable)."""
        return sum(b.nbytes for stack in self._free.values() for b in stack)

    def stats(self) -> dict[str, int]:
        """Counters snapshot: hits, misses, peak/free bytes, shape count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "peak_bytes": self.peak_bytes,
            "free_bytes": self.free_bytes(),
            "shapes": len(self._free),
        }

    def publish_metrics(self, pool_name: str = "default") -> None:
        """Register this pool with the process-wide metrics registry.

        Registers a *collector* (see
        :meth:`repro.obs.MetricsRegistry.add_collector`) that refreshes
        the gauges ``repro_workspace_hits``, ``repro_workspace_misses``,
        ``repro_workspace_pooled_bytes`` and
        ``repro_workspace_peak_bytes`` (all labeled ``pool=pool_name``)
        from this pool's counters at snapshot time — the acquire/release
        hot path stays untouched.  Idempotent per pool instance.
        """
        from repro.obs import config as _obs

        if getattr(self, "_metrics_collector", None) is not None:
            return
        registry = _obs.registry()
        hits = registry.gauge("repro_workspace_hits", pool=pool_name)
        misses = registry.gauge("repro_workspace_misses", pool=pool_name)
        pooled = registry.gauge("repro_workspace_pooled_bytes", pool=pool_name)
        peak = registry.gauge("repro_workspace_peak_bytes", pool=pool_name)

        def _collect() -> None:
            hits.set(self.hits)
            misses.set(self.misses)
            pooled.set(self.free_bytes())
            peak.set(self.peak_bytes)

        self._metrics_collector = _collect
        registry.add_collector(_collect)

    def unpublish_metrics(self) -> None:
        """Remove this pool's collector from the process-wide registry."""
        from repro.obs import config as _obs

        collector = getattr(self, "_metrics_collector", None)
        if collector is not None:
            _obs.registry().remove_collector(collector)
            self._metrics_collector = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"WorkspacePool(hits={s['hits']}, misses={s['misses']}, "
            f"peak_bytes={s['peak_bytes']})"
        )


_NULL_POOL = _NullPool()
_LOCAL = threading.local()


def active_pool() -> _PoolBase:
    """The pool ops should allocate from (the null pool when disabled)."""
    return getattr(_LOCAL, "pool", None) or _NULL_POOL


def workspaces_enabled() -> bool:
    """Whether a :func:`use_workspaces` context is currently open."""
    return getattr(_LOCAL, "pool", None) is not None


@contextlib.contextmanager
def use_workspaces(pool: WorkspacePool | None = None) -> Iterator[WorkspacePool]:
    """Enable pooled scratch buffers for ops run inside the block.

    Parameters
    ----------
    pool:
        An existing pool to (re)enter — e.g. to accumulate statistics
        across epochs; a fresh :class:`WorkspacePool` is created when
        omitted.  Nesting replaces the active pool for the inner block
        and restores the outer one afterwards.

    Yields the active pool so callers can inspect :meth:`WorkspacePool.stats`.
    """
    if pool is None:
        pool = WorkspacePool()
    previous = getattr(_LOCAL, "pool", None)
    _LOCAL.pool = pool
    try:
        yield pool
    finally:
        _LOCAL.pool = previous
