"""Vectorized 2-D convolution and pooling.

The forward passes use ``numpy.lib.stride_tricks.sliding_window_view`` to
expose every receptive field as a view (no copy) and reduce the convolution
to a single GEMM — the im2col formulation.  The backward passes scatter
gradients with a loop over the *kernel footprint only* (at most
``k*k`` iterations, each fully vectorized), never over pixels, following
the "vectorize the inner loops" idiom from the HPC guide.

All scratch arrays (padded inputs, im2col column matrices, col2im
scatter targets) are drawn from :func:`repro.tensor.workspace.active_pool`.
Outside a :func:`~repro.tensor.workspace.use_workspaces` context that is
plain allocation-per-call; inside one, buffers are recycled across
steps, which removes the dominant allocation traffic of the training
loop.  Both modes execute the exact same arithmetic on fully
overwritten buffers, so results are bitwise identical.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.tensor.tensor import Tensor, is_grad_enabled
from repro.tensor.workspace import active_pool

__all__ = [
    "conv_output_size",
    "pool_output_size",
    "conv2d",
    "im2col",
    "im2col_shape",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a conv: ``floor((size + 2p - k) / s) + 1``."""
    out = (size + 2 * padding - kernel) // stride + 1
    return out


def pool_output_size(size: int, kernel: int, stride: int) -> int:
    """Spatial output size of an unpadded pooling window."""
    return (size - kernel) // stride + 1


def _check_conv_geometry(h: int, w: int, kernel: int, stride: int, padding: int) -> tuple[int, int]:
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"convolution output collapsed: input {h}x{w}, kernel {kernel}, "
            f"stride {stride}, padding {padding} -> {out_h}x{out_w}"
        )
    return out_h, out_w


def _windows(data: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """All kernel-sized windows of an (N, C, H, W) array, strided.

    Returns a **view** of shape ``(N, C, out_h, out_w, kernel, kernel)``.
    """
    view = sliding_window_view(data, (kernel, kernel), axis=(2, 3))
    return view[:, :, ::stride, ::stride]


def im2col_shape(x_shape: tuple[int, ...], kernel: int, stride: int) -> tuple[int, int, int]:
    """Shape of the im2col matrix for an (already padded) input shape.

    Returns ``(N, C*k*k, out_h*out_w)`` — the GEMM-ready layout produced
    by :func:`im2col`.
    """
    n, c, h, w = x_shape
    out_h = pool_output_size(h, kernel, stride)
    out_w = pool_output_size(w, kernel, stride)
    return (n, c * kernel * kernel, out_h * out_w)


def im2col(x: np.ndarray, kernel: int, stride: int, out: np.ndarray | None = None) -> np.ndarray:
    """Materialize receptive fields of a padded ``(N, C, H, W)`` array.

    Produces the ``(N, C*k*k, out_h*out_w)`` column matrix so a
    convolution reduces to one batched GEMM: ``W(c_out, C*k*k) @ cols``
    yields the NCHW output directly, with no transpose pass afterwards.

    Parameters
    ----------
    x:
        Input array, **already padded** (apply padding before calling).
    kernel, stride:
        Square kernel size and uniform spatial stride.
    out:
        Optional preallocated workspace of exactly :func:`im2col_shape`.
        Passing a reused buffer is the deploy compiler's workspace hook —
        Conv ops sharing a column shape share one allocation instead of
        materializing a fresh im2col matrix per call.
    """
    n, c, h, w = x.shape
    out_h = pool_output_size(h, kernel, stride)
    out_w = pool_output_size(w, kernel, stride)
    shape = (n, c * kernel * kernel, out_h * out_w)
    if out is None:
        out = np.empty(shape, dtype=np.float32)
    elif out.shape != shape:
        raise ValueError(f"im2col workspace has shape {out.shape}, expected {shape}")
    # (N, C, oh, ow, k, k) view -> copy into (N, C, k, k, oh, ow) layout.
    windows = _windows(x, kernel, stride)
    dst = out.reshape(n, c, kernel, kernel, out_h, out_w)
    np.copyto(dst, windows.transpose(0, 1, 4, 5, 2, 3))
    return out


#: Position-count threshold for the merged (position-major) GEMM layout.
#: Small spatial outputs make the batched channel-major GEMM skinny — many
#: tiny matrix products — while one merged ``(N*P, Ckk) @ (Ckk, C_out)``
#: product keeps the GEMM kernel saturated.  Large spatial outputs favour
#: the channel-major layout, which writes NCHW directly with no transpose
#: pass.  The crossover was measured on the ResNet-18 geometries of the
#: paper's 100x100 patches (merged wins decisively for P <= ~256, loses
#: slightly by P ~= 2500).
MERGED_GEMM_MAX_POSITIONS = 256


def _use_merged_layout(n: int, positions: int) -> bool:
    """Choose the position-major merged-GEMM path for this geometry."""
    return n > 1 and positions <= MERGED_GEMM_MAX_POSITIONS


def _im2col_positions(x: np.ndarray, kernel: int, stride: int, out: np.ndarray) -> np.ndarray:
    """Position-major im2col: ``(N*oh*ow, C*k*k)`` into ``out``.

    The merged-GEMM twin of :func:`im2col`: every row is one receptive
    field, so the whole batch collapses into a single large matrix
    product instead of ``N`` batched ones.  ``out`` is fully overwritten.
    """
    n, c, h, w = x.shape
    out_h = pool_output_size(h, kernel, stride)
    out_w = pool_output_size(w, kernel, stride)
    windows = _windows(x, kernel, stride)  # (N, C, oh, ow, k, k) view
    dst = out.reshape(n, out_h, out_w, c, kernel, kernel)
    np.copyto(dst, windows.transpose(0, 2, 3, 1, 4, 5))
    return out


def _scatter_axis_bounds(offset: int, padding: int, stride: int, out_len: int, in_len: int) -> tuple[int, int]:
    """Inclusive output-position range whose input coordinate is in bounds.

    For the col2im scatter: output position ``t`` along one axis touches
    input coordinate ``offset - padding + stride * t``; this returns the
    ``[t0, t1]`` range landing inside ``[0, in_len)`` so gradients can be
    scattered straight into an *unpadded* buffer (positions that fall in
    the zero-padding border contribute nothing and are skipped).  Returns
    an empty range (``t1 < t0``) when no position is in bounds.
    """
    t0 = 0 if offset >= padding else -((offset - padding) // stride)
    upper = in_len - 1 + padding - offset
    if upper < 0:
        return 1, 0
    return t0, min(out_len - 1, upper // stride)


def _pad_into(dst: np.ndarray, src: np.ndarray, padding: int) -> None:
    """Write ``src`` zero-padded by ``padding`` into preallocated ``dst``.

    Every element of ``dst`` is assigned (borders zeroed, interior
    copied), so a recycled workspace buffer carries no stale state.
    """
    p = padding
    dst[:, :, :p, :] = 0.0
    dst[:, :, -p:, :] = 0.0
    dst[:, :, p:-p, :p] = 0.0
    dst[:, :, p:-p, -p:] = 0.0
    dst[:, :, p:-p, p:-p] = src


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    The forward pass lowers to the same GEMM layout the deploy compiler
    uses: ``W(C_out, C*k*k) @ im2col(x)(N, C*k*k, oh*ow)`` yields the
    NCHW output directly (no transpose/copy pass).  Scratch buffers come
    from the active workspace pool; in inference mode (no parent
    requires grad) no backward closure is created, so the column matrix
    — the largest array of the run — is released immediately instead of
    being pinned by the tape.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, K, K)``.
    bias:
        Optional per-filter bias of shape ``(C_out,)``.
    stride, padding:
        Uniform spatial stride and symmetric zero padding.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d input must be (N, C, H, W), got {x.shape}")
    if weight.ndim != 4 or weight.shape[2] != weight.shape[3]:
        raise ValueError(f"conv2d weight must be (C_out, C_in, K, K), got {weight.shape}")
    n, c_in, h, w = x.shape
    c_out, c_in_w, kernel, _ = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels but weight expects {c_in_w}")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    out_h, out_w = _check_conv_geometry(h, w, kernel, stride, padding)

    pool = active_pool()
    ckk = c_in * kernel * kernel
    positions = out_h * out_w
    merged = _use_merged_layout(n, positions)

    if padding:
        xp = pool.acquire((n, c_in, h + 2 * padding, w + 2 * padding))
        _pad_into(xp, x.data, padding)
    else:
        xp = x.data
    if merged:
        cols = _im2col_positions(xp, kernel, stride, pool.acquire((n * positions, ckk)))
    else:
        cols = im2col(xp, kernel, stride, out=pool.acquire(im2col_shape(xp.shape, kernel, stride)))
    if padding:
        pool.release(xp)  # the columns carry everything backward needs

    w_flat = weight.data.reshape(c_out, -1)  # (C_out, C*k*k)
    if merged:
        # One large GEMM over all receptive fields, then one NHWC->NCHW pass.
        out_m = pool.acquire((n * positions, c_out))
        np.matmul(cols, w_flat.T, out=out_m)
        if bias is not None:
            out_m += bias.data
        # Explicit owned copy, never ``ascontiguousarray``: for c_out == 1
        # the transposed view is already "contiguous" (size-1 axis) and
        # would alias the pooled buffer about to be recycled.
        out_data = np.empty((n, c_out, out_h, out_w), dtype=np.float32)
        np.copyto(out_data, out_m.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2))
        pool.release(out_m)
    else:
        out_data = np.matmul(w_flat, cols)  # (N, C_out, oh*ow), contiguous
        if bias is not None:
            out_data += bias.data[:, None]
        out_data = out_data.reshape(n, c_out, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)
    if not (is_grad_enabled() and any(p.requires_grad for p in parents)):
        # Inference fast path: nothing captures `cols`, recycle it now.
        pool.release(cols)
        return Tensor._make(out_data, parents, None, "conv2d")

    if merged:
        backward = _make_merged_backward(
            x, weight, bias, cols, pool, w_flat,
            n, c_in, c_out, ckk, kernel, stride, padding, out_h, out_w, h, w,
        )
    else:
        backward = _make_batched_backward(
            x, weight, bias, cols, pool, w_flat,
            n, c_in, c_out, ckk, kernel, stride, padding, out_h, out_w, h, w,
        )
    return Tensor._make(out_data, parents, backward, "conv2d")


def _make_batched_backward(
    x, weight, bias, cols, pool, w_flat,
    n, c_in, c_out, ckk, kernel, stride, padding, out_h, out_w, h, w,
):
    """Backward closure for the channel-major batched-GEMM layout."""
    positions = out_h * out_w

    def backward(grad: np.ndarray) -> None:
        grad_r = grad.reshape(n, c_out, positions)
        if bias is not None:
            # Reduction outputs are fresh arrays: donate instead of copying.
            bias._accumulate_owned(grad.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            grad_w = pool.acquire((n, c_out, ckk))
            np.matmul(grad_r, cols.transpose(0, 2, 1), out=grad_w)
            weight._accumulate_owned(grad_w.sum(axis=0).reshape(weight.shape))
            pool.release(grad_w)
        if x.requires_grad:
            grad_cols = pool.acquire((n, ckk, positions))
            np.matmul(w_flat.T, grad_r, out=grad_cols)
            gview = grad_cols.reshape(n, c_in, kernel, kernel, out_h, out_w)
            # col2im scatter-add straight into an *unpadded* buffer: each
            # footprint offset clips to the output positions that land
            # inside the input, so no padded staging buffer, no interior
            # slice, and the pooled result is donated as the gradient.
            grad_x = pool.acquire((n, c_in, h, w))
            grad_x.fill(0.0)
            for i in range(kernel):
                ti0, ti1 = _scatter_axis_bounds(i, padding, stride, out_h, h)
                if ti1 < ti0:
                    continue
                r0 = i - padding + stride * ti0
                for j in range(kernel):
                    tj0, tj1 = _scatter_axis_bounds(j, padding, stride, out_w, w)
                    if tj1 < tj0:
                        continue
                    c0 = j - padding + stride * tj0
                    grad_x[
                        :, :,
                        r0 : r0 + stride * (ti1 - ti0) + 1 : stride,
                        c0 : c0 + stride * (tj1 - tj0) + 1 : stride,
                    ] += gview[:, :, i, j, ti0 : ti1 + 1, tj0 : tj1 + 1]
            pool.release(grad_cols)
            x._accumulate_pooled(grad_x, pool)
        # The tape runs each closure once; the columns are now spent.
        pool.release(cols)

    return backward


def _make_merged_backward(
    x, weight, bias, cols, pool, w_flat,
    n, c_in, c_out, ckk, kernel, stride, padding, out_h, out_w, h, w,
):
    """Backward closure for the position-major merged-GEMM layout.

    Both gradient GEMMs collapse to single large products over the
    ``(N*P, ...)`` axis: ``grad_w = grad_m.T @ cols`` and
    ``grad_cols = grad_m @ W`` — no batched small-matrix traffic.
    """
    positions = out_h * out_w

    def backward(grad: np.ndarray) -> None:
        grad_m = pool.acquire((n * positions, c_out))
        np.copyto(grad_m.reshape(n, out_h, out_w, c_out), grad.transpose(0, 2, 3, 1))
        if bias is not None:
            bias._accumulate_owned(grad_m.sum(axis=0))
        if weight.requires_grad:
            # A fresh (small) GEMM output that is donated outright; a pooled
            # buffer could not be — its reshape view would break the pool's
            # shape-keyed release bookkeeping.
            grad_w = np.empty((c_out, ckk), dtype=np.float32)
            np.matmul(grad_m.T, cols, out=grad_w)
            weight._accumulate_owned(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = pool.acquire((n * positions, ckk))
            np.matmul(grad_m, w_flat, out=grad_cols)
            gview = grad_cols.reshape(n, out_h, out_w, c_in, kernel, kernel)
            # Scatter in the position-major layout (contiguous adds) with
            # footprint clipping into an unpadded NHWC buffer, then one
            # NHWC->NCHW pass into the donated pooled gradient.
            grad_xn = pool.acquire((n, h, w, c_in))
            grad_xn.fill(0.0)
            for i in range(kernel):
                ti0, ti1 = _scatter_axis_bounds(i, padding, stride, out_h, h)
                if ti1 < ti0:
                    continue
                r0 = i - padding + stride * ti0
                for j in range(kernel):
                    tj0, tj1 = _scatter_axis_bounds(j, padding, stride, out_w, w)
                    if tj1 < tj0:
                        continue
                    c0 = j - padding + stride * tj0
                    grad_xn[
                        :,
                        r0 : r0 + stride * (ti1 - ti0) + 1 : stride,
                        c0 : c0 + stride * (tj1 - tj0) + 1 : stride,
                        :,
                    ] += gview[:, ti0 : ti1 + 1, tj0 : tj1 + 1, :, i, j]
            pool.release(grad_cols)
            grad_x = pool.acquire((n, c_in, h, w))
            np.copyto(grad_x, grad_xn.transpose(0, 3, 1, 2))
            pool.release(grad_xn)
            x._accumulate_pooled(grad_x, pool)
        pool.release(grad_m)
        pool.release(cols)

    return backward


def max_pool2d(x: Tensor, kernel: int, stride: int) -> Tensor:
    """Max pooling over non-padded windows of an ``(N, C, H, W)`` tensor."""
    if x.ndim != 4:
        raise ValueError(f"max_pool2d input must be (N, C, H, W), got {x.shape}")
    n, c, h, w = x.shape
    out_h = pool_output_size(h, kernel, stride)
    out_w = pool_output_size(w, kernel, stride)
    if out_h < 1 or out_w < 1:
        raise ValueError(f"pooling output collapsed: input {h}x{w}, kernel {kernel}, stride {stride}")

    windows = _windows(x.data, kernel, stride)  # (N, C, oh, ow, k, k)
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out_data = np.ascontiguousarray(out_data)

    def backward(grad: np.ndarray) -> None:
        pool = active_pool()
        grad_x = pool.acquire((n, c, h, w))
        grad_x.fill(0.0)
        ki, kj = np.divmod(arg, kernel)  # window-local coordinates of the max
        oi, oj = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
        rows = oi[None, None] * stride + ki
        cols_ = oj[None, None] * stride + kj
        nn, cc = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
        np.add.at(grad_x, (nn[..., None, None], cc[..., None, None], rows, cols_), grad)
        x._accumulate_pooled(grad_x, pool)

    return Tensor._make(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int, stride: int) -> Tensor:
    """Average pooling over non-padded windows."""
    if x.ndim != 4:
        raise ValueError(f"avg_pool2d input must be (N, C, H, W), got {x.shape}")
    n, c, h, w = x.shape
    out_h = pool_output_size(h, kernel, stride)
    out_w = pool_output_size(w, kernel, stride)
    if out_h < 1 or out_w < 1:
        raise ValueError(f"pooling output collapsed: input {h}x{w}, kernel {kernel}, stride {stride}")

    windows = _windows(x.data, kernel, stride)
    out_data = windows.mean(axis=(-2, -1), dtype=np.float32)
    out_data = np.ascontiguousarray(out_data)
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        pool = active_pool()
        grad_x = pool.acquire((n, c, h, w))
        grad_x.fill(0.0)
        g = grad * scale
        for i in range(kernel):
            for j in range(kernel):
                grad_x[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += g
        x._accumulate_pooled(grad_x, pool)

    return Tensor._make(out_data, (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dimensions: ``(N, C, H, W) -> (N, C)``."""
    if x.ndim != 4:
        raise ValueError(f"global_avg_pool2d input must be (N, C, H, W), got {x.shape}")
    return x.mean(axis=(2, 3))
