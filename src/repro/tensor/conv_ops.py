"""Vectorized 2-D convolution and pooling.

The forward passes use ``numpy.lib.stride_tricks.sliding_window_view`` to
expose every receptive field as a view (no copy) and reduce the convolution
to a single GEMM — the im2col formulation.  The backward passes scatter
gradients with a loop over the *kernel footprint only* (at most
``k*k`` iterations, each fully vectorized), never over pixels, following
the "vectorize the inner loops" idiom from the HPC guide.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.tensor.tensor import Tensor

__all__ = [
    "conv_output_size",
    "pool_output_size",
    "conv2d",
    "im2col",
    "im2col_shape",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a conv: ``floor((size + 2p - k) / s) + 1``."""
    out = (size + 2 * padding - kernel) // stride + 1
    return out


def pool_output_size(size: int, kernel: int, stride: int) -> int:
    """Spatial output size of an unpadded pooling window."""
    return (size - kernel) // stride + 1


def _check_conv_geometry(h: int, w: int, kernel: int, stride: int, padding: int) -> tuple[int, int]:
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"convolution output collapsed: input {h}x{w}, kernel {kernel}, "
            f"stride {stride}, padding {padding} -> {out_h}x{out_w}"
        )
    return out_h, out_w


def _windows(data: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """All kernel-sized windows of an (N, C, H, W) array, strided.

    Returns a **view** of shape ``(N, C, out_h, out_w, kernel, kernel)``.
    """
    view = sliding_window_view(data, (kernel, kernel), axis=(2, 3))
    return view[:, :, ::stride, ::stride]


def im2col_shape(x_shape: tuple[int, ...], kernel: int, stride: int) -> tuple[int, int, int]:
    """Shape of the im2col matrix for an (already padded) input shape.

    Returns ``(N, C*k*k, out_h*out_w)`` — the GEMM-ready layout produced
    by :func:`im2col`.
    """
    n, c, h, w = x_shape
    out_h = pool_output_size(h, kernel, stride)
    out_w = pool_output_size(w, kernel, stride)
    return (n, c * kernel * kernel, out_h * out_w)


def im2col(x: np.ndarray, kernel: int, stride: int, out: np.ndarray | None = None) -> np.ndarray:
    """Materialize receptive fields of a padded ``(N, C, H, W)`` array.

    Produces the ``(N, C*k*k, out_h*out_w)`` column matrix so a
    convolution reduces to one batched GEMM: ``W(c_out, C*k*k) @ cols``
    yields the NCHW output directly, with no transpose pass afterwards.

    Parameters
    ----------
    x:
        Input array, **already padded** (apply padding before calling).
    kernel, stride:
        Square kernel size and uniform spatial stride.
    out:
        Optional preallocated workspace of exactly :func:`im2col_shape`.
        Passing a reused buffer is the deploy compiler's workspace hook —
        Conv ops sharing a column shape share one allocation instead of
        materializing a fresh im2col matrix per call.
    """
    n, c, h, w = x.shape
    out_h = pool_output_size(h, kernel, stride)
    out_w = pool_output_size(w, kernel, stride)
    shape = (n, c * kernel * kernel, out_h * out_w)
    if out is None:
        out = np.empty(shape, dtype=np.float32)
    elif out.shape != shape:
        raise ValueError(f"im2col workspace has shape {out.shape}, expected {shape}")
    # (N, C, oh, ow, k, k) view -> copy into (N, C, k, k, oh, ow) layout.
    windows = _windows(x, kernel, stride)
    dst = out.reshape(n, c, kernel, kernel, out_h, out_w)
    np.copyto(dst, windows.transpose(0, 1, 4, 5, 2, 3))
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, K, K)``.
    bias:
        Optional per-filter bias of shape ``(C_out,)``.
    stride, padding:
        Uniform spatial stride and symmetric zero padding.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d input must be (N, C, H, W), got {x.shape}")
    if weight.ndim != 4 or weight.shape[2] != weight.shape[3]:
        raise ValueError(f"conv2d weight must be (C_out, C_in, K, K), got {weight.shape}")
    n, c_in, h, w = x.shape
    c_out, c_in_w, kernel, _ = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels but weight expects {c_in_w}")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    out_h, out_w = _check_conv_geometry(h, w, kernel, stride, padding)

    xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))) if padding else x.data
    # im2col: (N, C, oh, ow, k, k) view -> (N*oh*ow, C*k*k) matrix.
    cols = (
        _windows(xp, kernel, stride)
        .transpose(0, 2, 3, 1, 4, 5)
        .reshape(n * out_h * out_w, c_in * kernel * kernel)
    )
    cols = np.ascontiguousarray(cols)
    w_mat = weight.data.reshape(c_out, -1).T  # (C*k*k, C_out)
    out_mat = cols @ w_mat
    if bias is not None:
        out_mat += bias.data
    out_data = out_mat.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    out_data = np.ascontiguousarray(out_data)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c_out)
        if bias is not None:
            bias._accumulate(grad_mat.sum(axis=0))
        if weight.requires_grad:
            grad_w = (cols.T @ grad_mat).T.reshape(weight.shape)
            weight._accumulate(grad_w)
        if x.requires_grad:
            grad_cols = (grad_mat @ w_mat.T).reshape(n, out_h, out_w, c_in, kernel, kernel)
            grad_cols = grad_cols.transpose(0, 3, 1, 2, 4, 5)  # (N, C, oh, ow, k, k)
            ph, pw = h + 2 * padding, w + 2 * padding
            grad_xp = np.zeros((n, c_in, ph, pw), dtype=np.float32)
            # col2im scatter-add: k*k fully-vectorized strided adds.
            for i in range(kernel):
                for j in range(kernel):
                    grad_xp[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += grad_cols[
                        :, :, :, :, i, j
                    ]
            if padding:
                grad_xp = grad_xp[:, :, padding:-padding, padding:-padding]
            x._accumulate(grad_xp)

    return Tensor._make(out_data, parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel: int, stride: int) -> Tensor:
    """Max pooling over non-padded windows of an ``(N, C, H, W)`` tensor."""
    if x.ndim != 4:
        raise ValueError(f"max_pool2d input must be (N, C, H, W), got {x.shape}")
    n, c, h, w = x.shape
    out_h = pool_output_size(h, kernel, stride)
    out_w = pool_output_size(w, kernel, stride)
    if out_h < 1 or out_w < 1:
        raise ValueError(f"pooling output collapsed: input {h}x{w}, kernel {kernel}, stride {stride}")

    windows = _windows(x.data, kernel, stride)  # (N, C, oh, ow, k, k)
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out_data = np.ascontiguousarray(out_data)

    def backward(grad: np.ndarray) -> None:
        grad_x = np.zeros((n, c, h, w), dtype=np.float32)
        ki, kj = np.divmod(arg, kernel)  # window-local coordinates of the max
        oi, oj = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
        rows = oi[None, None] * stride + ki
        cols_ = oj[None, None] * stride + kj
        nn, cc = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
        np.add.at(grad_x, (nn[..., None, None], cc[..., None, None], rows, cols_), grad)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int, stride: int) -> Tensor:
    """Average pooling over non-padded windows."""
    if x.ndim != 4:
        raise ValueError(f"avg_pool2d input must be (N, C, H, W), got {x.shape}")
    n, c, h, w = x.shape
    out_h = pool_output_size(h, kernel, stride)
    out_w = pool_output_size(w, kernel, stride)
    if out_h < 1 or out_w < 1:
        raise ValueError(f"pooling output collapsed: input {h}x{w}, kernel {kernel}, stride {stride}")

    windows = _windows(x.data, kernel, stride)
    out_data = windows.mean(axis=(-2, -1), dtype=np.float32)
    out_data = np.ascontiguousarray(out_data)
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        grad_x = np.zeros((n, c, h, w), dtype=np.float32)
        g = grad * scale
        for i in range(kernel):
            for j in range(kernel):
                grad_x[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += g
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dimensions: ``(N, C, H, W) -> (N, C)``."""
    if x.ndim != 4:
        raise ValueError(f"global_avg_pool2d input must be (N, C, H, W), got {x.shape}")
    return x.mean(axis=(2, 3))
