"""Reverse-mode automatic differentiation over NumPy arrays.

The design follows the classic tape-based pattern: every differentiable
operation produces a new :class:`Tensor` holding a closure that, given the
output gradient, accumulates gradients into its inputs.  ``backward()``
topologically sorts the tape and runs the closures once each.

All arithmetic is float32 — the numerical precision used by the paper's
PyTorch models — and every op is vectorized; the engine never iterates over
array elements in Python.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "concat", "stack"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether ops currently record the autograd tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions.

    NumPy broadcasting implicitly tiles operands; the adjoint of a tile is a
    sum, so gradients flowing into a broadcast operand must be summed over
    the axes that were expanded.
    """
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float32)
    return arr


class Tensor:
    """A float32 NumPy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like initial value; converted to ``float32``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op", "_grad_pool")
    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data: np.ndarray = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self._op: str = ""
        #: Workspace pool owning :attr:`grad` when the buffer was donated
        #: via :meth:`_accumulate_pooled`; :meth:`backward` releases it
        #: once the gradient has been consumed.
        self._grad_pool = None

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """A tensor of zeros."""
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """A tensor of ones."""
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        """Wrap an existing array (copied to float32 if needed)."""
        return Tensor(array, requires_grad=requires_grad)

    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None] | None,
        op: str,
    ) -> "Tensor":
        """Internal: build an op output, recording the tape if enabled."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._backward = backward
            out._prev = tuple(parents)
            out._op = op
        return out

    # -- basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        """Always ``float32``."""
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The raw array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad}, op={self._op or 'leaf'!r})"

    def __len__(self) -> int:
        return len(self.data)

    # -- gradient machinery ----------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer (defensive copy)."""
        if not self.requires_grad:
            return
        grad = grad.astype(np.float32, copy=False)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a float32 array the caller relinquishes (no copy).

        The donation twin of :meth:`_accumulate` for *freshly allocated*
        arrays (reduction outputs, GEMM results): instead of copying, the
        array itself becomes the gradient buffer.  The caller must not
        read or write it afterwards.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad

    def _accumulate_pooled(self, grad: np.ndarray, pool) -> None:
        """Accumulate a workspace buffer, donating it when possible.

        When this is the first gradient, the pooled scratch buffer is
        adopted as :attr:`grad` outright — no copy — and :meth:`backward`
        releases it back to ``pool`` after the tensor's own closure has
        consumed it.  Otherwise the buffer is added and released now.
        The caller must not touch ``grad`` afterwards in either case.
        """
        if not self.requires_grad:
            pool.release(grad)
            return
        if self.grad is None:
            self.grad = grad
            self._grad_pool = pool
        else:
            self.grad += grad
            pool.release(grad)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None
        self._grad_pool = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar outputs; required for
            non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    f"backward() without an explicit gradient needs a scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS: deep ResNets overflow Python's recursion limit.
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if node is not self and node._prev:
                    # Intermediate grads are not retained (PyTorch semantics);
                    # freeing them bounds peak memory of long training runs.
                    # Donated workspace buffers go back to their pool here —
                    # the closure above was this gradient's last reader.
                    if node._grad_pool is not None:
                        node._grad_pool.release(node.grad)
                        node._grad_pool = None
                    node.grad = None

    # -- arithmetic ops ----------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(_unbroadcast(-grad * self.data / (other.data**2), other.shape))

        return Tensor._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, "pow")

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        if self.ndim != 2 or other.ndim != 2:
            raise ValueError(f"matmul expects 2-D operands, got {self.shape} @ {other.shape}")
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            # Both products are fresh arrays — donate rather than copy.
            self._accumulate_owned(grad @ other.data.T)
            other._accumulate_owned(self.data.T @ grad)

        return Tensor._make(out_data, (self, other), backward, "matmul")

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over the given axes."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims, dtype=np.float32)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape))

        return Tensor._make(out_data, (self,), backward, "sum")

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over the given axes."""
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum along one axis (gradient flows to the argmax only)."""
        out_data = self.data.max(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis)
            mask = (self.data == out_data).astype(np.float32)
            # Split gradient equally among ties for a subgradient choice
            # that keeps the finite-difference check well behaved.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        data = out_data if keepdims else out_data.squeeze(axis)
        return Tensor._make(data, (self,), backward, "max")

    # -- shape ops ------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape, preserving element order."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        """Permute dimensions (all axes must be given)."""
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            buf = np.zeros_like(self.data)
            np.add.at(buf, index, grad)
            self._accumulate(buf)

        return Tensor._make(np.ascontiguousarray(out_data), (self,), backward, "getitem")

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out_data = np.pad(self.data, pad_width)
        p = padding

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[..., p:-p, p:-p])

        return Tensor._make(out_data, (self,), backward, "pad2d")

    # -- pointwise nonlinearities (core set; more in functional.py) ------------------

    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        out_data = np.maximum(self.data, 0.0)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor._make(out_data, (self,), None, "relu")
        from repro.tensor.workspace import active_pool

        pool = active_pool()
        # Float 0/1 mask in a pooled buffer (np.greater writes exact 0.0 /
        # 1.0, so grad * mask is bitwise-equal to grad * (data > 0)).
        mask = pool.acquire(self.data.shape)
        np.greater(self.data, 0.0, out=mask)

        def backward(grad: np.ndarray) -> None:
            # The mask buffer becomes the input gradient in place and is
            # donated; backward() releases it after the consumer closure.
            np.multiply(grad, mask, out=mask)
            self._accumulate_pooled(mask, pool)

        return Tensor._make(out_data, (self,), backward, "relu")

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward, "sqrt")

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at zero)."""
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to [low, high]; gradient is zero outside."""
        if low > high:
            raise ValueError(f"clip bounds are inverted: [{low}, {high}]")
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward, "clip")

    def split(self, sections: int, axis: int = 0) -> list["Tensor"]:
        """Split into equal sections along ``axis`` (differentiable)."""
        if self.shape[axis] % sections != 0:
            raise ValueError(
                f"axis {axis} of size {self.shape[axis]} does not divide into {sections} sections"
            )
        pieces = np.split(self.data, sections, axis=axis)
        size = pieces[0].shape[axis]
        outs: list[Tensor] = []
        for i, piece in enumerate(pieces):
            start = i * size

            def backward(grad: np.ndarray, start: int = start) -> None:
                buf = np.zeros_like(self.data)
                index: list[slice] = [slice(None)] * self.ndim
                index[axis] = slice(start, start + grad.shape[axis])
                buf[tuple(index)] = grad
                self._accumulate(buf)

            outs.append(Tensor._make(np.ascontiguousarray(piece), (self,), backward, "split"))
        return outs


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis (differentiable)."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes[:-1])

    def backward(grad: np.ndarray) -> None:
        for t, offset, size in zip(tensors, offsets, sizes):
            index: list[slice] = [slice(None)] * grad.ndim
            index[axis] = slice(int(offset), int(offset) + size)
            t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward, "concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            t._accumulate(np.take(grad, i, axis=axis))

    return Tensor._make(out_data, tensors, backward, "stack")
