"""A small, vectorized autograd engine over float32 NumPy arrays.

This subpackage replaces the paper's PyTorch dependency (see DESIGN.md,
Section 2).  It provides:

- :class:`~repro.tensor.tensor.Tensor` — reverse-mode autodiff over NumPy
  arrays with broadcasting-aware gradients;
- :mod:`~repro.tensor.functional` — activation, normalization and loss
  primitives;
- :mod:`~repro.tensor.conv_ops` — vectorized conv2d / pooling built on
  ``numpy.lib.stride_tricks.sliding_window_view`` (no per-pixel Python
  loops, per the HPC guide's vectorization idiom);
- :mod:`~repro.tensor.workspace` — pooled scratch buffers
  (:func:`use_workspaces`) that let conv/pool forward+backward reuse
  im2col/col2im allocations across training steps;
- :mod:`~repro.tensor.grad_check` — finite-difference gradient checking.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.workspace import WorkspacePool, active_pool, use_workspaces, workspaces_enabled
from repro.tensor.functional import (
    batch_norm_2d,
    cross_entropy_logits,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.tensor.conv_ops import (
    avg_pool2d,
    conv2d,
    global_avg_pool2d,
    im2col,
    im2col_shape,
    max_pool2d,
    pool_output_size,
)
from repro.tensor.grad_check import check_backend_consistency, check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "WorkspacePool",
    "use_workspaces",
    "active_pool",
    "workspaces_enabled",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy_logits",
    "batch_norm_2d",
    "conv2d",
    "im2col",
    "im2col_shape",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "pool_output_size",
    "check_gradients",
    "check_backend_consistency",
    "numerical_gradient",
]
