"""Finite-difference gradient verification.

Used by the test suite to certify every differentiable op against central
differences.  Checks run in float64 on a float32 engine, so tolerances are
necessarily loose (~1e-2 relative); ops still separate cleanly from broken
gradients, which err at O(1).
"""

from __future__ import annotations

import contextlib
from typing import Callable, ContextManager, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients", "check_backend_consistency"]


def numerical_gradient(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-2,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(inputs))`` w.r.t. one input.

    ``eps`` defaults to 1e-2: float32 arithmetic makes smaller steps
    noise-dominated.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(inputs).data.sum(dtype=np.float64))
        flat[i] = original - eps
        minus = float(fn(inputs).data.sum(dtype=np.float64))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    atol: float = 5e-2,
    rtol: float = 5e-2,
    eps: float = 1e-2,
) -> None:
    """Assert analytic gradients of ``sum(fn(inputs))`` match finite differences.

    Raises ``AssertionError`` with a per-input diagnostic on mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(inputs)
    out.sum().backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        assert t.grad is not None, f"input {i} received no gradient"
        expected = numerical_gradient(fn, inputs, i, eps=eps)
        actual = t.grad.astype(np.float64)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {worst:.4g}\n"
                f"analytic:\n{actual}\nnumeric:\n{expected}"
            )


def check_backend_consistency(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    contexts: Sequence[Callable[[], ContextManager]] = (contextlib.nullcontext,),
) -> None:
    """Assert ``fn`` is **bitwise identical** under each execution context.

    Used to certify substrate rewrites that must not change numerics —
    e.g. :func:`repro.tensor.workspace.use_workspaces` (pooled scratch
    buffers) against the default allocation-per-call path.  For every
    context factory the forward output and every input gradient of
    ``sum(fn(inputs))`` are computed; all runs must match the first one
    *exactly* (``np.array_equal``), not just within tolerance, because
    both paths are required to execute the same arithmetic on fully
    initialized buffers.

    Raises ``AssertionError`` naming the context index and the first
    diverging artifact on mismatch.
    """
    reference_out: np.ndarray | None = None
    reference_grads: list[np.ndarray | None] = []
    for ctx_index, make_context in enumerate(contexts):
        for t in inputs:
            t.zero_grad()
        with make_context():
            out = fn(inputs)
            out.sum().backward()
        grads = [None if t.grad is None else t.grad.copy() for t in inputs]
        if ctx_index == 0:
            reference_out = out.data.copy()
            reference_grads = grads
            continue
        assert reference_out is not None
        if not np.array_equal(out.data, reference_out):
            raise AssertionError(
                f"context {ctx_index} forward output differs bitwise from context 0 "
                f"(max abs diff {np.abs(out.data - reference_out).max():.4g})"
            )
        for i, (got, want) in enumerate(zip(grads, reference_grads)):
            if (got is None) != (want is None):
                raise AssertionError(f"context {ctx_index}: input {i} gradient presence differs")
            if got is not None and not np.array_equal(got, want):
                raise AssertionError(
                    f"context {ctx_index}: input {i} gradient differs bitwise from context 0 "
                    f"(max abs diff {np.abs(got - want).max():.4g})"
                )
