"""Neural-network functional primitives on :class:`~repro.tensor.Tensor`.

Everything here is expressed with numerically stable formulations
(log-sum-exp shifted by the row maximum, epsilon-guarded variances) and
hand-written backward closures, mirroring the operator set the paper's
PyTorch models rely on.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor, is_grad_enabled
from repro.tensor.workspace import active_pool

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy_logits",
    "batch_norm_2d",
    "linear",
    "dropout",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid with a stable two-branch evaluation."""
    data = x.data
    out_data = np.empty_like(data)
    pos = data >= 0
    out_data[pos] = 1.0 / (1.0 + np.exp(-data[pos]))
    ex = np.exp(data[~pos])
    out_data[~pos] = ex / (1.0 + ex)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward, "sigmoid")


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (x,), backward, "tanh")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis`` (stable: shifted by the max)."""
    shift = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shift).sum(axis=axis, keepdims=True))
    out_data = shift - logsumexp
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward, "log_softmax")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def cross_entropy_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between raw logits and integer class targets.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalized scores.
    targets:
        ``(N,)`` integer class indices in ``[0, C)``.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(f"targets shape {targets.shape} does not match logits {logits.shape}")
    if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
        raise ValueError("target class index out of range")
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=1)
    picked = log_probs[np.arange(n), targets]
    return -picked.sum() * (1.0 / n)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = x @ weight.transpose(1, 0)
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float, rng: np.ndarray | None = None, training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale by 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    generator = np.random.default_rng() if rng is None else rng
    mask = (generator.random(x.shape) >= p).astype(np.float32) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward, "dropout")


def batch_norm_2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over an ``(N, C, H, W)`` tensor.

    In training mode, normalizes by the batch statistics and updates the
    running buffers in place (PyTorch's exponential-moving-average
    convention); in eval mode, normalizes by the running buffers.

    Performance shape: the centred batch is computed once on pooled
    scratch (:func:`repro.tensor.workspace.active_pool`) and reused both
    for the one-pass variance and as ``x_hat``, so the op allocates only
    its output; the backward runs on one more pooled scratch buffer and
    releases ``x_hat`` when done.  When no gradient can flow, no closure
    is kept: in eval mode the per-channel scale/shift are folded into a
    single fused pass, and in training mode under ``no_grad`` (the BN
    recalibration path) the scratch is recycled immediately.
    """
    if x.ndim != 4:
        raise ValueError(f"batch_norm_2d expects (N, C, H, W), got shape {x.shape}")
    n, c, h, w = x.shape
    if gamma.shape != (c,) or beta.shape != (c,):
        raise ValueError(f"gamma/beta must have shape ({c},)")
    axes = (0, 2, 3)
    count = n * h * w

    needs_grad = is_grad_enabled() and (
        x.requires_grad or gamma.requires_grad or beta.requires_grad
    )
    pool = active_pool()

    if training:
        mean = x.data.mean(axis=axes, dtype=np.float32)
        # One-pass variance on pooled scratch: the centred batch is
        # computed once and reused as x_hat afterwards instead of
        # letting ``ndarray.var`` redo the centring internally.
        centred = pool.acquire(x.shape)
        np.subtract(x.data, mean[None, :, None, None], out=centred)
        sq = pool.acquire(x.shape)
        np.multiply(centred, centred, out=sq)
        var = sq.mean(axis=axes, dtype=np.float32)
        pool.release(sq)
        # Running buffers track the *unbiased* variance, as PyTorch does.
        unbiased = var * (count / max(count - 1, 1))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean.astype(np.float32)
        var = running_var.astype(np.float32)
        centred = None

    inv_std = 1.0 / np.sqrt(var + eps)

    if not training and not needs_grad:
        # Inference fast path: y = x * (gamma/std) + (beta - mean*gamma/std).
        scale = gamma.data * inv_std
        shift = beta.data - mean * scale
        out_data = x.data * scale[None, :, None, None]
        out_data += shift[None, :, None, None]
        return Tensor._make(out_data, (x, gamma, beta), None, "batch_norm_2d")

    # x_hat lives in pooled scratch; the backward closure releases it.
    if centred is None:
        centred = pool.acquire(x.shape)
        np.subtract(x.data, mean[None, :, None, None], out=centred)
    x_hat = centred
    x_hat *= inv_std[None, :, None, None]
    out_data = x_hat * gamma.data[None, :, None, None]
    out_data += beta.data[None, :, None, None]

    if not needs_grad:
        # Training-mode forward under no_grad (e.g. BN recalibration):
        # no closure will be kept, so recycle the scratch immediately.
        pool.release(x_hat)
        return Tensor._make(out_data, (x, gamma, beta), None, "batch_norm_2d")

    def backward(grad: np.ndarray) -> None:
        # One pooled full-tensor scratch carries the whole backward: the
        # parameter-gradient reductions double as the per-channel means
        # of the input gradient (gamma is per-channel, so it folds out
        # of both mean terms of the classic batch-norm backward).
        buf = pool.acquire(grad.shape)
        np.multiply(grad, x_hat, out=buf)
        sum_gx = buf.sum(axis=axes)  # == d(gamma); /count == mean(grad * x_hat)
        sum_g = grad.sum(axis=axes)  # == d(beta);  /count == mean(grad)
        # Fresh reduction outputs: donated, not copied.  They stay readable
        # below — nothing writes a parameter gradient before the optimizer.
        gamma._accumulate_owned(sum_gx)
        beta._accumulate_owned(sum_g)
        if x.requires_grad:
            scale = gamma.data * inv_std  # per-channel fold
            if training:
                # dL/dx = (grad - mean(grad) - x_hat * mean(grad*x_hat))
                #         * gamma * inv_std   (batch stats depend on x)
                np.multiply(x_hat, (sum_gx / count)[None, :, None, None], out=buf)
                buf += (sum_g / count)[None, :, None, None]
                np.subtract(grad, buf, out=buf)
                buf *= scale[None, :, None, None]
            else:
                np.multiply(grad, scale[None, :, None, None], out=buf)
            x._accumulate_pooled(buf, pool)
        else:
            pool.release(buf)
        # The tape runs each closure once; the normalized batch is spent.
        pool.release(x_hat)

    return Tensor._make(out_data, (x, gamma, beta), backward, "batch_norm_2d")
