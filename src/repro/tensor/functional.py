"""Neural-network functional primitives on :class:`~repro.tensor.Tensor`.

Everything here is expressed with numerically stable formulations
(log-sum-exp shifted by the row maximum, epsilon-guarded variances) and
hand-written backward closures, mirroring the operator set the paper's
PyTorch models rely on.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy_logits",
    "batch_norm_2d",
    "linear",
    "dropout",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid with a stable two-branch evaluation."""
    data = x.data
    out_data = np.empty_like(data)
    pos = data >= 0
    out_data[pos] = 1.0 / (1.0 + np.exp(-data[pos]))
    ex = np.exp(data[~pos])
    out_data[~pos] = ex / (1.0 + ex)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward, "sigmoid")


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (x,), backward, "tanh")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis`` (stable: shifted by the max)."""
    shift = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shift).sum(axis=axis, keepdims=True))
    out_data = shift - logsumexp
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward, "log_softmax")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def cross_entropy_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between raw logits and integer class targets.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalized scores.
    targets:
        ``(N,)`` integer class indices in ``[0, C)``.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(f"targets shape {targets.shape} does not match logits {logits.shape}")
    if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
        raise ValueError("target class index out of range")
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=1)
    picked = log_probs[np.arange(n), targets]
    return -picked.sum() * (1.0 / n)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = x @ weight.transpose(1, 0)
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float, rng: np.ndarray | None = None, training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale by 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    generator = np.random.default_rng() if rng is None else rng
    mask = (generator.random(x.shape) >= p).astype(np.float32) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward, "dropout")


def batch_norm_2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over an ``(N, C, H, W)`` tensor.

    In training mode, normalizes by the batch statistics and updates the
    running buffers in place (PyTorch's exponential-moving-average
    convention); in eval mode, normalizes by the running buffers.
    """
    if x.ndim != 4:
        raise ValueError(f"batch_norm_2d expects (N, C, H, W), got shape {x.shape}")
    n, c, h, w = x.shape
    if gamma.shape != (c,) or beta.shape != (c,):
        raise ValueError(f"gamma/beta must have shape ({c},)")
    axes = (0, 2, 3)
    count = n * h * w

    if training:
        mean = x.data.mean(axis=axes, dtype=np.float32)
        var = x.data.var(axis=axes, dtype=np.float32)
        # Running buffers track the *unbiased* variance, as PyTorch does.
        unbiased = var * (count / max(count - 1, 1))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean.astype(np.float32)
        var = running_var.astype(np.float32)

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out_data = x_hat * gamma.data[None, :, None, None] + beta.data[None, :, None, None]

    def backward(grad: np.ndarray) -> None:
        g = gamma.data[None, :, None, None]
        gamma._accumulate((grad * x_hat).sum(axis=axes))
        beta._accumulate(grad.sum(axis=axes))
        if not x.requires_grad:
            return
        if training:
            # Full batch-norm backward: the batch statistics depend on x.
            dxhat = grad * g
            term1 = dxhat
            term2 = dxhat.mean(axis=axes, keepdims=True)
            term3 = x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
            x._accumulate((term1 - term2 - term3) * inv_std[None, :, None, None])
        else:
            x._accumulate(grad * g * inv_std[None, :, None, None])

    return Tensor._make(out_data, (x, gamma, beta), backward, "batch_norm_2d")
