"""Report builders for the paper's tables.

Each builder returns plain dict rows (renderable with
:func:`repro.utils.tables.render_table`) so benchmarks can both print and
assert on them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

from repro.core.objectives import OBJECTIVES
from repro.core.pipeline import PipelineResult
from repro.pareto.analysis import ParetoAnalysis

__all__ = [
    "objective_ranges_table",
    "pareto_table",
    "baseline_table",
    "per_combination_fronts",
]

_CONFIG_COLUMNS = (
    "kernel_size",
    "stride",
    "padding",
    "pool_choice",
    "kernel_size_pool",
    "stride_pool",
    "initial_output_feature",
)


def objective_ranges_table(result: PipelineResult) -> list[dict]:
    """Table 3: min/max of each objective over the valid outcomes."""
    ranges = result.pareto.ranges()
    rows = []
    for spec in OBJECTIVES:
        lo, hi = ranges[spec.key]
        rows.append({"objective": f"{spec.display} ({spec.unit})", "min": lo, "max": hi})
    return rows


def _config_row(record: Mapping) -> dict:
    row = {
        "channels": record["channels"],
        "batch": record["batch"],
        "accuracy": round(float(record["accuracy"]), 2),
        "latency_ms": round(float(record["latency_ms"]), 2),
        "lat_std": round(float(record["lat_std"]), 2),
        "memory_mb": round(float(record["memory_mb"]), 2),
    }
    for col in _CONFIG_COLUMNS:
        row[col] = record[col]
    return row


def pareto_table(result: PipelineResult) -> list[dict]:
    """Table 4: the non-dominated solutions with their full configurations."""
    return [_config_row(r) for r in result.front_records()]


def baseline_table(records: Sequence) -> list[dict]:
    """Table 5: the six stock ResNet-18 variants."""
    rows = []
    for record in records:
        rows.append(
            {
                "channels": record.config.channels,
                "batch": record.config.batch,
                "accuracy": round(record.accuracy, 2),
                "latency_ms": round(record.latency_ms, 2),
                "lat_std": round(record.lat_std, 2),
                "memory_mb": round(record.memory_mb, 2),
            }
        )
    return rows


def per_combination_fronts(result: PipelineResult) -> dict[tuple[int, int], list[dict]]:
    """Pareto front of each input combination separately.

    The paper's five Table-4 rows span four different input combinations;
    analyzing each combination's own front (then inspecting the union)
    reproduces pooled solutions like Table 4 rows 3/5, which the *global*
    front excludes under the standard dominance definition (see
    EXPERIMENTS.md).
    """
    groups: dict[tuple[int, int], list[dict]] = defaultdict(list)
    for record in result.records:
        groups[(record["channels"], record["batch"])].append(record)
    analysis = ParetoAnalysis(objectives=[o.pair for o in OBJECTIVES])
    fronts: dict[tuple[int, int], list[dict]] = {}
    for key in sorted(groups):
        front = analysis.front_records(groups[key])
        fronts[key] = [_config_row(r) for r in sorted(front, key=lambda r: -r["accuracy"])]
    return fronts
