"""Plot-library-free figure rendering (ASCII).

The repository has no matplotlib; these renderers turn figure *data*
(:mod:`repro.core.figures`) into terminal graphics so the benches and
examples can show Figure 3's scatter and Figure 4's radar values without
any plotting dependency.
"""

from __future__ import annotations

import numpy as np

from repro.core.figures import RadarSolution

__all__ = ["ascii_scatter", "ascii_radar_bars"]


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    highlight: np.ndarray | None = None,
    width: int = 72,
    height: int = 22,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a 2-D scatter as ASCII ('.' = point, 'O' = highlighted).

    Highlighted points are drawn last so they are never hidden; the y axis
    increases upward, matching conventional plots.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of the same length")
    if x.size == 0:
        raise ValueError("nothing to plot")
    mask = np.zeros(x.size, dtype=bool) if highlight is None else np.asarray(highlight, dtype=bool)

    def scaled(values: np.ndarray, bins: int) -> np.ndarray:
        lo, hi = values.min(), values.max()
        span = hi - lo if hi > lo else 1.0
        return np.clip(((values - lo) / span * (bins - 1)).astype(int), 0, bins - 1)

    cols = scaled(x, width)
    rows = scaled(y, height)
    canvas = [[" "] * width for _ in range(height)]
    for c, r in zip(cols[~mask], rows[~mask]):
        canvas[height - 1 - r][c] = "."
    for c, r in zip(cols[mask], rows[mask]):
        canvas[height - 1 - r][c] = "O"

    top = f"{y.max():.4g}".rjust(10)
    bottom = f"{y.min():.4g}".rjust(10)
    lines = [f"{y_label} (O = non-dominated)"]
    for i, row in enumerate(canvas):
        prefix = top if i == 0 else (bottom if i == height - 1 else " " * 10)
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * 11 + "-" * width)
    lines.append(" " * 11 + f"{x.min():.4g}".ljust(width - 12) + f"{x.max():.4g}")
    lines.append(" " * 11 + x_label)
    return "\n".join(lines) + "\n"


def ascii_radar_bars(solutions: list[RadarSolution], width: int = 40) -> str:
    """Render radar polygons as per-axis bar charts, one block per model.

    A faithful radar needs trigonometry and a canvas; per-axis horizontal
    bars communicate the same normalized values unambiguously in text.
    """
    if not solutions:
        return "(no solutions)\n"
    lines: list[str] = []
    for sol in solutions:
        group = "pool" if sol.pooled else "no-pool"
        lines.append(f"{sol.label}  [{group}]")
        for axis, value in zip(sol.axes, sol.values):
            filled = int(round(value * width))
            bar = "#" * filled + "-" * (width - filled)
            lines.append(f"  {axis:>22s} |{bar}| {value:.2f}")
        lines.append("")
    return "\n".join(lines)
