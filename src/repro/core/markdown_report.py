"""Markdown report generation for a sweep.

Renders one self-contained markdown document — trial accounting, Table 3
ranges, the Table-4 front, per-combination fronts, and the Table-5
baseline — each next to the paper's reported values.  ``repro-nas report``
writes it to disk; EXPERIMENTS.md in this repository is the curated
version of this artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.core.paper import TABLE3_RANGES, TABLE4_PARETO, TABLE5_BASELINE, TOTAL_TRIALS, VALID_OUTCOMES
from repro.core.pipeline import PipelineResult, evaluate_baselines
from repro.core.report import baseline_table, pareto_table, per_combination_fronts

__all__ = ["sweep_markdown", "write_sweep_report"]


def _md_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Rows as a GitHub-flavored markdown table."""
    if not rows:
        return "*(empty)*\n"
    columns = list(columns) if columns is not None else list(rows[0])
    head = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            cells.append(f"{value:.2f}" if isinstance(value, float) else str(value))
        body.append("| " + " | ".join(cells) + " |")
    return "\n".join([head, rule, *body]) + "\n"


_FRONT_COLUMNS = ("channels", "batch", "accuracy", "latency_ms", "lat_std", "memory_mb",
                  "kernel_size", "stride", "padding", "pool_choice", "initial_output_feature")


def _fault_tolerance_section(result: PipelineResult) -> list[str]:
    """Retry/failure/degradation accounting from the trial records.

    Computed from the store itself (``attempts`` / ``error_kind`` /
    ``skipped_devices`` are persisted per record), so the section also
    renders correctly for stores reloaded from disk; quarantined-line
    counts come from the store's last crash-safe ``load``.
    """
    records = result.store.records()
    retried = [r for r in records if r.attempts > 1]
    recovered = sum(1 for r in retried if r.ok)
    failures: dict[str, int] = {}
    for r in records:
        if not r.ok:
            kind = r.error_kind or "failed"
            failures[kind] = failures.get(kind, 0) + 1
    skipped_devices = sum(len(r.skipped_devices) for r in records)
    quarantined = len(getattr(result.store, "quarantined", ()))
    parts = ["\n## Fault tolerance\n"]
    rows = [
        {"quantity": "trials retried", "value": len(retried)},
        {"quantity": "extra attempts", "value": sum(r.attempts - 1 for r in retried)},
        {"quantity": "recovered by retry", "value": recovered},
        {"quantity": "deadline exceeded", "value": failures.get("deadline", 0)},
        {"quantity": "device predictions skipped", "value": skipped_devices},
        {"quantity": "store lines quarantined", "value": quarantined},
    ]
    rows.extend(
        {"quantity": f"failed ({kind})", "value": count}
        for kind, count in sorted(failures.items())
    )
    parts.append(_md_table(rows))
    return parts


def sweep_markdown(result: PipelineResult, include_baseline: bool = True) -> str:
    """The full markdown report for one sweep result."""
    parts: list[str] = ["# Sweep report (paper vs measured)\n"]

    parts.append("## Trial accounting\n")
    parts.append(_md_table([
        {"quantity": "launched", "measured": result.launched, "paper": TOTAL_TRIALS},
        {"quantity": "valid outcomes", "measured": result.valid_outcomes, "paper": VALID_OUTCOMES},
    ]))

    parts.extend(_fault_tolerance_section(result))

    parts.append("\n## Objective ranges (Table 3)\n")
    ranges = result.pareto.ranges()
    rows = []
    for key, (paper_lo, paper_hi) in TABLE3_RANGES.items():
        lo, hi = ranges[key]
        rows.append({"objective": key, "measured_min": round(lo, 2), "measured_max": round(hi, 2),
                     "paper_min": paper_lo, "paper_max": paper_hi})
    parts.append(_md_table(rows))

    parts.append("\n## Non-dominated solutions (Table 4)\n")
    parts.append(_md_table(pareto_table(result), _FRONT_COLUMNS))
    parts.append("\nPaper's reported rows:\n")
    parts.append(_md_table(TABLE4_PARETO, _FRONT_COLUMNS))

    parts.append("\n## Per-input-combination fronts\n")
    for (channels, batch), rows_ in per_combination_fronts(result).items():
        parts.append(f"\n### channels={channels}, batch={batch} ({len(rows_)} members)\n")
        parts.append(_md_table(rows_[:3], _FRONT_COLUMNS))

    if include_baseline:
        parts.append("\n## Stock ResNet-18 variants (Table 5)\n")
        rows = baseline_table(evaluate_baselines())
        paper = {(r["channels"], r["batch"]): r for r in TABLE5_BASELINE}
        for row in rows:
            ref = paper[(row["channels"], row["batch"])]
            row["paper_accuracy"] = ref["accuracy"]
            row["paper_latency_ms"] = ref["latency_ms"]
        parts.append(_md_table(rows))

    return "\n".join(parts)


def write_sweep_report(result: PipelineResult, path: str | Path, include_baseline: bool = True) -> int:
    """Write the markdown report; returns the byte size."""
    path = Path(path)
    path.write_text(sweep_markdown(result, include_baseline=include_baseline), encoding="utf-8")
    return path.stat().st_size
