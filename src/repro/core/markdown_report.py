"""Markdown report generation for a sweep.

Renders one self-contained markdown document — trial accounting, Table 3
ranges, the Table-4 front, per-combination fronts, and the Table-5
baseline — each next to the paper's reported values.  ``repro-nas report``
writes it to disk; EXPERIMENTS.md in this repository is the curated
version of this artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.core.paper import TABLE3_RANGES, TABLE4_PARETO, TABLE5_BASELINE, TOTAL_TRIALS, VALID_OUTCOMES
from repro.core.pipeline import PipelineResult, evaluate_baselines
from repro.core.report import baseline_table, pareto_table, per_combination_fronts

__all__ = ["sweep_markdown", "write_sweep_report"]


def _md_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Rows as a GitHub-flavored markdown table."""
    if not rows:
        return "*(empty)*\n"
    columns = list(columns) if columns is not None else list(rows[0])
    head = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            cells.append(f"{value:.2f}" if isinstance(value, float) else str(value))
        body.append("| " + " | ".join(cells) + " |")
    return "\n".join([head, rule, *body]) + "\n"


_FRONT_COLUMNS = ("channels", "batch", "accuracy", "latency_ms", "lat_std", "memory_mb",
                  "kernel_size", "stride", "padding", "pool_choice", "initial_output_feature")


def _fault_tolerance_section(result: PipelineResult) -> list[str]:
    """Retry/failure/degradation accounting from the trial records.

    Computed from the store itself (``attempts`` / ``error_kind`` /
    ``skipped_devices`` are persisted per record), so the section also
    renders correctly for stores reloaded from disk; quarantined-line
    counts come from the store's last crash-safe ``load``.
    """
    records = result.store.records()
    retried = [r for r in records if r.attempts > 1]
    recovered = sum(1 for r in retried if r.ok)
    failures: dict[str, int] = {}
    for r in records:
        if not r.ok:
            kind = r.error_kind or "failed"
            failures[kind] = failures.get(kind, 0) + 1
    skipped_devices = sum(len(r.skipped_devices) for r in records)
    quarantined = len(getattr(result.store, "quarantined", ()))
    parts = ["\n## Fault tolerance\n"]
    rows = [
        {"quantity": "trials retried", "value": len(retried)},
        {"quantity": "extra attempts", "value": sum(r.attempts - 1 for r in retried)},
        {"quantity": "recovered by retry", "value": recovered},
        {"quantity": "deadline exceeded", "value": failures.get("deadline", 0)},
        {"quantity": "device predictions skipped", "value": skipped_devices},
        {"quantity": "store lines quarantined", "value": quarantined},
    ]
    rows.extend(
        {"quantity": f"failed ({kind})", "value": count}
        for kind, count in sorted(failures.items())
    )
    parts.append(_md_table(rows))
    return parts


def _kernel_energy_section(device: str = "cortexA76cpu") -> list[str]:
    """TEA-DNN-style kernel-variant energy what-if for the deployment tile.

    Prices the Pareto-winner architecture at the 24x24 deployment tile
    under the three kernel families the deploy compiler can emit (fp32
    im2col, Winograd on eligible convs, the int8 integer path), using
    the per-variant factors of
    :data:`repro.latency.energy.VARIANT_COST_FACTORS`.  Static estimate
    only — the compile-time autotuner picks per layer by measurement.
    """
    from repro.deploy.winograd import WINOGRAD_VARIANT, winograd_eligible
    from repro.graph.ir import OpType
    from repro.graph.trace import trace_model
    from repro.latency.energy import energy_report
    from repro.nas.config import ModelConfig
    from repro.nn.resnet import build_model

    config = ModelConfig(channels=5, batch=8, kernel_size=3, stride=2, padding=1,
                         pool_choice=0, kernel_size_pool=3, stride_pool=2,
                         initial_output_feature=32)
    graph = trace_model(build_model(config), input_hw=(24, 24))
    winograd = {n.name: WINOGRAD_VARIANT for n in graph.nodes()
                if n.op is OpType.CONV and winograd_eligible(n.attrs)}
    integer = {"conv-bn-relu": "conv.im2col.int8", "conv-bn": "conv.im2col.int8",
               "fc": "gemm.int8", "add-relu": "add.int8", "add": "add.int8",
               "maxpool": "maxpool.u8", "global-avgpool": "gap.u8", "relu": "relu.u8"}
    fp32_rows = energy_report(graph, device)
    int8_map = {r["kernel"]: integer.get(r["kernel_type"], r["variant"]) for r in fp32_rows}
    fp32_total = sum(r["energy_mj"] for r in fp32_rows)
    scenarios = [("fp32 im2col (compiler default)", {}),
                 ("Winograd F(2x2,3x3) on stride-1 3x3 convs", winograd),
                 ("int8 integer path", int8_map)]
    rows = []
    for label, variants in scenarios:
        total = sum(r["energy_mj"] for r in energy_report(graph, device, variants=variants))
        rows.append({"kernel selection": label, "energy_mj": round(total, 3),
                     "vs_fp32": f"{total / fp32_total:.2f}x"})
    parts = ["\n## Kernel variants & energy (deployment tile)\n"]
    parts.append(f"Estimated dynamic energy per inference on `{device}` at the "
                 "24x24 tile, by kernel selection (library extension — the "
                 "paper reports no energy figures):\n")
    parts.append(_md_table(rows))
    parts.append("\nThe deploy compiler's autotuner selects per layer by "
                 "micro-benchmark (`repro-nas infer --quantized` prints the "
                 "chosen variants with per-kernel energy).\n")
    return parts


def sweep_markdown(result: PipelineResult, include_baseline: bool = True) -> str:
    """The full markdown report for one sweep result."""
    parts: list[str] = ["# Sweep report (paper vs measured)\n"]

    parts.append("## Trial accounting\n")
    parts.append(_md_table([
        {"quantity": "launched", "measured": result.launched, "paper": TOTAL_TRIALS},
        {"quantity": "valid outcomes", "measured": result.valid_outcomes, "paper": VALID_OUTCOMES},
    ]))

    parts.extend(_fault_tolerance_section(result))

    parts.append("\n## Objective ranges (Table 3)\n")
    ranges = result.pareto.ranges()
    rows = []
    for key, (paper_lo, paper_hi) in TABLE3_RANGES.items():
        lo, hi = ranges[key]
        rows.append({"objective": key, "measured_min": round(lo, 2), "measured_max": round(hi, 2),
                     "paper_min": paper_lo, "paper_max": paper_hi})
    parts.append(_md_table(rows))

    parts.append("\n## Non-dominated solutions (Table 4)\n")
    parts.append(_md_table(pareto_table(result), _FRONT_COLUMNS))
    parts.append("\nPaper's reported rows:\n")
    parts.append(_md_table(TABLE4_PARETO, _FRONT_COLUMNS))

    parts.extend(_kernel_energy_section())

    parts.append("\n## Per-input-combination fronts\n")
    for (channels, batch), rows_ in per_combination_fronts(result).items():
        parts.append(f"\n### channels={channels}, batch={batch} ({len(rows_)} members)\n")
        parts.append(_md_table(rows_[:3], _FRONT_COLUMNS))

    if include_baseline:
        parts.append("\n## Stock ResNet-18 variants (Table 5)\n")
        rows = baseline_table(evaluate_baselines())
        paper = {(r["channels"], r["batch"]): r for r in TABLE5_BASELINE}
        for row in rows:
            ref = paper[(row["channels"], row["batch"])]
            row["paper_accuracy"] = ref["accuracy"]
            row["paper_latency_ms"] = ref["latency_ms"]
        parts.append(_md_table(rows))

    return "\n".join(parts)


def write_sweep_report(result: PipelineResult, path: str | Path, include_baseline: bool = True) -> int:
    """Write the markdown report; returns the byte size."""
    path = Path(path)
    path.write_text(sweep_markdown(result, include_baseline=include_baseline), encoding="utf-8")
    return path.stat().st_size
