"""`HwNasPipeline` — the paper's full workflow as one object.

Composes: search space (Fig. 2) -> NAS sweep with failure injection
(Section 3.2) -> 4-device latency prediction (Section 3.3) -> onnxlite
memory measurement -> 3-objective Pareto analysis (Section 3.4).

:func:`run_paper_sweep` is the one-call reproduction of the paper's
Section-4 experiment (1,728 launched / 1,717 valid trials), used by the
Table-3/4 and Figure-3/4 benchmarks.  Its result is cached per process
because five benches share the same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.nas.config import ModelConfig
from repro.nas.evaluators import AccuracyEvaluator
from repro.nas.experiment import Experiment, measure_architecture
from repro.nas.failures import FailureInjector
from repro.nas.searchspace import DEFAULT_SPACE, SearchSpace, enumerate_input_combinations
from repro.nas.storage import TrialStore
from repro.nas.strategies import GridSearch, SearchStrategy
from repro.nas.surrogate import SurrogateEvaluator
from repro.nas.trial import TrialRecord
from repro.pareto.analysis import ParetoAnalysis, ParetoResult
from repro.core.objectives import OBJECTIVES

__all__ = ["HwNasPipeline", "PipelineResult", "run_paper_sweep", "evaluate_baselines"]


@dataclass
class PipelineResult:
    """Everything a pipeline run produces."""

    store: TrialStore
    launched: int
    valid_outcomes: int
    pareto: ParetoResult
    records: list[dict]

    def front_records(self) -> list[dict]:
        """Non-dominated trial records, highest accuracy first."""
        rows = [self.records[i] for i in self.pareto.front_indices]
        return sorted(rows, key=lambda r: -r["accuracy"])


class HwNasPipeline:
    """Hardware-aware NAS with Pareto post-analysis.

    Parameters
    ----------
    evaluator:
        Accuracy backend; defaults to the calibrated surrogate.
    space:
        Search space; defaults to the paper's Figure-2 grid.
    strategy:
        Search strategy; defaults to the paper's exhaustive grid.
    failure_injector:
        Trial-failure model; ``FailureInjector.paper_mode()`` reproduces
        the 1,717/1,728 accounting.
    input_hw:
        Patch size for latency/memory measurement (paper: 100x100).
    """

    def __init__(
        self,
        evaluator: AccuracyEvaluator | None = None,
        space: SearchSpace = DEFAULT_SPACE,
        strategy: SearchStrategy | None = None,
        failure_injector: FailureInjector | None = None,
        input_hw: tuple[int, int] = (100, 100),
    ) -> None:
        self.space = space
        self.evaluator = evaluator if evaluator is not None else SurrogateEvaluator()
        self.strategy = strategy if strategy is not None else GridSearch(space)
        self.failure_injector = failure_injector
        self.input_hw = input_hw

    def run(self, budget: int | None = None) -> PipelineResult:
        """Run the sweep and the Pareto analysis."""
        budget = budget if budget is not None else self.space.total_configurations()
        experiment = Experiment(
            evaluator=self.evaluator,
            strategy=self.strategy,
            failure_injector=self.failure_injector,
            input_hw=self.input_hw,
        )
        outcome = experiment.run(budget=budget)
        records = outcome.store.analysis_records()
        analysis = ParetoAnalysis(objectives=[o.pair for o in OBJECTIVES])
        return PipelineResult(
            store=outcome.store,
            launched=outcome.launched,
            valid_outcomes=outcome.succeeded,
            pareto=analysis.run(records),
            records=records,
        )


@lru_cache(maxsize=4)
def run_paper_sweep(seed: int = 0, noise_sigma: float = 0.25) -> PipelineResult:
    """The paper's Section-4 sweep (cached per process).

    1,728 grid trials over the Figure-2 space with paper-mode failure
    injection, surrogate accuracy, calibrated 4-device latency prediction
    and onnxlite memory measurement.
    """
    pipeline = HwNasPipeline(
        evaluator=SurrogateEvaluator(seed=seed, noise_sigma=noise_sigma),
        failure_injector=FailureInjector.paper_mode(seed=seed),
    )
    return pipeline.run()


def evaluate_baselines(
    evaluator: AccuracyEvaluator | None = None,
    combinations: Sequence[tuple[int, int]] | None = None,
    input_hw: tuple[int, int] = (100, 100),
) -> list[TrialRecord]:
    """Evaluate the stock ResNet-18 on the six input variants (Table 5).

    The default evaluator is noise-free: Table 5 characterizes the fixed
    baseline architecture, so the reproduction reports the surrogate's
    expected accuracies rather than one noisy draw per variant.
    """
    evaluator = evaluator if evaluator is not None else SurrogateEvaluator(noise_sigma=0.0, fold_sigma=0.0)
    combos = list(combinations) if combinations is not None else enumerate_input_combinations()
    records: list[TrialRecord] = []
    for trial_id, (channels, batch) in enumerate(combos):
        config = ModelConfig.baseline(channels=channels, batch=batch)
        metrics = measure_architecture(config, input_hw=input_hw)
        result = evaluator.evaluate(config)
        records.append(
            TrialRecord(
                trial_id=trial_id,
                config=config,
                accuracy=result.accuracy,
                fold_accuracies=result.fold_accuracies,
                latency_ms=metrics.latency_ms,
                lat_std=metrics.lat_std,
                per_device_ms=metrics.per_device_ms,
                memory_mb=metrics.memory_mb,
                param_count=metrics.param_count,
                flops=metrics.flops,
            )
        )
    return records
