"""Figure-data generators (the repository is plot-library-free; each
generator returns the numbers a plotting frontend would draw, and the
benches print them as text).

- Figure 1: the ResNet-18 architecture with 5- vs 7-channel inputs;
- Figure 2: the search-space structure and its cardinality;
- Figure 3: the 3-D objective scatter with the Pareto front highlighted;
- Figure 4: radar-plot axes for the non-dominated solutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import PipelineResult
from repro.data.dataset import CHANNEL_NAMES_5, CHANNEL_NAMES_7
from repro.graph.trace import trace_model
from repro.nas.searchspace import SearchSpace, DEFAULT_SPACE
from repro.nn.resnet import SearchableResNet18, build_baseline_resnet18
from repro.pareto.normalize import normalize_minmax

__all__ = [
    "architecture_figure",
    "searchspace_figure",
    "pareto_scatter_figure",
    "radar_figure",
    "RadarSolution",
]


def architecture_figure(model: SearchableResNet18 | None = None, input_hw: tuple[int, int] = (100, 100)) -> dict:
    """Figure 1: layer stack of the (baseline) model for both channel sets.

    Returns per-layer rows (name, op, output shape, params) plus the two
    channel stacks.
    """
    model = model if model is not None else build_baseline_resnet18(in_channels=5)
    graph = trace_model(model, input_hw=input_hw)
    layers = [
        {
            "name": node.name,
            "op": node.op.value,
            "out_shape": "x".join(map(str, node.out_shape)),
            "params": node.params,
        }
        for node in graph.topological()
    ]
    return {
        "channels_5": list(CHANNEL_NAMES_5),
        "channels_7": list(CHANNEL_NAMES_7),
        "layers": layers,
        "total_params": graph.total_params(),
    }


def searchspace_figure(space: SearchSpace = DEFAULT_SPACE) -> dict:
    """Figure 2: every knob with its choices plus the cardinality ladder."""
    knobs = {name: list(getattr(space, name)) for name in space._ARCH_FIELDS}
    return {
        "knobs": knobs,
        "input_combinations": [
            {"channels": c, "batch": b}
            for c in space.channels
            for b in space.batches
        ],
        "architectures_per_combination": space.architectures_per_combination(),
        "unique_architectures_per_combination": space.unique_architectures_per_combination(),
        "total_configurations": space.total_configurations(),
    }


def pareto_scatter_figure(result: PipelineResult) -> dict:
    """Figure 3: normalized 3-D point cloud + the red (front) mask.

    Axes are normalized within their observed ranges, as the paper does
    'to emphasize the connections among the non-dominated solutions'.
    """
    values = result.pareto.values
    normalized = normalize_minmax(values)
    mask = np.zeros(len(values), dtype=bool)
    mask[result.pareto.front_indices] = True
    return {
        "axes": list(result.pareto.objective_keys),
        "points": values,
        "points_normalized": normalized,
        "front_mask": mask,
        "n_points": int(len(values)),
        "n_front": int(mask.sum()),
    }


@dataclass
class RadarSolution:
    """One radar polygon: per-axis normalized values plus its group."""

    label: str
    pooled: bool  # green circles = with pooling, red = without (paper legend)
    axes: list[str] = field(default_factory=list)
    values: list[float] = field(default_factory=list)


_RADAR_AXES = (
    "accuracy",
    "latency_ms",
    "memory_mb",
    "kernel_size",
    "stride",
    "padding",
    "kernel_size_pool",
    "stride_pool",
    "initial_output_feature",
)


def radar_figure(result: PipelineResult) -> list[RadarSolution]:
    """Figure 4: normalized config+objective axes per non-dominated model."""
    front = result.front_records()
    if not front:
        return []
    matrix = np.array([[float(rec[a]) for a in _RADAR_AXES] for rec in front])
    normalized = normalize_minmax(matrix)
    solutions = []
    for i, rec in enumerate(front):
        solutions.append(
            RadarSolution(
                label=f"ch{rec['channels']}-b{rec['batch']}-acc{rec['accuracy']:.2f}",
                pooled=bool(rec["pool_choice"]),
                axes=list(_RADAR_AXES),
                values=[float(v) for v in normalized[i]],
            )
        )
    return solutions
