"""The paper's reported results, as structured constants.

Every benchmark prints its reproduced rows next to these reference values
so 'paper vs measured' is visible in the output and recorded in
EXPERIMENTS.md.  Sources: SC-W 2023 paper, Tables 1-5 and Section 4.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_REGIONS",
    "TABLE2_PREDICTORS",
    "TABLE3_RANGES",
    "TABLE4_PARETO",
    "TABLE5_BASELINE",
    "TOTAL_TRIALS",
    "VALID_OUTCOMES",
    "CONFIGS_PER_COMBINATION",
    "REFERENCE_ACCURACY_RANGE",
]

#: Table 1 — data sources and study regions.
TABLE1_REGIONS = [
    {"location": "Nebraska", "dem_source": "Nebraska Department of Natural Resource",
     "dem_resolution": "1m", "true": 2022, "false": 2022, "total": 4044},
    {"location": "Illinois", "dem_source": "Illinois Geospatial Data Clearinghouse",
     "dem_resolution": "0.3m", "true": 1011, "false": 1011, "total": 2022},
    {"location": "North Dakota", "dem_source": "North Dakota GIS Hub Data Portal",
     "dem_resolution": "0.61m", "true": 613, "false": 613, "total": 1226},
    {"location": "California", "dem_source": "USGS",
     "dem_resolution": "1m", "true": 2388, "false": 2388, "total": 4776},
]

#: Table 2 — nn-Meter predictor hardware and +-10% accuracy.
TABLE2_PREDICTORS = [
    {"hardware_name": "cortexA76cpu", "device": "Pixel4", "framework": "TFLite v2.1",
     "processor": "CortexA76 CPU", "accuracy": 99.00},
    {"hardware_name": "adreno640gpu", "device": "Mi9", "framework": "TFLite v2.1",
     "processor": "Adreno 640 GPU", "accuracy": 99.10},
    {"hardware_name": "adreno630gpu", "device": "Pixel3XL", "framework": "TFLite v2.1",
     "processor": "Adreno 630 GPU", "accuracy": 99.00},
    {"hardware_name": "myriadvpu", "device": "Intel Movidius NCS2", "framework": "OpenVINO2019R2",
     "processor": "Myriad VPU", "accuracy": 83.40},
]

#: Table 3 — objective value ranges over the 1,717 valid outcomes.
TABLE3_RANGES = {
    "accuracy": (76.19, 96.13),
    "latency_ms": (8.13, 249.56),
    "memory_mb": (11.18, 44.69),
}

#: Table 4 — the five reported non-dominated solutions.
#: NOTE: rows 3 and 5 (pool_choice=1) are *dominated* by rows 1 and 4
#: respectively under the standard Pareto definition applied to the
#: table's own values (equal memory, worse accuracy and latency); see
#: EXPERIMENTS.md for the discussion of this inconsistency.
TABLE4_PARETO = [
    {"channels": 7, "batch": 16, "accuracy": 96.13, "latency_ms": 8.19, "lat_std": 4.59,
     "memory_mb": 11.18, "kernel_size": 3, "stride": 2, "padding": 1, "pool_choice": 0,
     "kernel_size_pool": 3, "stride_pool": 2, "initial_output_feature": 32},
    {"channels": 5, "batch": 16, "accuracy": 95.45, "latency_ms": 8.23, "lat_std": 4.66,
     "memory_mb": 11.18, "kernel_size": 3, "stride": 2, "padding": 1, "pool_choice": 0,
     "kernel_size_pool": 2, "stride_pool": 2, "initial_output_feature": 32},
    {"channels": 7, "batch": 8, "accuracy": 95.79, "latency_ms": 18.30, "lat_std": 16.02,
     "memory_mb": 11.18, "kernel_size": 3, "stride": 2, "padding": 1, "pool_choice": 1,
     "kernel_size_pool": 3, "stride_pool": 2, "initial_output_feature": 32},
    {"channels": 5, "batch": 8, "accuracy": 94.68, "latency_ms": 8.13, "lat_std": 4.53,
     "memory_mb": 11.18, "kernel_size": 3, "stride": 2, "padding": 1, "pool_choice": 0,
     "kernel_size_pool": 3, "stride_pool": 2, "initial_output_feature": 32},
    {"channels": 5, "batch": 8, "accuracy": 93.97, "latency_ms": 18.24, "lat_std": 15.96,
     "memory_mb": 11.18, "kernel_size": 3, "stride": 2, "padding": 1, "pool_choice": 1,
     "kernel_size_pool": 3, "stride_pool": 1, "initial_output_feature": 32},
]

#: Table 5 — the six stock ResNet-18 benchmark variants.
TABLE5_BASELINE = [
    {"channels": 5, "batch": 8, "accuracy": 92.90, "latency_ms": 31.91, "lat_std": 20.36, "memory_mb": 44.71},
    {"channels": 5, "batch": 16, "accuracy": 93.60, "latency_ms": 31.91, "lat_std": 20.36, "memory_mb": 44.71},
    {"channels": 5, "batch": 32, "accuracy": 89.67, "latency_ms": 31.91, "lat_std": 20.36, "memory_mb": 44.71},
    {"channels": 7, "batch": 8, "accuracy": 94.76, "latency_ms": 32.46, "lat_std": 20.96, "memory_mb": 44.73},
    {"channels": 7, "batch": 16, "accuracy": 95.37, "latency_ms": 32.46, "lat_std": 20.96, "memory_mb": 44.73},
    {"channels": 7, "batch": 32, "accuracy": 94.51, "latency_ms": 32.46, "lat_std": 20.96, "memory_mb": 44.73},
]

#: Section 4 trial accounting.
TOTAL_TRIALS = 1728
VALID_OUTCOMES = 1717
CONFIGS_PER_COMBINATION = 288

#: Accuracy range of the reference study (Wu et al. 2023) the paper compares to.
REFERENCE_ACCURACY_RANGE = (95.92, 97.43)
