"""The paper's three optimization objectives."""

from __future__ import annotations

from dataclasses import dataclass

from repro.pareto.dominance import ObjectiveSense

__all__ = ["ObjectiveSpec", "OBJECTIVES"]


@dataclass(frozen=True)
class ObjectiveSpec:
    """One objective: record key, direction, unit, display name."""

    key: str
    sense: ObjectiveSense
    unit: str
    display: str

    @property
    def pair(self) -> tuple[str, ObjectiveSense]:
        """The (key, sense) pair :class:`repro.pareto.ParetoAnalysis` expects."""
        return (self.key, self.sense)


#: Accuracy (maximize, %), latency (minimize, ms), memory (minimize, MB).
OBJECTIVES: tuple[ObjectiveSpec, ...] = (
    ObjectiveSpec("accuracy", ObjectiveSense.MAX, "%", "Inference Accuracy"),
    ObjectiveSpec("latency_ms", ObjectiveSense.MIN, "ms", "Inference Latency"),
    ObjectiveSpec("memory_mb", ObjectiveSense.MIN, "MB", "Memory Usage"),
)
