"""Programmatic reproduction verification.

:func:`verify_reproduction` runs the full pipeline and checks every
qualitative claim the reproduction stands on (the same criteria the
benchmark suite asserts), returning a structured pass/fail report —
usable from the CLI (``repro-nas verify``) or CI without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.paper import TABLE3_RANGES, TABLE5_BASELINE, TOTAL_TRIALS, VALID_OUTCOMES
from repro.core.pipeline import PipelineResult, evaluate_baselines, run_paper_sweep
from repro.core.report import baseline_table, pareto_table

__all__ = ["Check", "VerificationReport", "verify_reproduction"]


@dataclass(frozen=True)
class Check:
    """One verified claim."""

    name: str
    passed: bool
    detail: str


@dataclass
class VerificationReport:
    """All checks from one verification run."""

    checks: list[Check] = field(default_factory=list)

    def add(self, name: str, passed: bool, detail: str) -> None:
        self.checks.append(Check(name, bool(passed), detail))

    @property
    def ok(self) -> bool:
        """Whether every check passed."""
        return all(c.passed for c in self.checks)

    def failures(self) -> list[Check]:
        return [c for c in self.checks if not c.passed]

    def summary(self) -> str:
        lines = []
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"[{status}] {check.name}: {check.detail}")
        lines.append(f"--- {sum(c.passed for c in self.checks)}/{len(self.checks)} checks passed")
        return "\n".join(lines) + "\n"


def _check_trials(report: VerificationReport, sweep: PipelineResult) -> None:
    report.add(
        "trial accounting",
        sweep.launched == TOTAL_TRIALS and sweep.valid_outcomes == VALID_OUTCOMES,
        f"{sweep.launched} launched / {sweep.valid_outcomes} valid (paper: {TOTAL_TRIALS}/{VALID_OUTCOMES})",
    )


def _check_ranges(report: VerificationReport, sweep: PipelineResult) -> None:
    ranges = sweep.pareto.ranges()
    tolerances = {"accuracy": (3.0, 1.5), "latency_ms": (1.5, 26.0), "memory_mb": (0.2, 0.3)}
    for key, (paper_lo, paper_hi) in TABLE3_RANGES.items():
        lo, hi = ranges[key]
        tol_lo, tol_hi = tolerances[key]
        report.add(
            f"table3 range: {key}",
            abs(lo - paper_lo) <= tol_lo and abs(hi - paper_hi) <= tol_hi,
            f"measured [{lo:.2f}, {hi:.2f}] vs paper [{paper_lo}, {paper_hi}]",
        )


def _check_front(report: VerificationReport, sweep: PipelineResult) -> None:
    rows = pareto_table(sweep)
    report.add("front is small and selective", 2 <= len(rows) <= 10, f"{len(rows)} members (paper: 5)")
    traits = all(
        r["kernel_size"] == 3 and r["stride"] == 2 and r["padding"] == 1
        and r["initial_output_feature"] == 32
        for r in rows
    )
    report.add("front shares the paper's winning traits", traits,
               "k=3, s=2, p=1, f=32 for every member" if traits else "trait mismatch")
    best = rows[0]
    report.add(
        "best solution matches the paper's",
        best["channels"] == 7 and best["batch"] == 16 and best["pool_choice"] == 0
        and abs(best["accuracy"] - 96.13) < 1.0 and abs(best["latency_ms"] - 8.19) < 1.0,
        f"ch{best['channels']}/b{best['batch']} acc={best['accuracy']:.2f} lat={best['latency_ms']:.2f}",
    )


def _check_baseline(report: VerificationReport) -> None:
    rows = baseline_table(evaluate_baselines())
    paper = {(r["channels"], r["batch"]): r for r in TABLE5_BASELINE}
    worst_acc = max(abs(r["accuracy"] - paper[(r["channels"], r["batch"])]["accuracy"]) for r in rows)
    worst_lat = max(
        abs(r["latency_ms"] - paper[(r["channels"], r["batch"])]["latency_ms"])
        / paper[(r["channels"], r["batch"])]["latency_ms"]
        for r in rows
    )
    report.add("table5 baseline accuracies", worst_acc <= 1.5, f"max |delta| = {worst_acc:.2f} pp")
    report.add("table5 baseline latencies", worst_lat <= 0.10, f"max rel delta = {worst_lat:.1%}")
    by = {(r["channels"], r["batch"]): r["accuracy"] for r in rows}
    orderings = all(
        by[(ch, 16)] > by[(ch, 8)] > by[(ch, 32)] for ch in (5, 7)
    ) and by[(7, 16)] > by[(5, 16)]
    report.add("table5 orderings (7ch>5ch, b16>b8>b32)", orderings, "all orderings hold" if orderings else "broken")


def _check_headline(report: VerificationReport, sweep: PipelineResult) -> None:
    rows = pareto_table(sweep)
    baselines = baseline_table(evaluate_baselines())
    best = rows[0]
    base = next(r for r in baselines if (r["channels"], r["batch"]) == (7, 16))
    speedup = base["latency_ms"] / best["latency_ms"]
    shrink = base["memory_mb"] / best["memory_mb"]
    report.add(
        "headline: winners beat the baseline ~4x at equal accuracy",
        speedup > 3.0 and shrink > 3.5 and best["accuracy"] >= base["accuracy"] - 0.5,
        f"{speedup:.1f}x faster, {shrink:.1f}x smaller, acc {best['accuracy']:.2f} vs {base['accuracy']:.2f}",
    )


def verify_reproduction(seed: int = 0) -> VerificationReport:
    """Run the sweep and verify every headline claim; ~90 s on one core."""
    report = VerificationReport()
    sweep = run_paper_sweep(seed=seed)
    _check_trials(report, sweep)
    _check_ranges(report, sweep)
    _check_front(report, sweep)
    _check_baseline(report)
    _check_headline(report, sweep)
    return report
