"""Compare two sweep results (seed-sensitivity and regression analysis).

The paper reports a single NNI run; a natural robustness question is how
stable its conclusions are across runs.  :func:`compare_sweeps` aligns
two result sets by configuration, computes the accuracy rank correlation
(Spearman), the front overlap at the architecture level, and per-objective
deltas — used by the seed-sensitivity ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.core.pipeline import PipelineResult
from repro.nas.config import ModelConfig

__all__ = ["SweepComparison", "compare_sweeps"]


@dataclass(frozen=True)
class SweepComparison:
    """Alignment statistics between two sweeps."""

    common_trials: int
    accuracy_spearman: float
    mean_abs_accuracy_delta: float
    front_a_size: int
    front_b_size: int
    front_architecture_jaccard: float
    best_architecture_matches: bool
    best_family_matches: bool  # same (kernel, stride, padding, width) traits

    def summary(self) -> str:
        best = ("matches" if self.best_architecture_matches
                else ("same family" if self.best_family_matches else "DIFFERS"))
        return (
            f"{self.common_trials} aligned trials; accuracy Spearman rho = "
            f"{self.accuracy_spearman:.3f}, mean |delta| = {self.mean_abs_accuracy_delta:.2f} pp; "
            f"fronts {self.front_a_size} vs {self.front_b_size}, architecture Jaccard = "
            f"{self.front_architecture_jaccard:.2f}; best architecture {best}"
        )


def _records_by_config(result: PipelineResult) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for record in result.records:
        out[ModelConfig.from_dict(record).config_id()] = record
    return out


def _front_architectures(result: PipelineResult) -> set[tuple]:
    return {
        ModelConfig.from_dict(record).architecture_key()
        for record in result.front_records()
    }


def compare_sweeps(a: PipelineResult, b: PipelineResult) -> SweepComparison:
    """Align two sweeps by configuration and compare their conclusions."""
    by_a = _records_by_config(a)
    by_b = _records_by_config(b)
    common = sorted(set(by_a) & set(by_b))
    if len(common) < 3:
        raise ValueError(f"only {len(common)} common trials; nothing to compare")
    acc_a = np.array([by_a[key]["accuracy"] for key in common])
    acc_b = np.array([by_b[key]["accuracy"] for key in common])
    rho, _ = scipy_stats.spearmanr(acc_a, acc_b)

    front_a = _front_architectures(a)
    front_b = _front_architectures(b)
    union = front_a | front_b
    jaccard = len(front_a & front_b) / len(union) if union else 1.0

    best_a_cfg = ModelConfig.from_dict(a.front_records()[0])
    best_b_cfg = ModelConfig.from_dict(b.front_records()[0])
    best_a = best_a_cfg.architecture_key()
    best_b = best_b_cfg.architecture_key()

    def family(cfg: ModelConfig) -> tuple:
        return (cfg.kernel_size, cfg.stride, cfg.padding, cfg.initial_output_feature)

    return SweepComparison(
        common_trials=len(common),
        accuracy_spearman=float(rho),
        mean_abs_accuracy_delta=float(np.abs(acc_a - acc_b).mean()),
        front_a_size=len(a.front_records()),
        front_b_size=len(b.front_records()),
        front_architecture_jaccard=float(jaccard),
        best_architecture_matches=best_a == best_b,
        best_family_matches=family(best_a_cfg) == family(best_b_cfg),
    )
