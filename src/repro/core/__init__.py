"""The paper's end-to-end pipeline and its evaluation artifacts.

- :mod:`~repro.core.objectives` — the three-objective specification;
- :mod:`~repro.core.pipeline` — `HwNasPipeline`: search space -> NAS sweep
  -> latency/memory measurement -> Pareto analysis (Sections 3.1-3.4);
- :mod:`~repro.core.paper` — the paper's reported numbers (Tables 1-5) as
  structured constants, used by benches for side-by-side comparison;
- :mod:`~repro.core.report` — table builders for Tables 3/4/5;
- :mod:`~repro.core.figures` — data generators for Figures 1-4.
"""

from repro.core.objectives import OBJECTIVES, ObjectiveSpec
from repro.core.pipeline import HwNasPipeline, PipelineResult, run_paper_sweep
from repro.core.report import (
    baseline_table,
    objective_ranges_table,
    pareto_table,
    per_combination_fronts,
)
from repro.core.figures import (
    architecture_figure,
    pareto_scatter_figure,
    radar_figure,
    searchspace_figure,
)
from repro.core.plots import ascii_radar_bars, ascii_scatter
from repro.core.export_html import export_pareto_html
from repro.core.validation import verify_reproduction, VerificationReport
from repro.core.sweep_compare import SweepComparison, compare_sweeps

__all__ = [
    "OBJECTIVES",
    "ObjectiveSpec",
    "HwNasPipeline",
    "PipelineResult",
    "run_paper_sweep",
    "baseline_table",
    "objective_ranges_table",
    "pareto_table",
    "per_combination_fronts",
    "architecture_figure",
    "pareto_scatter_figure",
    "radar_figure",
    "searchspace_figure",
    "ascii_scatter",
    "ascii_radar_bars",
    "export_pareto_html",
    "verify_reproduction",
    "VerificationReport",
    "SweepComparison",
    "compare_sweeps",
]
