"""Standalone interactive HTML export of the Figure-3 scatter.

The paper publishes an interactive version of Figure 3
(https://jiwonbaik96.github.io/dlgpu/pareto); this module regenerates the
equivalent artifact: a single self-contained HTML file (inline data +
vanilla-JS canvas, no external dependencies) with axis selection and
hover tooltips showing each trial's configuration.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["export_pareto_html"]

_TEMPLATE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>Pareto front — drainage-crossing HW-NAS</title>
<style>
  body {{ font-family: sans-serif; margin: 20px; }}
  #tooltip {{ position: absolute; background: #222; color: #eee; padding: 6px 8px;
             border-radius: 4px; font-size: 12px; pointer-events: none; display: none; }}
  select {{ margin-right: 12px; }}
  canvas {{ border: 1px solid #ccc; }}
</style>
</head>
<body>
<h2>Pareto front analysis ({n_points} trials, {n_front} non-dominated)</h2>
<label>x: <select id="xAxis"></select></label>
<label>y: <select id="yAxis"></select></label>
<canvas id="plot" width="900" height="560"></canvas>
<div id="tooltip"></div>
<script>
const DATA = {data_json};
const AXES = {axes_json};
const FRONT = new Set({front_json});
const canvas = document.getElementById("plot");
const ctx = canvas.getContext("2d");
const tooltip = document.getElementById("tooltip");
const xSel = document.getElementById("xAxis");
const ySel = document.getElementById("yAxis");
const PAD = 55;
for (const axis of AXES) {{
  xSel.add(new Option(axis, axis));
  ySel.add(new Option(axis, axis));
}}
xSel.value = AXES[1] || AXES[0];
ySel.value = AXES[0];
let positions = [];
function scale(values) {{
  const lo = Math.min(...values), hi = Math.max(...values);
  const span = hi > lo ? hi - lo : 1;
  return v => (v - lo) / span;
}}
function draw() {{
  const xKey = xSel.value, yKey = ySel.value;
  const xs = DATA.map(d => d[xKey]), ys = DATA.map(d => d[yKey]);
  const sx = scale(xs), sy = scale(ys);
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  ctx.strokeStyle = "#999";
  ctx.strokeRect(PAD, PAD / 2, canvas.width - 1.5 * PAD, canvas.height - 1.5 * PAD);
  ctx.fillStyle = "#333";
  ctx.fillText(xKey, canvas.width / 2, canvas.height - 8);
  ctx.save();
  ctx.translate(14, canvas.height / 2);
  ctx.rotate(-Math.PI / 2);
  ctx.fillText(yKey, 0, 0);
  ctx.restore();
  positions = DATA.map((d, i) => {{
    const px = PAD + sx(d[xKey]) * (canvas.width - 1.5 * PAD);
    const py = canvas.height - PAD + (-sy(d[yKey])) * (canvas.height - 1.5 * PAD);
    return [px, py, i];
  }});
  for (const [px, py, i] of positions) {{
    if (FRONT.has(i)) continue;
    ctx.fillStyle = "rgba(70,110,180,0.45)";
    ctx.beginPath(); ctx.arc(px, py, 2.5, 0, 6.283); ctx.fill();
  }}
  for (const [px, py, i] of positions) {{
    if (!FRONT.has(i)) continue;
    ctx.fillStyle = "#d03030";
    ctx.beginPath(); ctx.arc(px, py, 5, 0, 6.283); ctx.fill();
  }}
}}
canvas.addEventListener("mousemove", ev => {{
  const rect = canvas.getBoundingClientRect();
  const mx = ev.clientX - rect.left, my = ev.clientY - rect.top;
  let best = null, bestDist = 100;
  for (const [px, py, i] of positions) {{
    const d = (px - mx) ** 2 + (py - my) ** 2;
    if (d < bestDist) {{ bestDist = d; best = i; }}
  }}
  if (best === null) {{ tooltip.style.display = "none"; return; }}
  const d = DATA[best];
  tooltip.innerHTML = Object.entries(d).map(([k, v]) => `${{k}}: ${{v}}`).join("<br>");
  tooltip.style.left = (ev.pageX + 12) + "px";
  tooltip.style.top = (ev.pageY + 12) + "px";
  tooltip.style.display = "block";
}});
canvas.addEventListener("mouseleave", () => tooltip.style.display = "none");
xSel.onchange = draw; ySel.onchange = draw;
draw();
</script>
</body>
</html>
"""

_DEFAULT_AXES = ("accuracy", "latency_ms", "memory_mb")
_TOOLTIP_KEYS = (
    "accuracy", "latency_ms", "memory_mb", "channels", "batch", "kernel_size",
    "stride", "padding", "pool_choice", "initial_output_feature",
)


def export_pareto_html(
    records: Sequence[Mapping],
    front_indices: Sequence[int],
    path: str | Path,
    axes: Sequence[str] = _DEFAULT_AXES,
) -> int:
    """Write the interactive scatter; returns the file size in bytes.

    Parameters
    ----------
    records:
        Flat trial records (e.g. ``PipelineResult.records``).
    front_indices:
        Indices of the non-dominated records (drawn red, on top).
    path:
        Output HTML path.
    axes:
        Keys selectable as plot axes (must exist in every record).
    """
    if not records:
        raise ValueError("no records to export")
    for axis in axes:
        if axis not in records[0]:
            raise KeyError(f"axis {axis!r} not present in the records")
    data = [
        {key: (round(float(rec[key]), 4) if isinstance(rec[key], float) else rec[key])
         for key in _TOOLTIP_KEYS if key in rec}
        for rec in records
    ]
    html = _TEMPLATE.format(
        n_points=len(records),
        n_front=len(front_indices),
        data_json=json.dumps(data),
        axes_json=json.dumps(list(axes)),
        front_json=json.dumps([int(i) for i in front_indices]),
    )
    path = Path(path)
    path.write_text(html, encoding="utf-8")
    return path.stat().st_size
