"""Memory estimators over the graph IR.

The paper's memory objective is file size (see :mod:`repro.onnxlite`);
these estimators add the quantities an embedded deployment additionally
cares about — parameter bytes and peak activation working set — used by
the profiling bench and available for richer objective sets.
"""

from __future__ import annotations

from repro.graph.ir import Graph, OpType
from repro.graph.trace import trace_model
from repro.nn.resnet import SearchableResNet18
from repro.onnxlite.size import model_size_mb

__all__ = [
    "parameter_memory_bytes",
    "activation_memory_bytes",
    "peak_inference_memory_bytes",
    "model_storage_mb",
]

_BYTES = 4  # float32


def _numel(shape: tuple[int, ...]) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


def parameter_memory_bytes(graph: Graph) -> int:
    """Bytes of all trainable parameters (fp32)."""
    return graph.total_params() * _BYTES


def activation_memory_bytes(graph: Graph, batch: int = 1) -> int:
    """Sum of all activation tensors for one forward pass."""
    total = 0
    for node in graph.nodes():
        if node.op in (OpType.INPUT, OpType.OUTPUT):
            continue
        total += _numel(node.out_shape)
    return total * _BYTES * batch


def peak_inference_memory_bytes(graph: Graph, batch: int = 1) -> int:
    """Peak simultaneous activation memory under sequential execution.

    At each step the live set is the executing node's input(s) and output;
    residual additions keep the skip tensor alive across the block body,
    which the traversal accounts for by keeping every tensor alive until
    its last consumer has run.
    """
    order = graph.topological()
    position = {node.name: i for i, node in enumerate(order)}
    # Last consumer index per produced tensor.
    last_use: dict[str, int] = {}
    for node in order:
        for pred in graph.predecessors(node):
            last_use[pred.name] = max(last_use.get(pred.name, -1), position[node.name])

    live: dict[str, int] = {}
    peak = 0
    for i, node in enumerate(order):
        if node.op is not OpType.OUTPUT:
            live[node.name] = _numel(node.out_shape)
        current = sum(live.values())
        peak = max(peak, current)
        # Free tensors whose last consumer just ran.
        for name in [n for n, last in last_use.items() if last == i]:
            live.pop(name, None)
    return peak * _BYTES * batch


def model_storage_mb(model: SearchableResNet18, input_hw: tuple[int, int] = (100, 100)) -> float:
    """The paper's memory objective (onnxlite file size, MB)."""
    return model_size_mb(model, input_hw=input_hw)


def memory_report(model: SearchableResNet18, input_hw: tuple[int, int] = (100, 100), batch: int = 1) -> dict:
    """All memory figures for one model."""
    graph = trace_model(model, input_hw=input_hw)
    return {
        "storage_mb": model_storage_mb(model, input_hw=input_hw),
        "parameter_bytes": parameter_memory_bytes(graph),
        "activation_bytes": activation_memory_bytes(graph, batch=batch),
        "peak_inference_bytes": peak_inference_memory_bytes(graph, batch=batch),
    }
