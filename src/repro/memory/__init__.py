"""Memory estimation: model storage and inference working memory."""

from repro.memory.estimator import (
    activation_memory_bytes,
    model_storage_mb,
    parameter_memory_bytes,
    peak_inference_memory_bytes,
)

__all__ = [
    "parameter_memory_bytes",
    "activation_memory_bytes",
    "peak_inference_memory_bytes",
    "model_storage_mb",
]
