"""Replay a JSONL observability log into reports and exports.

Everything here works from the event file alone — no live process, no
registry — so a sweep recorded on one machine can be inspected on
another (``python -m repro obs report run_obs.jsonl``).

The aggregation rules mirror how events are produced:

- *metrics* events are cumulative per process; the **last** snapshot of
  each pid wins and pids are **summed** (counters, gauge values,
  histogram buckets alike);
- *span* events are terminal (emitted once, on exit), so they are used
  as-is for the trace tree, per-name timing stats and wall-time
  coverage.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import metric_key
from repro.obs.sinks import chrome_trace_events, prometheus_text

__all__ = [
    "read_events",
    "aggregate_metrics",
    "span_tree_stats",
    "span_coverage",
    "render_report",
    "export_chrome_trace",
    "export_prometheus",
]


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL event log, skipping undecodable lines.

    A worker killed mid-write can leave a torn last line; observability
    must degrade, not raise, so bad lines are counted into the returned
    events as a synthetic ``{"type": "corrupt"}`` marker.
    """
    events: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            events.append({"type": "corrupt", "line": lineno})
            continue
        if isinstance(event, dict):
            events.append(event)
    return events


# ---------------------------------------------------------------------------
# metrics aggregation
# ---------------------------------------------------------------------------


def _last_snapshot_per_pid(events: list[dict]) -> dict[int, dict]:
    latest: dict[int, dict] = {}
    for event in events:
        if event.get("type") == "metrics":
            latest[int(event.get("pid", 0))] = event.get("metrics", {})
    return latest


def aggregate_metrics(events: list[dict]) -> dict:
    """Sum the last per-pid snapshots into one registry-shaped dict."""
    counters: dict[str, dict] = {}
    gauges: dict[str, dict] = {}
    histograms: dict[str, dict] = {}
    for snap in _last_snapshot_per_pid(events).values():
        for item in snap.get("counters", []):
            key = metric_key(item["name"], item.get("labels", {}))
            if key in counters:
                counters[key]["value"] += item["value"]
            else:
                counters[key] = dict(item)
        for item in snap.get("gauges", []):
            key = metric_key(item["name"], item.get("labels", {}))
            if key in gauges:
                gauges[key]["value"] += item["value"]
            else:
                gauges[key] = dict(item)
        for item in snap.get("histograms", []):
            key = metric_key(item["name"], item.get("labels", {}))
            if key in histograms and histograms[key]["buckets"] == item["buckets"]:
                agg = histograms[key]
                agg["counts"] = [a + b for a, b in zip(agg["counts"], item["counts"])]
                agg["sum"] += item["sum"]
                agg["count"] += item["count"]
                if item["count"]:
                    agg["min"] = min(agg["min"], item["min"]) if agg["count"] else item["min"]
                    agg["max"] = max(agg["max"], item["max"])
            else:
                histograms[key] = {k: (list(v) if isinstance(v, list) else v)
                                   for k, v in item.items()}
    return {
        "counters": [counters[k] for k in sorted(counters)],
        "gauges": [gauges[k] for k in sorted(gauges)],
        "histograms": [histograms[k] for k in sorted(histograms)],
    }


# ---------------------------------------------------------------------------
# trace aggregation
# ---------------------------------------------------------------------------


def span_tree_stats(events: list[dict]) -> list[dict]:
    """Per-name span statistics with parent-name attribution.

    Returns rows ``{"name", "parent_name", "count", "total_s",
    "mean_s", "max_s", "pids"}`` sorted by total time, where
    ``parent_name`` is the most common name of each span's parent (or
    ``""`` for roots / unknown parents).
    """
    spans = [e for e in events if e.get("type") == "span"]
    by_id = {e.get("span"): e for e in spans}
    rows: dict[tuple[str, str], dict] = {}
    for e in spans:
        parent = by_id.get(e.get("parent", ""))
        parent_name = parent.get("name", "") if parent is not None else ""
        key = (e.get("name", "?"), parent_name)
        row = rows.get(key)
        dur = float(e.get("dur", 0.0))
        if row is None:
            rows[key] = row = {
                "name": key[0], "parent_name": parent_name, "count": 0,
                "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0, "pids": set(),
            }
        row["count"] += 1
        row["total_s"] += dur
        row["max_s"] = max(row["max_s"], dur)
        row["pids"].add(int(e.get("pid", 0)))
    out = []
    for row in rows.values():
        row["mean_s"] = row["total_s"] / row["count"]
        row["pids"] = len(row["pids"])
        out.append(row)
    return sorted(out, key=lambda r: -r["total_s"])


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return total + (cur_end - cur_start)


def span_coverage(events: list[dict], parent_name: str = "experiment.run") -> float:
    """Fraction of the named parent spans' wall-time covered by children.

    For each span named ``parent_name``, take the union of its *direct*
    children's wall-clock intervals clipped to the parent's interval;
    the returned figure is covered seconds over parent seconds, summed
    across all matching parents (1.0 = fully covered, 0.0 when the
    parent has no time or no children).
    """
    spans = [e for e in events if e.get("type") == "span"]
    parents = {e.get("span"): e for e in spans if e.get("name") == parent_name}
    if not parents:
        return 0.0
    covered = 0.0
    total = 0.0
    for pid_span, parent in parents.items():
        p_start = float(parent.get("ts", 0.0))
        p_end = p_start + float(parent.get("dur", 0.0))
        total += p_end - p_start
        intervals = []
        for e in spans:
            if e.get("parent") != pid_span:
                continue
            start = max(float(e.get("ts", 0.0)), p_start)
            end = min(float(e.get("ts", 0.0)) + float(e.get("dur", 0.0)), p_end)
            if end > start:
                intervals.append((start, end))
        covered += _union_seconds(intervals)
    return covered / total if total > 0 else 0.0


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.0f}µs"


def _histogram_lines(item: dict, width: int = 30) -> list[str]:
    lines = [
        f"  {metric_key(item['name'], item.get('labels', {}))}: "
        f"count={item['count']} mean={_fmt_seconds(item['sum'] / item['count']) if item['count'] else '-'} "
        f"min={_fmt_seconds(item['min']) if item['count'] else '-'} "
        f"max={_fmt_seconds(item['max']) if item['count'] else '-'}"
    ]
    counts = item["counts"]
    buckets = item["buckets"]
    peak = max(counts) if counts else 0
    if peak == 0:
        return lines
    lower = 0.0
    for i, count in enumerate(counts):
        upper = buckets[i] if i < len(buckets) else float("inf")
        if count:
            bar = "#" * max(1, round(width * count / peak))
            upper_text = _fmt_seconds(upper) if upper != float("inf") else "+Inf"
            lines.append(f"    [{_fmt_seconds(lower):>9} .. {upper_text:>9}) {count:6d} {bar}")
        lower = upper
    return lines


def render_report(events: list[dict], coverage_parent: str = "experiment.run") -> str:
    """Human-readable run report from a parsed event list."""
    metrics = aggregate_metrics(events)
    spans = [e for e in events if e.get("type") == "span"]
    corrupt = sum(1 for e in events if e.get("type") == "corrupt")
    pids = sorted({int(e.get("pid", 0)) for e in events if "pid" in e})
    lines = [
        "observability report",
        "====================",
        f"events: {len(events)} ({len(spans)} spans, "
        f"{sum(1 for e in events if e.get('type') == 'metrics')} metric snapshots"
        + (f", {corrupt} corrupt lines" if corrupt else "") + ")",
        f"processes: {len(pids)}",
    ]
    coverage = span_coverage(events, parent_name=coverage_parent)
    if any(e.get("name") == coverage_parent for e in spans):
        lines.append(f"trace coverage of {coverage_parent!r}: {coverage * 100:.1f}% of wall-time")
    if metrics["counters"]:
        lines += ["", "counters", "--------"]
        for item in metrics["counters"]:
            lines.append(f"  {metric_key(item['name'], item.get('labels', {})):56s} "
                         f"{item['value']}")
    if metrics["gauges"]:
        lines += ["", "gauges", "------"]
        for item in metrics["gauges"]:
            lines.append(f"  {metric_key(item['name'], item.get('labels', {})):56s} "
                         f"{item['value']:g}")
    if metrics["histograms"]:
        lines += ["", "histograms", "----------"]
        for item in metrics["histograms"]:
            lines += _histogram_lines(item)
    if spans:
        lines += ["", "spans (by total time)", "---------------------"]
        for row in span_tree_stats(events):
            where = f" < {row['parent_name']}" if row["parent_name"] else ""
            lines.append(
                f"  {row['name'] + where:42s} n={row['count']:<5d} "
                f"total={_fmt_seconds(row['total_s']):>9} "
                f"mean={_fmt_seconds(row['mean_s']):>9} "
                f"max={_fmt_seconds(row['max_s']):>9} pids={row['pids']}"
            )
    return "\n".join(lines)


def export_chrome_trace(events: list[dict], out_path: str | Path) -> int:
    """Write the Chrome ``trace_event`` JSON; returns bytes written."""
    payload = json.dumps(chrome_trace_events(events))
    Path(out_path).write_text(payload, encoding="utf-8")
    return len(payload)


def export_prometheus(events: list[dict], out_path: str | Path | None = None) -> str:
    """Render (and optionally write) the aggregate Prometheus exposition."""
    text = prometheus_text(aggregate_metrics(events))
    if out_path is not None:
        Path(out_path).write_text(text, encoding="utf-8")
    return text
