"""The progress-listener protocol shared by sweeps and the obs layer.

Before this module, :class:`repro.nas.experiment.Experiment` took an
ad-hoc ``progress`` callable ``(done, total, record)`` and every
consumer (``RunTelemetry``, the chaos harness's ``interrupt_after``,
user lambdas) had to match that exact shape.  The protocol here replaces
it with three well-named hooks while keeping every old callable working
through :func:`as_listener`:

- :meth:`ProgressListener.on_trial_start` — before a trial is evaluated;
- :meth:`ProgressListener.on_trial_end` — after its record exists (the
  old callable convention maps onto this hook);
- :meth:`ProgressListener.on_run_end` — once, with the final result.

:class:`ProgressFanout` composes any number of listeners;
:class:`ObsProgressListener` is the observability implementation that
mirrors trial outcomes into the process-wide metrics registry (and is
installed automatically by ``Experiment``, costing nothing while
observability is disabled).

The module deliberately has no ``repro.nas`` imports — record objects
are duck-typed (``ok``, ``attempts``, ``error_kind``, ``duration_s``,
``skipped_devices``) — so the obs layer stays dependency-free.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.obs import config as _config

__all__ = [
    "ProgressListener",
    "LegacyCallableListener",
    "ProgressFanout",
    "ObsProgressListener",
    "as_listener",
]


class ProgressListener:
    """Base protocol: subclass and override the hooks you care about.

    All hooks default to no-ops, so partial listeners stay small.  The
    ``record`` argument is a :class:`repro.nas.trial.TrialRecord` (duck-
    typed here); ``result`` is an
    :class:`repro.nas.experiment.ExperimentResult`.
    """

    def on_trial_start(self, trial_id: int, config: Any) -> None:
        """Called before a trial is evaluated."""

    def on_trial_end(self, done: int, total: int, record: Any) -> None:
        """Called after each trial's record exists (old ``progress`` shape)."""

    def on_run_end(self, result: Any) -> None:
        """Called once when the sweep finishes."""


class LegacyCallableListener(ProgressListener):
    """Adapts the old ``(done, total, record)`` callable convention."""

    def __init__(self, fn: Callable[[int, int, Any], None]) -> None:
        self.fn = fn

    def on_trial_end(self, done: int, total: int, record: Any) -> None:
        self.fn(done, total, record)


class ProgressFanout(ProgressListener):
    """Composes several listeners; every hook fans out in order.

    Exceptions propagate (the chaos harness's ``interrupt_after`` relies
    on raising from a progress hook to simulate Ctrl-C), so listeners
    that must not disturb the sweep should catch their own errors.
    """

    def __init__(self, listeners: Iterable[ProgressListener | Callable[..., None]]) -> None:
        self.listeners: list[ProgressListener] = [as_listener(l) for l in listeners]

    def add(self, listener: "ProgressListener | Callable[..., None]") -> None:
        """Append another listener."""
        self.listeners.append(as_listener(listener))

    def on_trial_start(self, trial_id: int, config: Any) -> None:
        for listener in self.listeners:
            listener.on_trial_start(trial_id, config)

    def on_trial_end(self, done: int, total: int, record: Any) -> None:
        for listener in self.listeners:
            listener.on_trial_end(done, total, record)

    def on_run_end(self, result: Any) -> None:
        for listener in self.listeners:
            listener.on_run_end(result)


class ObsProgressListener(ProgressListener):
    """Mirrors trial lifecycle into the process-wide metrics registry.

    Counters (all no-ops while observability is disabled):

    - ``repro_trials_total{status=ok|failed}``
    - ``repro_trials_failed_total{kind=...}`` per error kind
    - ``repro_trial_retries_total`` (extra attempts summed)
    - ``repro_trials_retried_total`` / ``repro_trials_recovered_total``
    - ``repro_device_predictions_skipped_total``
    - histogram ``repro_trial_duration_seconds``
    """

    def __init__(self) -> None:
        reg = _config.registry()
        self._ok = reg.counter("repro_trials_total", status="ok")
        self._failed = reg.counter("repro_trials_total", status="failed")
        self._retries = reg.counter("repro_trial_retries_total")
        self._retried = reg.counter("repro_trials_retried_total")
        self._recovered = reg.counter("repro_trials_recovered_total")
        self._skipped_devices = reg.counter("repro_device_predictions_skipped_total")
        self._duration = reg.histogram("repro_trial_duration_seconds")

    def on_trial_end(self, done: int, total: int, record: Any) -> None:
        ok = bool(getattr(record, "ok", False))
        (self._ok if ok else self._failed).inc()
        if not ok:
            kind = getattr(record, "error_kind", "") or "failed"
            _config.registry().counter("repro_trials_failed_total", kind=kind).inc()
        attempts = int(getattr(record, "attempts", 1) or 1)
        if attempts > 1:
            self._retried.inc()
            self._retries.inc(attempts - 1)
            if ok:
                self._recovered.inc()
        skipped = getattr(record, "skipped_devices", ()) or ()
        if skipped:
            self._skipped_devices.inc(len(skipped))
        self._duration.observe(float(getattr(record, "duration_s", 0.0) or 0.0))

    def on_run_end(self, result: Any) -> None:
        # Final snapshot so the JSONL log is self-contained for reports.
        _config.flush()


def as_listener(obj: "ProgressListener | Callable[..., None] | None") -> ProgressListener:
    """Normalize ``None`` / listener / legacy callable to a listener.

    Objects that implement any of the protocol hooks are used as-is
    (duck typing — no subclassing required); bare callables get the
    legacy ``(done, total, record)`` treatment; ``None`` becomes a
    no-op listener.
    """
    if obj is None:
        return ProgressListener()
    if isinstance(obj, ProgressListener):
        return obj
    if any(callable(getattr(obj, hook, None))
           for hook in ("on_trial_start", "on_trial_end", "on_run_end")):
        return _DuckListener(obj)
    if callable(obj):
        return LegacyCallableListener(obj)
    raise TypeError(
        f"progress must be a ProgressListener, a (done, total, record) callable, "
        f"or None; got {type(obj).__name__}"
    )


class _DuckListener(ProgressListener):
    """Wraps any object exposing a subset of the protocol hooks."""

    def __init__(self, obj: Any) -> None:
        self.obj = obj

    def on_trial_start(self, trial_id: int, config: Any) -> None:
        hook = getattr(self.obj, "on_trial_start", None)
        if callable(hook):
            hook(trial_id, config)

    def on_trial_end(self, done: int, total: int, record: Any) -> None:
        hook = getattr(self.obj, "on_trial_end", None)
        if callable(hook):
            hook(done, total, record)

    def on_run_end(self, result: Any) -> None:
        hook = getattr(self.obj, "on_run_end", None)
        if callable(hook):
            hook(result)
