"""Process-wide metrics: counters, gauges and log-bucketed histograms.

The paper's Discussion calls for profiling the NAS experiments to tune
trial counts and the search space; HW-NAS-Bench shows that *recorded*
cost telemetry is what makes hardware-aware NAS comparable across
papers.  This module is the substrate both feed into: a registry of
named instruments that every layer of the library (trial runner,
executor, workspace pool, deploy plan) records into.

Design constraints, in order:

1. **Cheap when disabled.**  Every record method starts with a single
   attribute check (``self._registry.enabled``) and returns without
   taking a lock or allocating.  ``tests/test_obs.py`` asserts the
   disabled fast path allocates nothing.
2. **Thread-safe when enabled.**  Instruments guard their state with a
   per-instrument lock, so the process-pool executor's result threads
   and the main thread can record concurrently.
3. **Stable identity.**  ``registry.counter(name, **labels)`` returns
   the *same* object for the same name+labels forever, so hot paths can
   cache the handle at module import and never pay the registry lookup
   again.

Histograms use fixed log-spaced latency buckets
(:data:`DEFAULT_LATENCY_BUCKETS_S`, quarter-decade steps from 10 µs to
10 s) so per-plan inference latencies and per-fold training times render
on one comparable axis.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Iterable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
]

#: Fixed log-spaced histogram bucket upper bounds, in seconds: quarter
#: decades from 1e-5 s (10 µs) to 10 s, plus the implicit +Inf overflow
#: bucket.  Chosen so a compiled-plan inference (~0.1-10 ms) and a CV
#: fold (~0.1-100 s) both land mid-scale.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    round(10.0 ** (exp / 4.0), 10) for exp in range(-20, 5)
)


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Canonical ``name{k="v",...}`` identity of one instrument."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Instrument:
    """Shared plumbing: name, labels, owning registry, lock."""

    __slots__ = ("name", "labels", "_registry", "_lock")

    def __init__(self, name: str, labels: dict[str, str], registry: "MetricsRegistry") -> None:
        self.name = name
        self.labels = labels
        self._registry = registry
        self._lock = threading.Lock()

    @property
    def key(self) -> str:
        return metric_key(self.name, self.labels)


class Counter(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: dict[str, str], registry: "MetricsRegistry") -> None:
        super().__init__(name, labels, registry)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (no-op while the registry is disabled)."""
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self._value}


class Gauge(_Instrument):
    """A point-in-time value (queue depth, pooled bytes)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: dict[str, str], registry: "MetricsRegistry") -> None:
        super().__init__(name, labels, registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self._value = float(value)

    def add(self, delta: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self._value}


class Histogram(_Instrument):
    """Fixed-bucket distribution (log-spaced latency buckets by default)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        registry: "MetricsRegistry",
        buckets: Iterable[float] | None = None,
    ) -> None:
        super().__init__(name, labels, registry)
        edges = tuple(sorted(buckets)) if buckets is not None else DEFAULT_LATENCY_BUCKETS_S
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # +1: the +Inf overflow bucket
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation (no-op while the registry is disabled)."""
        if not self._registry.enabled:
            return
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0
            self._min = float("inf")
            self._max = float("-inf")

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
        }


class MetricsRegistry:
    """A namespace of instruments with stable identity and collectors.

    Parameters
    ----------
    enabled:
        Initial recording state.  The process-wide registry
        (:func:`repro.obs.registry`) starts disabled and is toggled by
        :func:`repro.obs.configure` / :func:`repro.obs.shutdown`;
        per-run registries (e.g. :class:`repro.nas.telemetry.RunTelemetry`)
        are always on.

    *Collectors* are zero-argument callables registered with
    :meth:`add_collector`; :meth:`snapshot` invokes them first so
    pull-style sources (the workspace pool's hit/miss/pooled-bytes
    figures, executor lifetime stats) can refresh their gauges without
    instrumenting their hot paths.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- instrument accessors (get-or-create, stable identity) ---------------

    def _get(self, cls, name: str, labels: dict[str, str], **kwargs) -> _Instrument:
        key = metric_key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(key)
                if inst is None:
                    inst = cls(name, labels, self, **kwargs)
                    self._instruments[key] = inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {key!r} already registered as {type(inst).__name__}, "
                f"not {cls.__name__}"
            )
        return inst

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get(Counter, name, {k: str(v) for k, v in labels.items()})

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get(Gauge, name, {k: str(v) for k, v in labels.items()})

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None, **labels: str
    ) -> Histogram:
        """Get or create the histogram ``name{labels}``.

        ``buckets`` only applies on first creation; later calls return
        the existing instrument unchanged.
        """
        return self._get(
            Histogram, name, {k: str(v) for k, v in labels.items()}, buckets=buckets
        )

    # -- collectors ----------------------------------------------------------

    def add_collector(self, collect: Callable[[], None]) -> None:
        """Register a refresh hook run at the start of every snapshot."""
        with self._lock:
            if collect not in self._collectors:
                self._collectors.append(collect)

    def remove_collector(self, collect: Callable[[], None]) -> None:
        """Unregister a collector (missing collectors are ignored)."""
        with self._lock:
            try:
                self._collectors.remove(collect)
            except ValueError:
                pass

    # -- introspection -------------------------------------------------------

    def find(self, name: str) -> list[_Instrument]:
        """Every instrument registered under ``name`` (any labels)."""
        return [i for i in self._instruments.values() if i.name == name]

    def counter_value(self, name: str, **labels: str) -> int:
        """Current value of one counter (0 if never created)."""
        key = metric_key(name, {k: str(v) for k, v in labels.items()})
        inst = self._instruments.get(key)
        return inst.value if isinstance(inst, Counter) else 0

    def snapshot(self) -> dict:
        """Collector-refreshed dump of every instrument, JSON-ready."""
        was_enabled = self.enabled
        if was_enabled:
            # Collectors call .set()/.inc(); keep them effective even if
            # a collector briefly toggles state.
            for collect in list(self._collectors):
                try:
                    collect()
                except Exception:  # noqa: BLE001 - telemetry must not break runs
                    pass
        out: dict[str, list[dict]] = {"counters": [], "gauges": [], "histograms": []}
        for inst in list(self._instruments.values()):
            if isinstance(inst, Counter):
                out["counters"].append(inst.snapshot())
            elif isinstance(inst, Gauge):
                out["gauges"].append(inst.snapshot())
            elif isinstance(inst, Histogram):
                out["histograms"].append(inst.snapshot())
        return out

    def reset(self) -> None:
        """Zero every instrument, keeping identities (cached handles stay valid)."""
        for inst in list(self._instruments.values()):
            inst._reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(enabled={self.enabled}, "
                f"instruments={len(self._instruments)})")
