"""Pluggable event sinks for the observability layer.

Every sink consumes the same flat event dicts that
:func:`repro.obs.emit` produces:

- ``{"type": "span", "name", "trace", "span", "parent", "ts", "dur",
  "pid", "tid", "attrs"}`` — one finished span (``ts`` is wall-clock
  epoch seconds of the start, ``dur`` perf-counter seconds);
- ``{"type": "metrics", "pid", "ts", "metrics": <registry snapshot>}`` —
  a cumulative dump of one process's registry (the report layer keeps
  the *last* snapshot per pid and sums across pids);
- ``{"type": "log", ...}`` — free-form annotations.

Sinks:

- :class:`InMemorySink` — a list, for tests;
- :class:`JsonlSink` — line-buffered JSONL appends.  Worker processes
  re-open the same path in append mode (``O_APPEND``), so one smoke
  sweep's parent and worker events interleave into a single file that
  ``repro obs report`` can replay;
- :class:`PrometheusTextSink` — renders the latest metrics snapshots in
  the Prometheus text exposition format;
- :class:`ChromeTraceSink` — accumulates span events into a Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

__all__ = [
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "PrometheusTextSink",
    "ChromeTraceSink",
    "prometheus_text",
    "chrome_trace_events",
]


class Sink:
    """Interface every sink implements; methods must never raise upward."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - trivial default
        pass

    def close(self) -> None:  # pragma: no cover - trivial default
        self.flush()


class InMemorySink(Sink):
    """Collects events into a list (test instrumentation)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def spans(self, name: str | None = None) -> list[dict]:
        """Span events, optionally filtered by span name."""
        return [e for e in self.events
                if e.get("type") == "span" and (name is None or e.get("name") == name)]

    def clear(self) -> None:
        self.events.clear()


class JsonlSink(Sink):
    """Line-buffered JSONL event log (one event per line, append mode).

    The file is opened with ``buffering=1`` so every event line reaches
    the OS as one write; concurrent appenders (pool workers adopting a
    propagated span context) interleave whole lines rather than bytes.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = open(self.path, "a", encoding="utf-8", buffering=1)

    def emit(self, event: dict) -> None:
        if self._handle is None:  # pragma: no cover - emit-after-close guard
            return
        self._handle.write(json.dumps(event, sort_keys=True, default=str) + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def prometheus_text(metrics: dict, extra_labels: dict[str, str] | None = None) -> str:
    """Render one registry snapshot in the Prometheus text format.

    ``extra_labels`` (e.g. ``{"pid": "1234"}``) are appended to every
    sample — the report layer uses it to keep per-process series apart.
    """
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            lines.append(f"# TYPE {name} {kind}")
            seen_types.add(name)

    for item in metrics.get("counters", []):
        type_line(item["name"], "counter")
        lines.append(f"{item['name']}{_prom_labels(item['labels'], extra_labels)} {item['value']}")
    for item in metrics.get("gauges", []):
        type_line(item["name"], "gauge")
        lines.append(f"{item['name']}{_prom_labels(item['labels'], extra_labels)} {item['value']:g}")
    for item in metrics.get("histograms", []):
        name = item["name"]
        type_line(name, "histogram")
        cumulative = 0
        for edge, count in zip(item["buckets"], item["counts"]):
            cumulative += count
            le = _prom_labels(item["labels"], {**(extra_labels or {}), "le": f"{edge:g}"})
            lines.append(f"{name}_bucket{le} {cumulative}")
        cumulative += item["counts"][len(item["buckets"])]
        inf = _prom_labels(item["labels"], {**(extra_labels or {}), "le": "+Inf"})
        lines.append(f"{name}_bucket{inf} {cumulative}")
        base = _prom_labels(item["labels"], extra_labels)
        lines.append(f"{name}_sum{base} {item['sum']:g}")
        lines.append(f"{name}_count{base} {item['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


class PrometheusTextSink(Sink):
    """Keeps the latest metrics snapshot per pid; renders text exposition."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._latest: dict[int, dict] = {}

    def emit(self, event: dict) -> None:
        if event.get("type") == "metrics":
            self._latest[int(event.get("pid", 0))] = event["metrics"]

    def render(self) -> str:
        """The text exposition of every process's latest snapshot."""
        parts = [
            prometheus_text(snap, extra_labels={"pid": str(pid)})
            for pid, snap in sorted(self._latest.items())
        ]
        return "".join(parts)

    def flush(self) -> None:
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(self.render(), encoding="utf-8")


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def chrome_trace_events(events: list[dict]) -> dict:
    """Convert span events to the Chrome ``trace_event`` JSON object.

    Spans become complete (``"ph": "X"``) events with microsecond
    wall-clock timestamps, grouped by pid/tid, so a multi-process sweep
    renders as stacked per-process tracks in ``chrome://tracing``.
    """
    trace: list[dict] = []
    for e in events:
        if e.get("type") != "span":
            continue
        trace.append({
            "name": e.get("name", "?"),
            "cat": "repro",
            "ph": "X",
            "ts": float(e.get("ts", 0.0)) * 1e6,
            "dur": float(e.get("dur", 0.0)) * 1e6,
            "pid": int(e.get("pid", 0)),
            "tid": int(e.get("tid", 0)),
            "args": {
                "trace": e.get("trace", ""),
                "span": e.get("span", ""),
                "parent": e.get("parent", ""),
                **(e.get("attrs") or {}),
            },
        })
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


class ChromeTraceSink(Sink):
    """Accumulates spans and writes a ``chrome://tracing`` JSON on flush."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._events: list[dict] = []

    def emit(self, event: dict) -> None:
        if event.get("type") == "span":
            self._events.append(event)

    def flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(chrome_trace_events(self._events)), encoding="utf-8"
        )
