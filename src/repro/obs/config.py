"""Process-wide observability state: one registry, a set of sinks.

The library is instrumented unconditionally — counters, gauges,
histograms and spans are recorded at every interesting point — but all
of it is a cheap no-op until :func:`configure` is called.  The global
:class:`~repro.obs.metrics.MetricsRegistry` is a true singleton whose
instruments have stable identity, so hot paths cache their handles at
import time and pay one boolean check while observability is off.

Typical use::

    import repro.obs as obs

    obs.configure(jsonl_path="run_obs.jsonl")
    ...  # run the sweep
    obs.shutdown()  # final metrics snapshot + sink flush/close

Worker processes never call :func:`configure` themselves; they inherit
a :class:`~repro.obs.trace.SpanContext` (which carries the JSONL path)
through the pickled task and activate it with
:func:`repro.obs.trace.adopt_context`.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import JsonlSink, Sink

__all__ = [
    "configure",
    "shutdown",
    "enabled",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "sinks",
    "jsonl_path",
    "emit",
    "flush",
]

#: The process-wide registry.  Never replaced — only toggled — so
#: instrument handles cached by hot paths stay valid forever.
_REGISTRY = MetricsRegistry(enabled=False)
_SINKS: list[Sink] = []
_JSONL_PATH: Path | None = None


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (always the same object)."""
    return _REGISTRY


def counter(name: str, **labels: str):
    """Shorthand for ``registry().counter(...)``."""
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: str):
    """Shorthand for ``registry().gauge(...)``."""
    return _REGISTRY.gauge(name, **labels)


def histogram(name: str, buckets=None, **labels: str):
    """Shorthand for ``registry().histogram(...)``."""
    return _REGISTRY.histogram(name, buckets=buckets, **labels)


def enabled() -> bool:
    """Whether observability is currently recording in this process."""
    return _REGISTRY.enabled


def sinks() -> list[Sink]:
    """The live sink list (mutating it is allowed but prefer configure)."""
    return _SINKS


def jsonl_path() -> Path | None:
    """Path of the configured JSONL sink, if any (propagated to workers)."""
    return _JSONL_PATH


def configure(
    jsonl_path: str | Path | None = None,
    sinks: list[Sink] | tuple[Sink, ...] = (),
    reset_metrics: bool = False,
) -> MetricsRegistry:
    """Enable observability with the given sinks.

    Parameters
    ----------
    jsonl_path:
        Convenience: append a :class:`~repro.obs.sinks.JsonlSink` at
        this path.  This is also the path worker processes re-open when
        they adopt a propagated span context.
    sinks:
        Additional sinks (in-memory, Prometheus, Chrome trace...).
    reset_metrics:
        Zero the registry first (instrument identities are kept).

    Returns the process-wide registry.  Calling :func:`configure` again
    replaces the sink set (previous sinks are flushed and closed).
    """
    global _JSONL_PATH
    _teardown_sinks()
    if reset_metrics:
        _REGISTRY.reset()
    _SINKS.extend(sinks)
    if jsonl_path is not None:
        _JSONL_PATH = Path(jsonl_path)
        _SINKS.append(JsonlSink(_JSONL_PATH))
    else:
        _JSONL_PATH = None
    _REGISTRY.enabled = True
    return _REGISTRY


def _teardown_sinks() -> None:
    global _JSONL_PATH
    for sink in _SINKS:
        try:
            sink.close()
        except Exception:  # noqa: BLE001 - telemetry must not break runs
            pass
    _SINKS.clear()
    _JSONL_PATH = None


def shutdown(final_snapshot: bool = True) -> None:
    """Disable observability: final metrics snapshot, flush, close sinks.

    Safe to call when already disabled (no-op).
    """
    if not _REGISTRY.enabled:
        _teardown_sinks()
        return
    if final_snapshot:
        flush()
    _REGISTRY.enabled = False
    _teardown_sinks()


def emit(event: dict) -> None:
    """Fan one event out to every sink (no-op while disabled)."""
    if not _REGISTRY.enabled:
        return
    for sink in _SINKS:
        try:
            sink.emit(event)
        except Exception:  # noqa: BLE001 - a broken sink must not break the run
            pass


def flush() -> None:
    """Emit a cumulative metrics snapshot event and flush every sink.

    The snapshot is tagged with this process's pid; the report layer
    keeps the last snapshot per pid and sums across pids, so repeated
    flushes (including per-task flushes from pool workers) are safe.
    """
    if not _REGISTRY.enabled:
        return
    emit({
        "type": "metrics",
        "pid": os.getpid(),
        "ts": time.time(),
        "metrics": _REGISTRY.snapshot(),
    })
    for sink in _SINKS:
        try:
            sink.flush()
        except Exception:  # noqa: BLE001
            pass
