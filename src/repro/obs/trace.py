"""Span-based tracing with cross-process context propagation.

A *span* is one timed region of a run — the sweep, a trial, a CV fold,
a profiled phase — with a name, attributes, a wall-clock start and a
monotonic (``perf_counter``) duration.  Spans nest through a
thread-local stack: ``span("trial")`` opened inside ``span("run")``
records ``run`` as its parent, so the JSONL event log reconstructs the
full tree.

Cross-process stitching
-----------------------
``repro.parallel`` pool workers are separate processes with separate
span stacks.  The parent captures :func:`propagated_context` — a small
picklable :class:`SpanContext` holding the active trace id, span id and
the JSONL sink path — and ships it inside the task.  The worker wraps
its work in :func:`adopt_context`, which

1. re-opens the JSONL sink (append mode) if this process has no
   observability configured,
2. pushes a remote-parent marker so worker-side spans are parented to
   the parent process's span, and
3. on exit, flushes the worker's cumulative metrics snapshot (so
   worker-side counters — workspace hits, fold timings — reach the
   event log) when it did the configuring.

Timestamps: ``ts`` is ``time.time()`` (comparable across processes on
one host, what Chrome traces want); ``dur`` is measured with
``time.perf_counter()`` (monotonic, immune to clock steps).
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Iterator

from repro.obs import config as _config

__all__ = [
    "Span",
    "SpanContext",
    "span",
    "current_span",
    "propagated_context",
    "adopt_context",
]


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of an active span (plus the sink to join).

    ``jsonl_path`` lets a worker process that has no observability
    configured attach to the parent's JSONL event log; ``None`` means
    the worker only records if it was configured independently.
    """

    trace_id: str
    span_id: str
    jsonl_path: str | None = None


class _RemoteParent:
    """Stack marker representing a span living in another process."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id


class _NoopSpan:
    """Shared do-nothing span returned while observability is disabled."""

    __slots__ = ()
    trace_id = ""
    span_id = ""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    @property
    def duration_s(self) -> float:
        return 0.0


_NOOP_SPAN = _NoopSpan()
_STACK = threading.local()
#: Pid of the process that imported this module.  Fork-started pool
#: workers inherit the parent's value, so ``os.getpid() != _MAIN_PID``
#: identifies worker processes; spawn-started workers re-import (the
#: ids match) but those never inherit an enabled registry either.
_MAIN_PID = os.getpid()
#: Pid of the forked worker whose inherited registry was already zeroed
#: on its first :func:`adopt_context` (see below).
_ADOPTED_FORK_PID: int | None = None


def _stack() -> list:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed region; use as a context manager (emits on exit)."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs",
        "ts_start", "_t0", "duration_s", "_entered",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        parent = None
        stack = _stack()
        if stack:
            parent = stack[-1]
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = _new_id()
            self.parent_id = ""
        self.span_id = _new_id()
        self.ts_start = 0.0
        self._t0 = 0.0
        self.duration_s = 0.0
        self._entered = False

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (merged into the emitted event)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.ts_start = time.time()
        self._t0 = time.perf_counter()
        _stack().append(self)
        self._entered = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        stack = _stack()
        if self._entered and stack and stack[-1] is self:
            stack.pop()
        elif self._entered:  # pragma: no cover - mis-nested exit
            with contextlib.suppress(ValueError):
                stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        _config.emit(self.event())
        return False

    def event(self) -> dict:
        """The JSONL event for this (finished) span."""
        return {
            "type": "span",
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "ts": self.ts_start,
            "dur": self.duration_s,
            "pid": os.getpid(),
            "tid": threading.get_ident() % 2**31,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, span_id={self.span_id}, parent={self.parent_id or None})"


def span(name: str, **attrs: object):
    """Open a span (``with obs.span("trial", trial_id=3): ...``).

    Returns a shared no-op object while observability is disabled — the
    fast path allocates nothing beyond the caller's ``**attrs`` dict.
    """
    if not _config.enabled():
        return _NOOP_SPAN
    return Span(name, attrs)


def current_span() -> Span | None:
    """The innermost *local* span on this thread (``None`` at top level)."""
    stack = _stack()
    for item in reversed(stack):
        if isinstance(item, Span):
            return item
    return None


def propagated_context() -> SpanContext | None:
    """A picklable handle to the active span, for shipping to workers.

    ``None`` when observability is disabled or no span is open — workers
    receiving ``None`` run un-traced, exactly like today.
    """
    if not _config.enabled():
        return None
    stack = _stack()
    if not stack:
        return None
    top = stack[-1]
    path = _config.jsonl_path()
    return SpanContext(
        trace_id=top.trace_id,
        span_id=top.span_id,
        jsonl_path=str(path) if path is not None else None,
    )


@contextlib.contextmanager
def adopt_context(ctx: SpanContext | None) -> Iterator[None]:
    """Parent this thread's spans to a context from another process.

    Inside the block, new spans carry ``ctx.trace_id`` and are parented
    to ``ctx.span_id``.  If this process has no observability configured
    and the context names a JSONL path, a sink is attached for the
    duration (and the worker's cumulative metrics snapshot is flushed on
    exit) — this is how pool workers stitch their fold spans and
    workspace counters into the parent trace.

    ``adopt_context(None)`` is a no-op, so call sites need no branching.
    """
    if ctx is None:
        yield None
        return
    configured_here = False
    if not _config.enabled() and ctx.jsonl_path is not None:
        _config.configure(jsonl_path=ctx.jsonl_path)
        configured_here = True
    elif _config.enabled() and os.getpid() != _MAIN_PID:
        global _ADOPTED_FORK_PID
        if _ADOPTED_FORK_PID != os.getpid():
            # First adoption in a fork-started worker: the registry is a
            # copy of the parent's pre-fork counts.  Zero it (identities
            # are kept) so this pid's cumulative snapshots report only
            # work done here and per-pid sums stay exact.
            _config.registry().reset()
            _ADOPTED_FORK_PID = os.getpid()
    stack = _stack()
    marker = _RemoteParent(ctx.trace_id, ctx.span_id)
    stack.append(marker)
    try:
        yield None
    finally:
        with contextlib.suppress(ValueError):
            stack.remove(marker)
        if configured_here:
            # Ship this worker's counters home, then detach: the next
            # task re-adopts (snapshots are cumulative per pid, so the
            # report layer keeps only the last one).
            _config.shutdown(final_snapshot=True)
        elif ctx.jsonl_path is not None and os.getpid() != _MAIN_PID:
            # Fork-started pool workers inherit an enabled registry and
            # the parent's (append-mode) sink, so ``configured_here``
            # never trips — still ship a cumulative snapshot after each
            # task or worker-side counters would be lost.
            _config.flush()
