"""Unified observability: metrics, tracing, sinks, progress listeners.

The paper's Discussion calls for profiling the NAS experiments (NVIDIA
Nsight) to tune trial counts and the search space, and reports
9h20m-29h wall-times per input combination — run-level visibility is a
first-class concern for any reproduction that wants to scale.  This
package is the layer every subsystem reports into:

- **metrics** (:mod:`~repro.obs.metrics`) — a process-wide registry of
  counters, gauges and log-bucketed histograms; a cheap no-op until
  :func:`configure` is called;
- **tracing** (:mod:`~repro.obs.trace`) — nested ``span()`` context
  managers with wall-clock starts, monotonic durations and a picklable
  :class:`SpanContext` that stitches pool-worker spans into the parent
  trace;
- **sinks** (:mod:`~repro.obs.sinks`) — in-memory (tests), line-buffered
  JSONL, Prometheus text exposition and Chrome ``trace_event`` JSON;
- **progress** (:mod:`~repro.obs.progress`) — the
  :class:`ProgressListener` protocol shared by
  :class:`repro.nas.telemetry.RunTelemetry` and the obs layer, with a
  fan-out composer;
- **report** (:mod:`~repro.obs.report`) — replay a JSONL log into a
  human-readable report, Prometheus text or a Chrome trace
  (``python -m repro obs report run_obs.jsonl``).

Quick start::

    import repro.obs as obs

    obs.configure(jsonl_path="run_obs.jsonl")
    with obs.span("experiment.run", budget=8):
        ...  # instrumented library code records spans + metrics
    obs.shutdown()
"""

from repro.obs.config import (
    configure,
    counter,
    emit,
    enabled,
    flush,
    gauge,
    histogram,
    jsonl_path,
    registry,
    shutdown,
    sinks,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from repro.obs.progress import (
    LegacyCallableListener,
    ObsProgressListener,
    ProgressFanout,
    ProgressListener,
    as_listener,
)
from repro.obs.report import (
    aggregate_metrics,
    export_chrome_trace,
    export_prometheus,
    read_events,
    render_report,
    span_coverage,
    span_tree_stats,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    PrometheusTextSink,
    Sink,
    chrome_trace_events,
    prometheus_text,
)
from repro.obs.trace import (
    Span,
    SpanContext,
    adopt_context,
    current_span,
    propagated_context,
    span,
)

__all__ = [
    # config
    "configure", "shutdown", "enabled", "registry", "counter", "gauge",
    "histogram", "emit", "flush", "sinks", "jsonl_path",
    # metrics
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S", "metric_key",
    # trace
    "span", "Span", "SpanContext", "current_span", "propagated_context",
    "adopt_context",
    # sinks
    "Sink", "InMemorySink", "JsonlSink", "PrometheusTextSink",
    "ChromeTraceSink", "prometheus_text", "chrome_trace_events",
    # progress
    "ProgressListener", "LegacyCallableListener", "ProgressFanout",
    "ObsProgressListener", "as_listener",
    # report
    "read_events", "aggregate_metrics", "render_report", "span_coverage",
    "span_tree_stats", "export_chrome_trace", "export_prometheus",
]
