"""ONNX-style model serialization ("onnxlite").

The paper's memory objective is "the memory requirement to store the model
in the onnx file format" (Table 4 caption).  This subpackage provides a
minimal self-contained equivalent: a binary container holding the traced
operator graph plus float32 initializers for every parameter.  The measured
file size reproduces the paper's MB values because ONNX files are dominated
by the raw fp32 weight payload (4 bytes/parameter, see DESIGN.md).
"""

from repro.onnxlite.schema import ModelProto, TensorProto, OperatorProto
from repro.onnxlite.export import export_model, export_graph
from repro.onnxlite.reader import load_model
from repro.onnxlite.size import model_size_bytes, model_size_mb

__all__ = [
    "ModelProto",
    "TensorProto",
    "OperatorProto",
    "export_model",
    "export_graph",
    "load_model",
    "model_size_bytes",
    "model_size_mb",
]
