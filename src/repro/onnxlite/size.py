"""The memory objective: serialized model size in MB.

Matches the paper's convention (Table 3/4/5 'memory (MB)'): the size of
the exported model file divided by 1e6.
"""

from __future__ import annotations

from repro.nn.resnet import SearchableResNet18
from repro.onnxlite.export import export_model

__all__ = ["model_size_bytes", "model_size_mb"]

BYTES_PER_MB = 1_000_000.0


def model_size_bytes(model: SearchableResNet18, input_hw: tuple[int, int] = (100, 100)) -> int:
    """Exact size in bytes of the model's onnxlite serialization."""
    return len(export_model(model, input_hw=input_hw))


def model_size_mb(model: SearchableResNet18, input_hw: tuple[int, int] = (100, 100)) -> float:
    """Model memory in MB (decimal, matching the paper's units)."""
    return model_size_bytes(model, input_hw=input_hw) / BYTES_PER_MB
