"""In-memory schema of an onnxlite model: operators + initializers."""

from __future__ import annotations

import hashlib
import json

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["TensorProto", "OperatorProto", "ModelProto", "FORMAT_MAGIC", "FORMAT_VERSION"]

FORMAT_MAGIC = b"ONXL"
FORMAT_VERSION = 1


#: Tensor payload dtypes the container supports (v1 files are all float32).
SUPPORTED_DTYPES = ("float32", "int8", "int16")


@dataclass
class TensorProto:
    """A named initializer (weight) tensor.

    Quantized tensors carry integer codes plus their affine parameters
    (``scale``, ``zero_point``); ``dequantized()`` reconstructs float32.
    ``scale`` is either a scalar (per-tensor quantization) or a 1-D
    vector with one entry per axis-0 slice (per-channel weight
    quantization, zero_point 0 by convention).
    """

    name: str
    data: np.ndarray
    scale: "float | np.ndarray" = 0.0  # 0 marks an unquantized (float32) tensor
    zero_point: int = 0

    def __post_init__(self) -> None:
        dtype = np.asarray(self.data).dtype.name
        scale = self.scale
        if np.ndim(scale) > 0 or isinstance(scale, (list, tuple)):
            scale = np.ascontiguousarray(np.asarray(scale, dtype=np.float64).reshape(-1))
            if scale.size == 1:
                scale = float(scale[0])
            else:
                self.scale = scale
        if np.ndim(scale) == 0:
            self.scale = float(scale)
        quantized = np.ndim(self.scale) > 0 or self.scale > 0
        if dtype in ("int8", "int16") or quantized:
            if np.ndim(self.scale) > 0:
                if (self.scale <= 0).any():
                    raise ValueError(f"per-channel tensor {self.name!r} needs positive scales")
                if np.ndim(self.data) < 1 or self.scale.size != np.shape(self.data)[0]:
                    raise ValueError(
                        f"tensor {self.name!r}: {self.scale.size} channel scales do not "
                        f"match axis-0 extent {np.shape(self.data)}"
                    )
                if self.zero_point != 0:
                    raise ValueError(
                        f"per-channel tensor {self.name!r} must be symmetric (zero_point 0)"
                    )
            elif self.scale <= 0:
                raise ValueError(f"integer tensor {self.name!r} needs a positive scale")
            self.data = np.ascontiguousarray(self.data)
            if self.data.dtype.name not in ("int8", "int16"):
                raise ValueError(f"quantized tensor {self.name!r} must be int8/int16, got {dtype}")
        else:
            self.data = np.ascontiguousarray(self.data, dtype=np.float32)

    @property
    def dtype(self) -> str:
        """Payload dtype name."""
        return self.data.dtype.name

    @property
    def quantized(self) -> bool:
        """Whether the payload holds integer codes."""
        return self.per_channel or self.scale > 0

    @property
    def per_channel(self) -> bool:
        """Whether ``scale`` is a per-axis-0-channel vector."""
        return np.ndim(self.scale) > 0

    @property
    def nbytes(self) -> int:
        """Raw payload size in bytes."""
        return self.data.nbytes

    def channel_scales(self) -> np.ndarray:
        """Scales as a float64 vector of length ``data.shape[0]``.

        Per-tensor scales are broadcast so integer kernels can treat
        every quantized weight uniformly.
        """
        if self.per_channel:
            return self.scale
        return np.full(self.data.shape[0], float(self.scale), dtype=np.float64)

    def dequantized(self) -> np.ndarray:
        """The tensor as float32 (a copy for quantized payloads)."""
        if not self.quantized:
            return self.data
        if self.per_channel:
            col = self.scale.reshape((-1,) + (1,) * (self.data.ndim - 1))
            return (self.data.astype(np.float64) * col).astype(np.float32)
        return ((self.data.astype(np.float64) - self.zero_point) * self.scale).astype(np.float32)


@dataclass
class OperatorProto:
    """A graph operator: type, attributes, and dataflow names."""

    name: str
    op_type: str
    inputs: list[str]
    outputs: list[str]
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class ModelProto:
    """A full serializable model: graph metadata, operators, initializers."""

    name: str
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]
    operators: list[OperatorProto] = field(default_factory=list)
    initializers: list[TensorProto] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def initializer(self, name: str) -> TensorProto:
        """Look up an initializer by name."""
        for tensor in self.initializers:
            if tensor.name == name:
                return tensor
        raise KeyError(f"no initializer named {name!r}")

    def parameter_count(self) -> int:
        """Total scalar parameters across initializers."""
        return sum(t.data.size for t in self.initializers)

    def fingerprint(self) -> str:
        """A stable content hash of the model (topology + weights).

        Hashes the graph name, I/O shapes, every operator (type, attrs,
        dataflow names), and every initializer's payload bytes plus its
        quantization parameters.  Two models with the same fingerprint
        compile to behaviourally identical plans, which is what lets the
        serving layer key its plan/arena cache on
        ``(fingerprint, batch bucket)``.  Cached after the first call.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if isinstance(cached, str):
            return cached
        h = hashlib.sha256()
        h.update(self.name.encode())
        h.update(repr((tuple(self.input_shape), tuple(self.output_shape))).encode())
        # Metadata participates because it changes compilation (e.g. the
        # activation-calibration table gates the integer kernel path).
        # json with sorted keys is stable across container round trips,
        # where dict insertion order may differ from the original.
        h.update(json.dumps(self.metadata, sort_keys=True, default=str).encode())
        for op in self.operators:
            h.update(
                repr((op.name, op.op_type, tuple(op.inputs), tuple(op.outputs),
                      sorted(op.attrs.items()))).encode()
            )
        for t in self.initializers:
            # repr() of an ndarray truncates, so hash scale via its raw
            # bytes — covers both scalar and per-channel vectors.
            h.update(repr((t.name, t.dtype, t.data.shape, t.zero_point)).encode())
            h.update(np.asarray(t.scale, dtype=np.float64).tobytes())
            h.update(memoryview(np.ascontiguousarray(t.data)).cast("B"))
        digest = h.hexdigest()
        self._fingerprint_cache = digest
        return digest
