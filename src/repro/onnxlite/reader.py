"""Read onnxlite containers back into :class:`ModelProto` objects."""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from repro.onnxlite.schema import FORMAT_MAGIC, FORMAT_VERSION, ModelProto, OperatorProto, TensorProto

__all__ = ["load_model", "proto_from_bytes"]


def proto_from_bytes(blob: bytes) -> ModelProto:
    """Parse a serialized onnxlite container."""
    if blob[:4] != FORMAT_MAGIC:
        raise ValueError("not an onnxlite container (bad magic)")
    version, header_len = struct.unpack("<II", blob[4:12])
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported onnxlite version {version}")
    header = json.loads(blob[12 : 12 + header_len].decode("utf-8"))
    payload = blob[12 + header_len :]

    proto = ModelProto(
        name=header["name"],
        input_shape=tuple(header["input_shape"]),
        output_shape=tuple(header["output_shape"]),
        metadata=header.get("metadata", {}),
    )
    for op in header["operators"]:
        proto.operators.append(
            OperatorProto(
                name=op["name"],
                op_type=op["op_type"],
                inputs=op["inputs"],
                outputs=op["outputs"],
                attrs=op["attrs"],
            )
        )
    for entry in header["initializers"]:
        start, nbytes = entry["offset"], entry["nbytes"]
        dtype = np.dtype(entry.get("dtype", "float32"))
        data = np.frombuffer(payload[start : start + nbytes], dtype=dtype)
        scale = entry.get("scale", 0.0)
        # A JSON list marks per-channel scales; a number is per-tensor.
        scale = np.asarray(scale, dtype=np.float64) if isinstance(scale, list) else float(scale)
        proto.initializers.append(
            TensorProto(
                entry["name"],
                data.reshape(entry["shape"]).copy(),
                scale=scale,
                zero_point=int(entry.get("zero_point", 0)),
            )
        )
    return proto


def load_model(path: str | Path) -> ModelProto:
    """Load an onnxlite file from disk."""
    return proto_from_bytes(Path(path).read_bytes())
